"""Conv2D and im2col/col2im: shapes, adjointness, gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import Conv2D
from repro.nn.conv import col2im, conv_output_size, im2col

from tests.nn.gradcheck import check_layer_gradients


def test_conv_output_size():
    assert conv_output_size(28, 5, 1, 0) == 24
    assert conv_output_size(32, 3, 1, 1) == 32
    assert conv_output_size(16, 5, 2, 2) == 8
    with pytest.raises(ShapeError):
        conv_output_size(2, 5, 1, 0)


def test_im2col_matches_naive_convolution():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 6, 6))
    w = rng.normal(size=(4, 3, 3, 3))
    cols = im2col(x, 3, 3, 1, 0)
    out = (w.reshape(4, -1) @ cols).reshape(2, 4, 4, 4)
    # Naive direct convolution.
    naive = np.zeros_like(out)
    for n in range(2):
        for f in range(4):
            for i in range(4):
                for j in range(4):
                    naive[n, f, i, j] = (
                        x[n, :, i:i + 3, j:j + 3] * w[f]).sum()
    np.testing.assert_allclose(out, naive, atol=1e-12)


@given(st.integers(1, 3), st.integers(1, 2), st.integers(0, 1),
       st.integers(5, 8))
@settings(max_examples=20, deadline=None)
def test_im2col_col2im_adjoint(kernel, stride, pad, size):
    """<im2col(x), c> == <x, col2im(c)> — col2im is im2col's adjoint,
    which is exactly what the conv backward pass relies on."""
    rng = np.random.default_rng(42)
    x = rng.normal(size=(2, 2, size, size))
    cols = im2col(x, kernel, kernel, stride, pad)
    c = rng.normal(size=cols.shape)
    lhs = float((cols * c).sum())
    rhs = float((x * col2im(c, x.shape, kernel, kernel, stride, pad)).sum())
    assert abs(lhs - rhs) < 1e-9


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 2)])
def test_conv_gradients(stride, padding):
    rng = np.random.default_rng(3)
    layer = Conv2D(2, 3, 3, stride=stride, padding=padding,
                   activation="relu", rng=rng)
    x = rng.normal(size=(2, 2, 8, 8)) + 0.1
    check_layer_gradients(layer, x, rng, atol=1e-6)


def test_conv_rejects_wrong_channels():
    layer = Conv2D(3, 4, 3, rng=0)
    with pytest.raises(ShapeError):
        layer.apply(np.zeros((1, 2, 8, 8)))


def test_conv_output_shape_helper():
    layer = Conv2D(3, 8, 5, stride=2, padding=2, rng=0)
    assert layer.output_shape((3, 16, 32)) == (8, 8, 16)


def test_neuron_semantics_channel_mean():
    rng = np.random.default_rng(4)
    layer = Conv2D(1, 2, 3, padding=1, activation="linear", rng=rng)
    x = rng.normal(size=(2, 1, 4, 4))
    out = layer.apply(x)
    neurons = layer.neuron_outputs(out)
    assert neurons.shape == (2, 2)
    np.testing.assert_allclose(neurons, out.mean(axis=(2, 3)))
    # The seed must recover the spatial-mean functional exactly.
    seed = layer.neuron_seed((2, 4, 4), 1)
    np.testing.assert_allclose((seed[None] * out).sum(axis=(1, 2, 3)),
                               neurons[:, 1])


def test_asymmetric_kernel():
    rng = np.random.default_rng(5)
    layer = Conv2D(1, 2, (3, 5), rng=rng)
    out = layer.apply(rng.normal(size=(1, 1, 8, 10)))
    assert out.shape == (1, 2, 6, 6)
