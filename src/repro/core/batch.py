"""Historical home of the vectorized generator.

The batched ascent loop that used to live here *became* the unified
engine: :class:`~repro.core.engine.BatchDeepXplore` is a thin alias of
:class:`~repro.core.engine.AscentEngine`, whose ``run`` processes a
whole seed set in one vectorized ascent with retire-and-compact of
finished seeds.  This module re-exports the name so existing imports
keep working; it contains no ascent loop of its own.
"""

from __future__ import annotations

from repro.core.engine import BatchDeepXplore

__all__ = ["BatchDeepXplore"]
