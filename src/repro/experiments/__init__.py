"""One module per table/figure of the paper's evaluation (§6-§7).

``run_all`` executes every experiment at a given scale and returns the
results keyed by experiment id — the programmatic face of EXPERIMENTS.md.
"""

from repro.experiments.class_overlap import run_class_overlap
from repro.experiments.code_vs_neuron import run_code_vs_neuron
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.experiments.coverage_comparison import run_coverage_comparison
from repro.experiments.coverage_diversity import run_coverage_diversity
from repro.experiments.coverage_runtime import run_coverage_runtime
from repro.experiments.difference_counts import run_difference_counts
from repro.experiments.gallery import run_gallery
from repro.experiments.hyperparam_sweeps import (run_lambda1_sweep,
                                                 run_lambda2_sweep,
                                                 run_step_size_sweep)
from repro.experiments.model_similarity import run_model_similarity
from repro.experiments.model_zoo import run_model_zoo
from repro.experiments.pollution_detection import run_pollution_detection
from repro.experiments.retraining_accuracy import run_retraining_accuracy
from repro.experiments.sample_mutations import (run_drebin_samples,
                                                run_pdf_samples)

__all__ = [
    "ExperimentResult", "make_engine", "seeds_for_scale",
    "run_model_zoo", "run_difference_counts", "run_drebin_samples",
    "run_pdf_samples", "run_coverage_diversity", "run_code_vs_neuron",
    "run_class_overlap", "run_coverage_runtime", "run_step_size_sweep",
    "run_lambda1_sweep", "run_lambda2_sweep", "run_model_similarity",
    "run_gallery", "run_coverage_comparison", "run_retraining_accuracy",
    "run_pollution_detection", "run_all", "EXPERIMENTS",
]

#: experiment id -> runner, in the paper's order.
EXPERIMENTS = {
    "table1": run_model_zoo,
    "table2": run_difference_counts,
    "table3": run_drebin_samples,
    "table4": run_pdf_samples,
    "table5": run_coverage_diversity,
    "table6": run_code_vs_neuron,
    "table7": run_class_overlap,
    "table8": run_coverage_runtime,
    "table9": run_step_size_sweep,
    "table10": run_lambda1_sweep,
    "table11": run_lambda2_sweep,
    "table12": run_model_similarity,
    "figure8": run_gallery,
    "figure9": run_coverage_comparison,
    "figure10": run_retraining_accuracy,
    "pollution": run_pollution_detection,
}


def run_all(scale="smoke", seed=0, experiment_ids=None, verbose=True):
    """Run every (or the selected) experiment; returns {id: result}."""
    chosen = experiment_ids or list(EXPERIMENTS)
    results = {}
    for experiment_id in chosen:
        runner = EXPERIMENTS[experiment_id]
        result = runner(scale=scale, seed=seed)
        results[experiment_id] = result
        if verbose:
            print(result.render())
            print()
    return results
