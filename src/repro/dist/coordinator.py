"""Federation surface: peer lists, gossip, and cross-host shard fan-out.

Deliberately coordinator-less.  There is no leader and no membership
protocol — just a ``peers.json`` next to each farm root
(:class:`PeerList`, edited by ``repro join``) and a ``peers`` RPC verb
each daemon answers with its own gossip (queue depth, per-store entry
counts and coverage generations).  Everything that must be *correct* —
who runs which shard, what the merged corpus contains — rests on the
shard ledger and the sync semilattice, both of which tolerate absent,
dead, and duplicate peers by construction; the peer list only has to be
roughly right for the federation to be *fast*.

Two fan-out strategies live here:

* :class:`FederatedSession` — the shared-filesystem path: every host
  runs the same ``FuzzSession`` against its own store replica and a
  common campaign directory; waves split via
  :class:`~repro.dist.shards.LedgerShardRunner`, and since every host
  merges every shard result, the stores never need explicit syncing to
  stay identical.
* :class:`PeerShardRunner` — the RPC path (``generate --peers``): one
  driver fans shards to daemons over the ``run-shard`` verb and falls
  back to local execution for any shard a peer cannot take.  Peers
  accelerate a campaign; they can never change or fail it.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.campaign import CampaignShard
from repro.dist.shards import (DEFAULT_LEASE, LedgerShardRunner,
                               decode_outcome)
from repro.dist.sync import encode_array, encode_coverage
from repro.errors import ConfigError
from repro.utils.atomicio import atomic_write_json

__all__ = ["PeerList", "parse_peer", "FederatedSession",
           "PeerShardRunner", "encode_shard", "decode_shard",
           "PEERS_NAME", "MAX_GOSSIP_PEERS"]

PEERS_NAME = "peers.json"

#: Cap on peers learned from gossip (peers-of-peers).  Explicitly
#: joined peers are never counted against, or evicted by, this cap.
MAX_GOSSIP_PEERS = 16


def parse_peer(text):
    """``"HOST:PORT"`` → ``(host, port)`` with a one-line error."""
    host, sep, port = str(text).strip().rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"bad peer {text!r}; want HOST:PORT (e.g. 127.0.0.1:7001)")
    try:
        port = int(port)
    except ValueError:
        raise ConfigError(f"bad peer port in {text!r}") from None
    if not 0 < port < 65536:
        raise ConfigError(f"peer port out of range in {text!r}")
    return host, port


class PeerList:
    """The peer set persisted per farm root (``peers.json``).

    Re-read from disk on every access — the daemon and any number of
    ``repro join`` / ``repro peers`` invocations share the file, and an
    atomic-replace write per mutation keeps it torn-free.  Order is
    insertion order; duplicates dedup by (host, port).

    Each record carries how the peer was learned — ``"join"`` (the
    operator said so) or ``"gossip"`` (a peer's ``peers`` RPC mentioned
    it; auto-discovery, capped at :data:`MAX_GOSSIP_PEERS`).  Files
    written before the distinction existed read back as ``"join"``.
    """

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.path = os.path.join(self.root, PEERS_NAME)

    def records(self):
        """``[{"host", "port", "via"}]`` in insertion order."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                import json
                data = json.load(handle)
        except (FileNotFoundError, ValueError):
            return []
        return [{"host": str(p["host"]), "port": int(p["port"]),
                 "via": str(p.get("via", "join"))}
                for p in data.get("peers", [])]

    def peers(self):
        return [(p["host"], p["port"]) for p in self.records()]

    def _save(self, records):
        os.makedirs(self.root, exist_ok=True)
        atomic_write_json(self.path, {"peers": list(records)})

    def add(self, host, port, via="join"):
        """Add one peer; returns True if the list changed.

        An explicit join upgrades an existing gossip record in place
        (the operator's word outranks hearsay); gossip never downgrades
        a join, and gossip adds beyond :data:`MAX_GOSSIP_PEERS` are
        dropped so one chatty peer cannot grow the file without bound.
        """
        host, port = str(host), int(port)
        records = self.records()
        for record in records:
            if (record["host"], record["port"]) == (host, port):
                if via == "join" and record["via"] == "gossip":
                    record["via"] = "join"
                    self._save(records)
                return False
        if via == "gossip" and sum(r["via"] == "gossip"
                                   for r in records) >= MAX_GOSSIP_PEERS:
            return False
        records.append({"host": host, "port": port, "via": via})
        self._save(records)
        return True

    def remove(self, host, port):
        """Drop one peer; returns True if it was present."""
        host, port = str(host), int(port)
        records = self.records()
        kept = [r for r in records
                if (r["host"], r["port"]) != (host, port)]
        if len(kept) == len(records):
            return False
        self._save(kept)
        return True


class FederatedSession:
    """One host's handle on a ledger-federated fuzz campaign.

    Wraps a regular :class:`~repro.corpus.session.FuzzSession` (each
    host builds its own, over its own store replica, with the *same*
    deterministic identity) and routes every wave's shards through a
    :class:`LedgerShardRunner` over the shared ``campaign_dir``.  Any
    number of hosts may run concurrently, join late, crash, or restart:
    each one ends at the same bit-identical store, because each one
    merges the complete shard-result set of every round it completes.
    """

    def __init__(self, session, campaign_dir, host=None,
                 lease=DEFAULT_LEASE, poll=0.005, clock=time.time):
        self.session = session
        # The session's own store is the locality hint: claims prefer
        # shards whose seeds this replica already holds.
        self.runner = LedgerShardRunner(campaign_dir, host=host,
                                        lease=lease, poll=poll,
                                        clock=clock, have=session.store)

    @property
    def store(self):
        return self.session.store

    @property
    def completed_rounds(self):
        return self.session.completed_rounds

    def run(self, rounds):
        return self.session.run(rounds, shard_runner=self.runner)


# -- RPC shard fan-out --------------------------------------------------------
def encode_shard(shard):
    """One :class:`CampaignShard` as a JSON-safe dict.

    The seed stream travels as SeedSequence *identity* (entropy,
    spawn_key, pool_size) — pure data, reconstructable anywhere — which
    is the whole reason remote execution can be bit-identical.
    """
    seq = shard.seed_seq
    entropy = seq.entropy
    if not isinstance(entropy, int):
        entropy = [int(word) for word in entropy]
    return {
        "shard_index": int(shard.shard_index),
        "indices": [int(i) for i in shard.indices],
        "seeds": encode_array(shard.seeds),
        "entropy": entropy,
        "spawn_key": [int(k) for k in seq.spawn_key],
        "pool_size": int(seq.pool_size),
        "scales": (None if shard.scales is None
                   else encode_array(shard.scales)),
    }


def decode_shard(payload):
    from repro.dist.sync import decode_array
    entropy = payload["entropy"]
    if not isinstance(entropy, int):
        entropy = [int(word) for word in entropy]
    seq = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(int(k) for k in payload["spawn_key"]),
        pool_size=int(payload["pool_size"]))
    return CampaignShard(
        shard_index=int(payload["shard_index"]),
        indices=np.asarray(payload["indices"], dtype=np.int64),
        seeds=decode_array(payload["seeds"]),
        seed_seq=seq,
        scales=(None if payload.get("scales") is None
                else decode_array(payload["scales"])))


class PeerShardRunner:
    """Fan campaign shards across farm daemons over ``run-shard``.

    A :meth:`Campaign.run` ``shard_runner``: one worker thread per
    peer pulls shards from a shared queue and executes them remotely;
    the driver thread pulls from the same queue and executes locally.
    Work-conserving and failure-transparent — a peer that is down,
    drops the connection, or refuses the shard (model fingerprint
    mismatch, unknown dataset) is retired for the run and its shards
    execute locally instead.  Placement never affects results: a
    shard's outcome is a pure function of the shard.

    ``dataset`` and ``constraint`` name what the *peer* should rebuild
    (peers resolve their own models from their zoo cache); the rule,
    task, dtype, and tracker states are read off the campaign at call
    time.  A model-fingerprint check on the peer side refuses mixed
    scales/architectures before any compute happens.

    ``local=False`` turns off the driver's own pulling — pure offload,
    for drivers that should stay responsive (or tests that must prove
    the remote path ran).  Shards of failed peers still fall back to
    local execution; correctness never depends on the flag.
    """

    def __init__(self, peers, dataset, constraint="default",
                 timeout=300.0, local=True):
        self.peers = list(peers)
        self.dataset = str(dataset)
        self.constraint = str(constraint)
        self.timeout = float(timeout)
        self.local = bool(local)
        #: (host, port) -> error string for peers retired this run.
        self.failures = {}
        #: shard_index -> "local" | "host:port" placement record.
        self.placements = {}

    def _run_remote(self, client, campaign, tracker_payloads, shard):
        from repro.corpus.store import corpus_fingerprint
        reply = client.run_shard({
            "dataset": self.dataset,
            "task": campaign.task,
            "constraint": self.constraint,
            "ascent": campaign.rule.identity(),
            "absorb_exhausted": bool(campaign.absorb_exhausted),
            "dtype": str(np.dtype(campaign.models[0].dtype)),
            "fingerprint": corpus_fingerprint(campaign.models, campaign.hp,
                                              campaign.task),
            "trackers": tracker_payloads,
            "shard": encode_shard(shard),
        })
        from repro.farm.wire import as_bytes
        return decode_outcome(as_bytes(reply["outcome"]))

    def __call__(self, campaign, tracker_states, shards):
        from repro.farm.client import PeerClient
        pending = sorted(shards, key=lambda s: -s.shard_index)  # pop() asc
        fallback = []
        results = {}
        lock = threading.Lock()
        tracker_payloads = [encode_coverage(s) for s in tracker_states]

        def take(queue):
            with lock:
                return queue.pop() if queue else None

        def peer_loop(host, port):
            client = PeerClient(host, port, timeout=self.timeout)
            while True:
                shard = take(pending)
                if shard is None:
                    return
                try:
                    outcome = self._run_remote(client, campaign,
                                               tracker_payloads, shard)
                except Exception as error:     # noqa: BLE001 — any peer
                    # failure means "run it ourselves", never "fail the
                    # campaign"; the error is kept for reporting.
                    with lock:
                        fallback.append(shard)
                        self.failures[(host, port)] = str(error)
                    return
                with lock:
                    results[shard.shard_index] = outcome
                    self.placements[shard.shard_index] = f"{host}:{port}"

        threads = [threading.Thread(target=peer_loop, args=peer,
                                    daemon=True)
                   for peer in self.peers]
        for thread in threads:
            thread.start()
        while self.local:
            shard = take(pending)
            if shard is None:
                break
            results[shard.shard_index] = campaign.execute_shard(
                tracker_states, shard)
            self.placements[shard.shard_index] = "local"
        for thread in threads:
            thread.join()
        # Only now are the queues final: a peer thread can only move
        # shards while alive.  Anything left — failed peers' shards in
        # fallback, or pending never pulled because every peer died
        # under ``local=False`` — runs here; correctness never depends
        # on placement.
        while fallback or pending:
            shard = fallback.pop() if fallback else pending.pop()
            results[shard.shard_index] = campaign.execute_shard(
                tracker_states, shard)
            self.placements[shard.shard_index] = "local"
        return [results[index] for index in sorted(results)]
