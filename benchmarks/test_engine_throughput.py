"""Unified-engine benchmark: no regression vs the pre-refactor batch
engine, plus the vanilla-vs-momentum iterations-to-difference record.

Writes ``BENCH_engine.json`` at the repo root (the engine counterpart
of ``BENCH_fuzz.json``).  Wall-clock numbers are recorded for trend
data; the *assertions* pin forward-pass counts, which are deterministic
and machine-independent: the unified engine must spend no more forwards
(and push no more samples through the models) than the pre-refactor
``BatchDeepXplore`` did on the identical scenario.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.bench_records import record_bench
from benchmarks.conftest import SCALE, SEED
from repro.core import (ASCENT_RULES, AdamRule, AdaptiveStepRule,
                        AscentEngine, DeepFoolRule, LightingConstraint,
                        MomentumRule, NesterovRule, PAPER_HYPERPARAMS,
                        resolve_models)
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.nn.instrumentation import PassCounter
from repro.utils.tables import render_table

BENCH_ENGINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_engine.json")

#: Pre-refactor baseline: a one-off ``PassCounter`` measurement of the
#: seed tree's (commit 3fa3108) ``BatchDeepXplore.run`` over the exact
#: scenario below — 40 MNIST smoke seeds drawn with rng 71, engine rng
#: 73, paper hyperparams, lighting constraint.  Because the unified
#: vanilla engine is pinned bit-identical to that code
#: (tests/core/test_engine.py), re-measuring with the current engine
#: (``absorb_exhausted=False``) reproduces these numbers exactly.
PRE_REFACTOR_FORWARDS = 93
PRE_REFACTOR_FORWARD_SAMPLES = 2208

#: The committed pre-optimization throughput of this very scenario:
#: ``unified-engine[vanilla-batch]`` from the BENCH_engine.json that
#: shipped with the float64-only substrate (hard-coded f64 kernels, no
#: workspace reuse, two backward sweeps per model per iteration).  The
#: ``substrate[before]``/``substrate[after]`` records compare the
#: current float32 + workspace + fused-backward fast path against it.
PRE_OPT_SEEDS_PER_SEC = 49.59

_RECORDS = []


@pytest.fixture(scope="module", autouse=True)
def write_engine_records():
    yield
    if not _RECORDS:
        return
    payload = {
        "schema": 1,
        "scale": SCALE,
        "seed": SEED,
        "baseline": {
            "forwards": PRE_REFACTOR_FORWARDS,
            "forward_samples": PRE_REFACTOR_FORWARD_SAMPLES,
        },
        "benchmarks": sorted(_RECORDS, key=lambda r: r["name"]),
    }
    with open(BENCH_ENGINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _scenario():
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(40, np.random.default_rng(71))
    return models, seeds, PAPER_HYPERPARAMS["mnist"]


def test_unified_engine_no_regression(benchmark):
    """Unified vectorized engine vs the pre-refactor batch baseline."""
    models, seeds, hp = _scenario()

    def run():
        # absorb_exhausted=False matches the baseline's accounting
        # exactly (the absorb costs no forwards either way, but keep the
        # comparison apples-to-apples).
        engine = AscentEngine(models, hp, LightingConstraint(), rng=73,
                              absorb_exhausted=False)
        with PassCounter() as passes:
            start = time.perf_counter()
            result = engine.run(seeds)
            elapsed = time.perf_counter() - start
        return result, elapsed, passes

    (result, elapsed, passes) = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    forwards = passes.total_forwards()
    samples = sum(passes.forward_samples.values())
    seeds_per_sec = seeds.shape[0] / max(elapsed, 1e-9)
    _RECORDS.append({
        "name": "unified-engine[vanilla-batch]",
        "seconds": round(elapsed, 4),
        "seeds_per_sec": round(seeds_per_sec, 2),
        "forwards": int(forwards),
        "forward_samples": int(samples),
        "differences": result.difference_count,
    })
    record_bench(elapsed, label="unified-vanilla",
                 seeds_per_sec=seeds_per_sec, forwards=forwards)
    print()
    print(render_table(
        ["engine", "seeds/s", "forwards", "samples", "# diffs"],
        [["unified", round(seeds_per_sec, 1), forwards, samples,
          result.difference_count],
         ["pre-refactor batch", "-", PRE_REFACTOR_FORWARDS,
          PRE_REFACTOR_FORWARD_SAMPLES, "-"]],
        title="[engine] unified vs pre-refactor batch"))
    assert result.difference_count > 0
    assert forwards <= PRE_REFACTOR_FORWARDS
    assert samples <= PRE_REFACTOR_FORWARD_SAMPLES


def test_dtype_rule_throughput_matrix(benchmark):
    """seeds_per_sec per (dtype, ascent rule) cell, plus the
    before/after substrate records the perf work is judged by."""
    models, seeds, hp = _scenario()
    resolved = {
        "float64": resolve_models(models, dtype="float64"),
        "float32": resolve_models(models, dtype="float32"),
    }

    def run():
        cells = {}
        for dtype in ("float64", "float32"):
            for label, rule in (("vanilla", None),
                                ("momentum", MomentumRule(0.9))):
                cell_models = resolved[dtype]
                cell_seeds = seeds.astype(dtype)
                elapsed = None
                for _ in range(2):  # best-of-2 damps scheduler noise
                    engine = AscentEngine(cell_models, hp,
                                          LightingConstraint(), rng=73,
                                          rule=rule,
                                          absorb_exhausted=False)
                    start = time.perf_counter()
                    result = engine.run(cell_seeds)
                    once = time.perf_counter() - start
                    elapsed = once if elapsed is None else min(elapsed,
                                                               once)
                cells[f"{dtype}-{label}"] = {
                    "seconds": round(elapsed, 4),
                    "seeds_per_sec": round(
                        seeds.shape[0] / max(elapsed, 1e-9), 2),
                    "differences": result.difference_count,
                }
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    for key, row in cells.items():
        _RECORDS.append({"name": f"engine-throughput[{key}]", **row})
    after = cells["float32-vanilla"]
    _RECORDS.append({
        "name": "substrate[before]",
        "seeds_per_sec": PRE_OPT_SEEDS_PER_SEC,
        "note": ("committed float64 pre-optimization measurement of "
                 "this scenario"),
    })
    _RECORDS.append({
        "name": "substrate[after]",
        "seconds": after["seconds"],
        "seeds_per_sec": after["seeds_per_sec"],
        "speedup": round(after["seeds_per_sec"] / PRE_OPT_SEEDS_PER_SEC,
                         2),
    })
    print()
    print(render_table(
        ["cell", "seeds/s", "seconds", "# diffs"],
        [[key, row["seeds_per_sec"], row["seconds"], row["differences"]]
         for key, row in cells.items()],
        title="[engine] throughput per (dtype, rule) cell"))
    # Machine-independent floors only: every cell still finds
    # differences, and float32 beats float64 under the same rule.
    assert all(row["differences"] > 0 for row in cells.values())
    assert (cells["float32-vanilla"]["seeds_per_sec"]
            > cells["float64-vanilla"]["seeds_per_sec"])


#: The leaderboard lineup: every registered rule, with the betas the
#: docs quote.  ``make_rule`` defaults fill in the rest.
LEADERBOARD = (
    ("vanilla", lambda: None),
    ("momentum", lambda: MomentumRule(0.9)),
    ("nesterov", lambda: NesterovRule(0.9)),
    ("adam", lambda: AdamRule()),
    ("deepfool", lambda: DeepFoolRule()),
    ("adaptive", lambda: AdaptiveStepRule(MomentumRule(0.9))),
)


def test_rule_leaderboard(benchmark):
    """Iterations-to-difference for every registered rule on the pinned
    40-seed scenario, one ``ascent-rule[label]`` record each.

    The ISSUE-7 acceptance bar is asserted here: DeepFool's closed-form
    boundary step must find at least as many differences as momentum at
    strictly fewer mean iterations.  ``tools/bench_compare.py`` then
    holds every rule's row steady across commits, so a regression in
    any single rule fails CI's bench-smoke job.
    """
    models, seeds, hp = _scenario()
    assert tuple(label for label, _ in LEADERBOARD) == ASCENT_RULES

    def run():
        rows = {}
        for label, factory in LEADERBOARD:
            engine = AscentEngine(models, hp, LightingConstraint(),
                                  rng=73, rule=factory())
            start = time.perf_counter()
            result = engine.run(seeds)
            elapsed = time.perf_counter() - start
            ascent = [t.iterations for t in result.tests
                      if t.iterations > 0]
            rows[label] = {
                "seconds": round(elapsed, 4),
                "differences": result.difference_count,
                "mean_iterations": (round(float(np.mean(ascent)), 2)
                                    if ascent else None),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, row in rows.items():
        _RECORDS.append({"name": f"ascent-rule[{label}]", **row})
    print()
    print(render_table(
        ["rule", "# diffs", "mean iterations", "seconds"],
        [[label, row["differences"],
          row["mean_iterations"] if row["mean_iterations"] is not None
          else "-", row["seconds"]] for label, row in rows.items()],
        title="[engine] iterations-to-difference leaderboard"))
    assert all(row["differences"] > 0 for row in rows.values())
    # ISSUE-7 acceptance: deepfool >= momentum differences at strictly
    # fewer mean iterations.
    assert (rows["deepfool"]["differences"]
            >= rows["momentum"]["differences"])
    assert (rows["deepfool"]["mean_iterations"]
            < rows["momentum"]["mean_iterations"])
