"""Momentum gradient ascent for test generation.

Plain gradient ascent (Algorithm 1 line 14) can oscillate around narrow
difference regions, especially at large step sizes (the paper's Table 9
notes "larger s may lead to oscillation around the local optimum").
Momentum damps that oscillation.  This extension subclasses the generator
and accumulates a velocity across iterations of one seed; the ablation
benchmark compares iterations-to-difference against the vanilla rule.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.generator import DeepXplore, GeneratedTest, normalize_gradient
from repro.core.objectives import JointObjective
from repro.errors import ConfigError

__all__ = ["MomentumDeepXplore"]


class MomentumDeepXplore(DeepXplore):
    """DeepXplore with heavy-ball ascent: ``v = beta*v + grad``.

    ``beta = 0`` reduces exactly to the paper's update rule.
    """

    def __init__(self, *args, beta=0.9, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= beta < 1.0:
            raise ConfigError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)

    def generate_from_seed(self, seed_x, seed_index=0):
        start = time.perf_counter()
        x = np.asarray(seed_x, dtype=np.float64)[None, ...]
        tapes = self._run_models(x)
        outputs = [tape.outputs() for tape in tapes]
        if bool(self.oracle.differs_from_outputs(outputs)[0]):
            test = GeneratedTest(
                x=x[0].copy(), seed_index=seed_index, iterations=0,
                predictions=self.oracle.predictions_from_outputs(
                    outputs)[:, 0],
                seed_class=None, elapsed=time.perf_counter() - start)
            self._absorb_tapes(tapes)
            return test
        seed_class = None
        if self.task == "classification":
            seed_class = int(outputs[0].argmax(axis=1)[0])
        target_index = int(self.rng.integers(0, len(self.models)))
        objective = JointObjective(
            self._differential_objective(x, target_index, seed_class),
            self.coverage_factory(self.trackers, self.rng),
            self.hp.lambda2)
        self.constraint.setup(x[0], self.rng)

        velocity = np.zeros_like(x)
        for iteration in range(1, self.hp.max_iterations + 1):
            grad = objective.step_gradient_from_tapes(tapes)
            grad = self.constraint.apply(grad, x)
            grad = normalize_gradient(grad)
            velocity = self.beta * velocity + grad
            x = self.constraint.project(x + self.hp.step * velocity, x)
            tapes = self._run_models(x)
            outputs = [tape.outputs() for tape in tapes]
            if bool(self.oracle.differs_from_outputs(outputs)[0]):
                test = GeneratedTest(
                    x=x[0].copy(), seed_index=seed_index,
                    iterations=iteration,
                    predictions=self.oracle.predictions_from_outputs(
                        outputs)[:, 0],
                    seed_class=seed_class,
                    elapsed=time.perf_counter() - start)
                self._absorb_tapes(tapes)
                return test
        return None
