#!/usr/bin/env python
"""Continuous fuzzing walkthrough: persist, kill, resume, distill.

Demonstrates the corpus subsystem (docs/CORPUS.md) end to end:

1. run a coverage-guided fuzz session over a persistent corpus store;
2. run the same campaign in a second store but *kill it mid-wave*
   (simulated), after part of the wave already hit the disk;
3. resume the killed session and verify the two corpora are
   **bit-identical** — same entries, same inputs, same merged coverage;
4. continue fuzzing the survivor (a second run starts from the
   persisted coverage and skips every resolved seed);
5. distill the stored tests to a coverage-preserving regression suite.

Run:  python examples/continuous_fuzzing.py
"""

import shutil

import numpy as np

from repro import (FuzzSession, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_trio, load_dataset)
from repro.corpus import CorpusStore

SCALE = "smoke"
ROUNDS = 3          # target total waves
WAVE_SIZE = 8
SHARD_SIZE = 4      # identity, like a campaign's
ROOT_SEED = 42
DEMO_DIR = "examples/corpus-demo"


def make_session(corpus_dir, models, dataset, constraint):
    """Sessions over the same dir resume each other; identity = seed,
    wave_size, shard_size, constraint, model fingerprint."""
    return FuzzSession(corpus_dir, models, PAPER_HYPERPARAMS["mnist"],
                       constraint, wave_size=WAVE_SIZE,
                       shard_size=SHARD_SIZE, seed=ROOT_SEED,
                       dataset=dataset, initial_seed_count=24)


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)
    constraint = constraint_for_dataset(dataset)
    shutil.rmtree(DEMO_DIR, ignore_errors=True)

    # 1. An uninterrupted reference run.
    print(f"\nReference run: {ROUNDS} waves into {DEMO_DIR}/ref")
    reference = make_session(f"{DEMO_DIR}/ref", models, dataset, constraint)
    print(reference.run(ROUNDS).render())

    # 2. The same run, killed mid-wave: the third test write of the
    #    second wave raises, leaving a partially persisted wave behind.
    print("\nCrash run: killing the session mid-wave...")
    crashed = make_session(f"{DEMO_DIR}/crash", models, dataset, constraint)
    crashed.run(1)
    real_add, test_adds = CorpusStore.add_entry, [0]

    def dying_add(self, x, kind, **meta):
        if kind == "test":
            test_adds[0] += 1
            if test_adds[0] > 2:
                raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    CorpusStore.add_entry = dying_add
    try:
        crashed.run(ROUNDS)
        raise AssertionError("the simulated kill never fired")
    except KeyboardInterrupt:
        print("  ...killed with a wave half-persisted")
    finally:
        CorpusStore.add_entry = real_add

    # 3. Resume in a fresh session (what a restarted process would do).
    resumed = make_session(f"{DEMO_DIR}/crash", models, dataset, constraint)
    print(f"  resumed at round {resumed.completed_rounds}, "
          f"continuing to {ROUNDS}")
    resumed.run(ROUNDS)

    ref_store = CorpusStore(f"{DEMO_DIR}/ref")
    crash_store = CorpusStore(f"{DEMO_DIR}/crash")
    assert ([dict(e) for e in ref_store.entries()]
            == [dict(e) for e in crash_store.entries()])
    for entry in ref_store.entries():
        np.testing.assert_array_equal(ref_store.load_input(entry["hash"]),
                                      crash_store.load_input(entry["hash"]))
    ref_cov, crash_cov = (ref_store.coverage_states(),
                          crash_store.coverage_states())
    for name in ref_cov:
        np.testing.assert_array_equal(ref_cov[name]["covered"],
                                      crash_cov[name]["covered"])
    print("  kill + resume is bit-identical to the uninterrupted run ✓")

    # 4. Keep going: the saved corpus schedules only unresolved seeds.
    print(f"\nSecond run over the saved corpus (target {ROUNDS + 2}):")
    second = make_session(f"{DEMO_DIR}/crash", models, dataset, constraint)
    print(second.run(ROUNDS + 2).render())

    # 5. Distill the archived tests to a minimal regression suite.
    kept, dropped = second.distill()
    print(f"\nDistilled: kept {kept} test(s), dropped {dropped} entries")
    print()
    print(second.store.describe())
    print(f"mean neuron coverage: {second.mean_coverage():.1%}")


if __name__ == "__main__":
    main()
