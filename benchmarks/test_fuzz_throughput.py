"""Fuzz-loop throughput: seeds/second through resumable campaign waves.

Times a fresh :class:`~repro.corpus.FuzzSession` driving several waves
over a persistent corpus, then a *resumed* session continuing the same
corpus.  Two properties are asserted:

* the loop makes progress (waves complete, tests accumulate, coverage
  merges into the store);
* resuming is cheaper per round than starting cold — the whole point of
  persisting coverage + scheduler state is that a second run never
  re-pays for resolved seeds (pinned functionally via ``PassCounter``
  in ``tests/corpus/test_session_resume.py``; here we record the
  wall-clock side for the perf trajectory).

Both phases land in ``BENCH_fuzz.json`` with seeds/sec throughput.
"""

import time

from benchmarks.bench_records import record_bench
from benchmarks.conftest import SCALE, SEED
from repro.core import LightingConstraint, PAPER_HYPERPARAMS
from repro.corpus import FuzzSession
from repro.datasets import load_dataset
from repro.models import get_trio

ROUNDS_COLD = 3
ROUNDS_TOTAL = 5
WAVE_SIZE = 16
SHARD_SIZE = 8
POOL = 32


def _session(corpus_dir, dataset, models):
    return FuzzSession(corpus_dir, models, PAPER_HYPERPARAMS["mnist"],
                       LightingConstraint(), wave_size=WAVE_SIZE,
                       shard_size=SHARD_SIZE, seed=SEED + 31,
                       dataset=dataset, initial_seed_count=POOL)


def test_fuzz_throughput(benchmark, tmp_path):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    corpus_dir = tmp_path / "corpus"

    def run_both():
        cold_start = time.perf_counter()
        cold = _session(corpus_dir, dataset, models).run(ROUNDS_COLD)
        cold_elapsed = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm = _session(corpus_dir, dataset, models).run(ROUNDS_TOTAL)
        warm_elapsed = time.perf_counter() - warm_start
        return (cold, cold_elapsed), (warm, warm_elapsed)

    (cold, cold_s), (warm, warm_s) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    assert cold.waves_run == ROUNDS_COLD
    assert cold.new_tests > 0
    record_bench(cold_s, label="cold", waves=cold.waves_run,
                 seeds_fuzzed=cold.seeds_fuzzed,
                 seeds_per_sec=cold.seeds_fuzzed / max(cold_s, 1e-9),
                 new_tests=cold.new_tests)
    record_bench(warm_s, label="warm", waves=warm.waves_run,
                 seeds_fuzzed=warm.seeds_fuzzed,
                 seeds_per_sec=warm.seeds_fuzzed / max(warm_s, 1e-9),
                 new_tests=warm.new_tests)

    print()
    print(f"cold: {cold.waves_run} wave(s), {cold.seeds_fuzzed} seeds, "
          f"{cold.new_tests} new tests in {cold_s:.2f}s "
          f"({cold.seeds_fuzzed / max(cold_s, 1e-9):.1f} seeds/s)")
    print(f"warm: {warm.waves_run} wave(s), {warm.seeds_fuzzed} seeds, "
          f"{warm.new_tests} new tests in {warm_s:.2f}s")
    # Resume pays for fewer scheduled seeds per wave, never more.
    if warm.waves_run:
        assert (warm.seeds_fuzzed / warm.waves_run
                <= cold.seeds_fuzzed / cold.waves_run)
