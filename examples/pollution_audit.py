#!/usr/bin/env python
"""Auditing a training set for label pollution (§7.3).

Scenario: an attacker (or a sloppy labelling pipeline) flipped 30% of the
digit-9 training labels to 1.  Train one model on clean data and one on
the polluted copy, differentially test them with DeepXplore to surface
inputs the two disagree on in the 9-vs-1 direction, then flag the
training samples most structurally similar (SSIM) to those inputs.

Run:  python examples/pollution_audit.py
"""

from repro.experiments import run_pollution_detection

SCALE = "smoke"


def main():
    print("Training clean and polluted LeNet-5, generating probes...")
    result = run_pollution_detection(scale=SCALE, seed=0, fraction=0.3)
    print()
    print(result.render())
    print("\nInterpretation: the flagged samples are the training items a "
          "human auditor should re-label first.")


if __name__ == "__main__":
    main()
