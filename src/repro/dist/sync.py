"""Corpus synchronisation between hosts: pull/push with semilattice merge.

One protocol, two transports.  A *source* exposes a crash-consistent
manifest (config + entry records + coverage states, optionally
delta-filtered by the hashes the caller already holds) and batched
input fetch — over either a shared filesystem (:class:`LocalSource`,
built on :meth:`CorpusStore.snapshot`) or the farm daemon's TCP
plumbing (:class:`RemoteSource`, the ``store-*`` RPC verbs from
``repro.farm.server``).  :func:`pull` drains a source into a local
store; :func:`push` is the write-side inverse, feeding a remote
daemon's store through the same verbs.

Transfers are batched: :data:`DEFAULT_BATCH` entries per round-trip
(the ``store-entries`` verb), so a sync costs O(entries/batch) wire
exchanges instead of O(entries), and the manifest's ``have`` filter
means only the delta ever crosses the wire.  Batching is a pure
transport optimisation — the resulting store is bit-identical to a
per-entry (``batch=1``) sync, which the Hypothesis property in
tests/dist/test_sync.py pins under injected mid-batch crashes.

The whole protocol is a semilattice join, which is what makes it safe
to run at any time, from any side, any number of times:

* **idempotent** — entries are content-addressed (SHA-256), so a
  re-transferred entry dedups to a no-op; coverage merges with
  :func:`repro.coverage.merge_state_dicts` (OR), so replaying a
  snapshot changes nothing.  A merge that changes nothing skips the
  commit entirely — idle mirror syncs leave the checkpoint generation
  (and the ``.npz`` snapshots) untouched.
* **commutative** — A⊔B = B⊔A for both entries (set union, insertion
  order only affects iteration order, never content addressing) and
  coverage masks.
* **crash-safe** — entries land via the store's atomic ``.npy`` +
  append-only meta discipline *before* the coverage commit flips the
  checkpoint; a sync killed anywhere leaves a valid store that the next
  sync converges from.  The interesting crash addresses are armed as
  ``REPRO_FAULTS`` points: ``dist.pull.batch`` (per wire round-trip),
  ``dist.pull.entry`` (per entry absorbed) and ``dist.sync.mid``
  (after entries, before the coverage commit).
"""

from __future__ import annotations

import io

import numpy as np

from repro.corpus.store import (CorpusStore, coverage_from_bytes,
                                coverage_states_equal, coverage_to_bytes)
from repro.errors import FarmError
from repro.farm.wire import Blob, as_bytes
from repro.utils.faults import fault_point

__all__ = ["LocalSource", "RemoteSource", "pull", "push",
           "encode_array", "decode_array", "encode_coverage",
           "decode_coverage", "DEFAULT_BATCH"]

#: Entries per sync round-trip.  Large enough that round-trip latency
#: amortises away, small enough that one batch's arrays stay a modest
#: message even at paper scale.
DEFAULT_BATCH = 64


# -- wire encoding ----------------------------------------------------------
# Arrays travel as their ``.npy`` serialization and coverage states as
# the exact ``.npz`` bytes committed snapshots use on disk — no second
# format to keep compatible, and both are self-describing (shape +
# dtype ride along).  Encoders return wire :class:`Blob`\ s, which the
# farm protocol ships as binary frames (or base64 inside JSON for
# compatibility — the decoders accept either, see ``repro.farm.wire``).

def encode_array(x):
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(x))
    return Blob(buffer.getvalue())


def decode_array(payload):
    return np.load(io.BytesIO(as_bytes(payload)), allow_pickle=False)


def encode_coverage(state):
    return Blob(coverage_to_bytes(state))


def decode_coverage(payload):
    return coverage_from_bytes(as_bytes(payload))


# -- sources ----------------------------------------------------------------
class LocalSource:
    """Shared-filesystem source: another store directory, possibly live.

    Reads go through :meth:`CorpusStore.snapshot`, so pulling from a
    store that another process is actively fuzzing yields a
    crash-consistent prefix — never a torn checkpoint.
    """

    def __init__(self, path):
        self.store = path if isinstance(path, CorpusStore) \
            else CorpusStore(path, create=False)

    def describe(self):
        return self.store.path

    def manifest(self, have=None):
        snap = self.store.snapshot(exclude_hashes=have)
        return {"config": snap["config"], "entries": snap["entries"],
                "coverage": snap["coverage"]}

    def fetch(self, entry_hash):
        return self.store.load_input(entry_hash)

    def fetch_many(self, hashes):
        return [self.store.load_input(h) for h in hashes]


class RemoteSource:
    """TCP source: a named store behind a farm daemon's ``store-*`` verbs."""

    def __init__(self, host, port, store, timeout=10.0):
        from repro.farm.client import PeerClient
        self.client = PeerClient(host, port, timeout=timeout)
        self.store = str(store)

    def describe(self):
        return f"{self.client.host}:{self.client.port}/{self.store}"

    def manifest(self, have=None):
        reply = self.client.store_manifest(self.store, have=have)
        return {"config": reply.get("config"),
                "entries": reply.get("entries", []),
                "coverage": {name: decode_coverage(payload)
                             for name, payload
                             in reply.get("coverage", {}).items()}}

    def fetch(self, entry_hash):
        return decode_array(
            self.client.store_entry(self.store, entry_hash)["data"])

    def fetch_many(self, hashes):
        reply = self.client.store_entries(self.store, hashes)
        return [decode_array(record["data"])
                for record in reply["entries"]]


def _as_source(source):
    if isinstance(source, (LocalSource, RemoteSource)):
        return source
    if hasattr(source, "manifest") and hasattr(source, "fetch"):
        return source
    return LocalSource(source)


def _manifest_with_have(source, have):
    """Ask the source for a delta manifest; plain manifest for sources
    (duck-typed test doubles, older code) that predate the filter."""
    try:
        return source.manifest(have=have)
    except TypeError:
        return source.manifest()


# -- the protocol -----------------------------------------------------------
def pull(dest, source, batch=DEFAULT_BATCH):
    """Pull everything ``source`` has that ``dest`` lacks; returns added.

    Order is the crash-safety contract: durable entry writes first
    (content-addressed, idempotent, ``batch`` per round-trip), then one
    atomic coverage commit — skipped when the OR-merge changes nothing,
    so a no-op mirror sync leaves the checkpoint generation alone.  A
    crash mid-pull leaves entries without their coverage — harmless,
    the store's invariants hold — and re-pulling converges because the
    already-present prefix dedups away (it is excluded server-side by
    the manifest's ``have`` filter, and re-checked here).
    """
    if not isinstance(dest, CorpusStore):
        dest = CorpusStore(dest)
    source = _as_source(source)
    batch = max(1, int(batch))
    have = {entry["hash"] for entry in dest.entries()}
    manifest = _manifest_with_have(source, have)
    if manifest.get("config") is not None:
        # Adopt when fresh, validate otherwise — syncing stores built
        # against different model trios is a ConfigError, not a merge.
        dest.bind_config(manifest["config"])
    existing = dest.coverage_states()
    merged = dest.merge_coverage(manifest.get("coverage") or {})
    pending = [entry for entry in manifest.get("entries", [])
               if entry["hash"] not in dest]
    fetch_many = getattr(source, "fetch_many", None)
    added = 0
    for start in range(0, len(pending), batch):
        chunk = pending[start:start + batch]
        # One wire round-trip per batch.  Countdown N dies with N-1
        # batches durably absorbed and no coverage commit — the
        # partial-sync state the convergence property replays.
        fault_point("dist.pull.batch")
        if fetch_many is not None:
            arrays = fetch_many([entry["hash"] for entry in chunk])
        else:
            arrays = [source.fetch(entry["hash"]) for entry in chunk]
        for entry, x in zip(chunk, arrays):
            # Countdown N dies with N-1 entries absorbed — same replay
            # story at entry granularity.
            fault_point("dist.pull.entry")
            meta = {k: v for k, v in entry.items()
                    if k not in ("hash", "kind")}
            got, was_new = dest.add_entry(x, entry["kind"], **meta)
            if got != entry["hash"]:
                raise FarmError(
                    f"entry {entry['hash'][:12]}… from "
                    f"{source.describe()} hashed to {got[:12]}… after "
                    f"transfer — corrupt source or wire")
            added += int(was_new)
    # Entries are durable; the coverage join is the commit point —
    # unless the join is a no-op, in which case there is nothing to
    # commit and the generation must not move.
    fault_point("dist.sync.mid")
    if not coverage_states_equal(existing, merged):
        dest.commit(coverage_states=merged, fuzz_state=dest.fuzz_state())
    return added


def push(source, host, port, store, timeout=10.0, batch=DEFAULT_BATCH):
    """Push a local store into a remote daemon's store; returns pushed.

    The write-side mirror of :func:`pull`, for hosts that cannot be
    dialed back (NAT, firewalled workers): batched ``store-entries``
    pushes for everything the remote manifest lacks, then one
    ``store-merge-coverage`` to join coverage (itself a no-op on the
    remote when nothing new is covered).  Same laws, same fault points,
    same convergence-by-replay story.
    """
    from repro.farm.client import PeerClient
    if not isinstance(source, CorpusStore):
        source = CorpusStore(source, create=False)
    client = PeerClient(host, port, timeout=timeout)
    batch = max(1, int(batch))
    snap = source.snapshot()
    remote = client.store_manifest(store)
    have = {entry["hash"] for entry in remote.get("entries", [])}
    missing = [entry for entry in snap["entries"]
               if entry["hash"] not in have]
    pushed = 0
    for start in range(0, len(missing), batch):
        chunk = missing[start:start + batch]
        records = []
        for entry in chunk:
            fault_point("dist.pull.entry")
            records.append({
                "entry": dict(entry),
                "data": encode_array(source.load_input(entry["hash"]))})
        fault_point("dist.pull.batch")
        client.store_push_many(store, records, config=snap["config"])
        pushed += len(records)
    fault_point("dist.sync.mid")
    client.store_merge_coverage(
        store,
        {name: encode_coverage(state)
         for name, state in snap["coverage"].items()},
        config=snap["config"])
    return pushed
