#!/usr/bin/env python
"""Self-driving scenario: find steering disagreements between DAVE models.

This is the paper's motivating example (Figure 1): a slightly darker or
partially occluded road image makes one self-driving DNN steer the other
way.  Three DAVE variants are differentially tested under the lighting
and single-rectangle occlusion constraints; disagreements are printed as
left/straight/right verdicts with the predicted angles.

Run:  python examples/self_driving_differential.py
"""

import os

import numpy as np

from repro import (DeepXplore, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_trio, load_dataset)
from repro.core.oracle import RegressionOracle
from repro.utils.imageops import save_pgm

SCALE = "smoke"
_DIRECTIONS = {-1: "LEFT", 0: "straight", 1: "RIGHT"}


def describe(angles):
    return ", ".join(
        f"{a:+.2f} rad ({_DIRECTIONS[int(d)]})"
        for a, d in zip(angles, RegressionOracle.direction(angles)))


def main():
    dataset = load_dataset("driving", scale=SCALE, seed=0)
    models = get_trio("driving", scale=SCALE, seed=0, dataset=dataset)
    names = [m.name for m in models]
    print("Testing DAVE variants:", ", ".join(names))

    out_dir = os.path.dirname(os.path.abspath(__file__))
    for kind, label in [("light", "lighting"), ("occl", "occlusion")]:
        rng = np.random.default_rng(13)
        seeds, truths = dataset.sample_seeds(40, rng)
        engine = DeepXplore(models, PAPER_HYPERPARAMS["driving"],
                            constraint_for_dataset(dataset, kind=kind),
                            task="regression", rng=17)
        result = engine.run(seeds, max_tests=3)
        print(f"\n--- constraint: {label} ---")
        print(f"found {result.difference_count} disagreements from "
              f"{result.seeds_processed} seeds")
        for test in result.tests:
            if test.iterations == 0:
                continue
            true_angle = truths[test.seed_index]
            print(f"  seed #{test.seed_index} (human steering "
                  f"{true_angle:+.2f} rad), after {test.iterations} "
                  f"ascent steps:")
            print(f"    models now say: {describe(test.predictions)}")
            save_pgm(os.path.join(out_dir,
                                  f"driving-{kind}-{test.seed_index}.pgm"),
                     test.x)
    print(f"\nGenerated road images written to {out_dir}")


if __name__ == "__main__":
    main()
