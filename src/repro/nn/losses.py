"""Training losses.

Losses operate on the network's *outputs* (probabilities for classifiers,
raw values for regressors) and return ``(value, grad_wrt_outputs)``.  The
softmax lives inside the final Dense layer, so cross-entropy here receives
probabilities; the combination of its gradient with the exact softmax
backward reproduces the familiar ``p - onehot`` logit gradient.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["Loss", "CrossEntropy", "MeanSquaredError", "get_loss"]

_EPS = 1e-12


class Loss:
    """Base class: callable returning ``(scalar_loss, grad)``."""

    def __call__(self, outputs, targets):
        raise NotImplementedError


class CrossEntropy(Loss):
    """Negative log-likelihood over class probabilities.

    ``targets`` is an integer label vector of shape ``(batch,)``.
    """

    name = "cross_entropy"

    def __call__(self, probs, labels):
        labels = np.asarray(labels)
        if probs.ndim != 2:
            raise ShapeError(f"expected (batch, classes) probs, got {probs.shape}")
        if labels.shape != (probs.shape[0],):
            raise ShapeError(
                f"labels shape {labels.shape} does not match batch "
                f"{probs.shape[0]}")
        batch = probs.shape[0]
        picked = probs[np.arange(batch), labels]
        loss = float(-np.log(np.maximum(picked, _EPS)).mean())
        grad = np.zeros_like(probs)
        grad[np.arange(batch), labels] = -1.0 / (np.maximum(picked, _EPS) * batch)
        return loss, grad


class MeanSquaredError(Loss):
    """Mean squared error for regression heads."""

    name = "mse"

    def __call__(self, outputs, targets):
        targets = np.asarray(targets, dtype=outputs.dtype).reshape(outputs.shape)
        diff = outputs - targets
        loss = float((diff ** 2).mean())
        grad = 2.0 * diff / diff.size
        return loss, grad


def get_loss(spec):
    """Resolve a loss by name or pass an instance through."""
    if isinstance(spec, Loss):
        return spec
    mapping = {"cross_entropy": CrossEntropy, "mse": MeanSquaredError}
    try:
        return mapping[spec]()
    except KeyError:
        known = ", ".join(sorted(mapping))
        raise ShapeError(f"unknown loss {spec!r}; known: {known}") from None
