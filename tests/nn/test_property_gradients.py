"""Property-based gradient verification over randomly composed networks.

The single most important invariant of the substrate: for *any* network
this framework can express, the analytic input-gradient matches finite
differences.  Hypothesis composes random layer stacks and random probe
points; a failure here would silently corrupt every DeepXplore result.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (AvgPool2D, BatchNorm, Conv2D, Dense, Flatten,
                      MaxPool2D, Network)


@st.composite
def random_cnn(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    channels = draw(st.integers(1, 3))
    width = draw(st.integers(2, 5))
    use_bn = draw(st.booleans())
    pool_cls = draw(st.sampled_from([MaxPool2D, AvgPool2D]))
    act = draw(st.sampled_from(["relu", "tanh", "sigmoid", "leaky_relu"]))
    layers = [Conv2D(channels, width, 3, padding=1, activation=act, rng=rng,
                     name="c1")]
    if use_bn:
        bn = BatchNorm(width, name="bn")
        bn.running_mean[:] = rng.normal(size=width)
        bn.running_var[:] = rng.uniform(0.5, 2.0, size=width)
        layers.append(bn)
    layers += [
        pool_cls(2, name="p"),
        Flatten(name="f"),
        Dense(width * 3 * 3, 4, activation="softmax", rng=rng, name="o"),
    ]
    net = Network(layers, input_shape=(channels, 6, 6), name=f"gen{seed}")
    return net, rng


@given(random_cnn(), st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_class_gradient_matches_numeric(net_rng, class_index):
    net, rng = net_rng
    x = rng.random((2, *net.input_shape))
    grad = net.input_gradient_of_class(x, class_index)
    eps = 1e-6
    idx = tuple([1] + [int(rng.integers(0, s)) for s in net.input_shape])
    xp = x.copy(); xp[idx] += eps
    xm = x.copy(); xm[idx] -= eps
    numeric = (net.predict(xp)[1, class_index]
               - net.predict(xm)[1, class_index]) / (2 * eps)
    assert abs(grad[idx] - numeric) < 1e-6


@given(random_cnn())
@settings(max_examples=10, deadline=None)
def test_neuron_gradient_matches_numeric(net_rng):
    net, rng = net_rng
    x = rng.random((1, *net.input_shape))
    neuron = int(rng.integers(0, net.total_neurons))
    grad = net.input_gradient_of_neuron(x, neuron)
    eps = 1e-6
    idx = tuple([0] + [int(rng.integers(0, s)) for s in net.input_shape])
    xp = x.copy(); xp[idx] += eps
    xm = x.copy(); xm[idx] -= eps
    numeric = (net.neuron_value(xp, neuron)[0]
               - net.neuron_value(xm, neuron)[0]) / (2 * eps)
    assert abs(grad[idx] - numeric) < 1e-6


@given(random_cnn())
@settings(max_examples=10, deadline=None)
def test_gradient_linearity(net_rng):
    """d(a*F_i + b*F_j)/dx == a*dF_i/dx + b*dF_j/dx — the property the
    joint objective's gradient summation relies on."""
    net, rng = net_rng
    x = rng.random((1, *net.input_shape))
    seed = np.zeros(net.output_shape)
    seed[0], seed[1] = 2.0, -3.0
    combined = net.input_gradient_of_output(x, seed)
    separate = (2.0 * net.input_gradient_of_class(x, 0)
                - 3.0 * net.input_gradient_of_class(x, 1))
    np.testing.assert_allclose(combined, separate, atol=1e-10)
