"""Documentation hygiene checks: intra-repo markdown link resolution.

The docs subsystem (README.md, docs/*.md) cross-links files and
anchors; this module verifies that every relative link points at a file
that actually exists, so renames and moves fail CI instead of silently
breaking the docs.  Used by ``tests/test_docs.py`` (tier 1) and
``tools/check_docs.py`` (the CI docs job).
"""

from __future__ import annotations

import os
import re

__all__ = ["iter_markdown_links", "broken_intra_repo_links",
           "markdown_files"]

# Inline links: [text](target). Images share the syntax ((!)[...]).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^(```|~~~)")


def iter_markdown_links(text):
    """Yield link targets from markdown ``text``, skipping code fences."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield match.group(1)


def markdown_files(root):
    """The authored docs: README.md plus everything under ``docs/``.

    Generated or extracted markdown at the top level (PAPERS.md,
    SNIPPETS.md, report output) is out of scope — only files a human
    maintains are held to the link contract.
    """
    found = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        found.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                found.append(os.path.join(docs_dir, name))
    return found


def broken_intra_repo_links(root, files=None):
    """Relative links that don't resolve, as ``(source, target)`` pairs.

    External links (``http(s)://``, ``mailto:``) and pure in-page
    anchors (``#section``) are out of scope; everything else must name
    an existing file or directory relative to the markdown file that
    contains it.
    """
    broken = []
    for path in files or markdown_files(root):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(path)
        for target in iter_markdown_links(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#")[0]))
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    return broken
