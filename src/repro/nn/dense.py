"""Fully connected layer with built-in activation."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layer import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import as_rng

__all__ = ["Dense"]


class Dense(Layer):
    """``y = act(x @ W + b)`` for 2-D inputs ``(batch, in_features)``.

    The activation lives inside the layer (Keras convention) so that
    coverage instruments post-activation values, matching how the paper
    counts neurons.
    """

    exposes_neurons = True

    def __init__(self, in_features, out_features, activation="relu",
                 initializer="glorot_uniform", rng=None, name=None):
        super().__init__(name=name)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = get_activation(activation)
        rng = as_rng(rng)
        init = get_initializer(initializer)
        weight = init((self.out_features, self.in_features),
                      fan_in=self.in_features, fan_out=self.out_features,
                      rng=rng)
        self.weight = Parameter(weight, f"{self.name}.weight")
        self.bias = Parameter(np.zeros(self.out_features), f"{self.name}.bias")

    def forward(self, x, training=False, workspace=None):
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_features}), got {x.shape}")
        if workspace is None:
            z = x @ self.weight.value.T + self.bias.value
        else:
            z = workspace.get((id(self), "z"),
                              (x.shape[0], self.out_features), x.dtype)
            np.matmul(x, self.weight.value.T, out=z)
            z += self.bias.value
        if self.activation.needs_preactivation:
            a = self.activation.forward(z)
            return a, (x, z, a, workspace)
        a = self.activation.forward_into(z, z)
        return a, (x, None, a, workspace)

    def backward(self, ctx, grad_out, accumulate=True):
        x, z, a, workspace = ctx
        grad_z = self.activation.backward(grad_out, z, a)
        if accumulate:
            self.weight.grad += grad_z.T @ x
            self.bias.grad += grad_z.sum(axis=0)
        if workspace is None:
            return grad_z @ self.weight.value
        grad_x = workspace.get((id(self), "gx"), x.shape, grad_z.dtype)
        return np.matmul(grad_z, self.weight.value, out=grad_x)

    def parameters(self):
        return [self.weight, self.bias]

    def output_shape(self, input_shape):
        return (self.out_features,)

    def neuron_count(self, input_shape):
        return self.out_features
