"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

from repro.nn import dtypes

__all__ = ["Parameter"]


class Parameter:
    """A named trainable array plus its accumulated gradient.

    Layers own their parameters; optimizers mutate ``value`` in place based
    on ``grad``.  Gradients accumulate across :meth:`repro.nn.Layer.backward`
    calls until :meth:`zero_grad` is invoked, which lets a training step sum
    gradients over sub-batches if it wants to.

    Storage dtype follows the active :mod:`repro.nn.dtypes` policy at
    construction time (pass ``dtype`` to override).
    """

    def __init__(self, value, name, dtype=None):
        self.value = np.asarray(value, dtype=dtypes.resolve(dtype))
        self.grad = np.zeros_like(self.value)
        self.name = str(name)

    @property
    def shape(self):
        return self.value.shape

    @property
    def dtype(self):
        return self.value.dtype

    def cast(self, dtype):
        """Convert storage to ``dtype`` in place (grad is reset to zero)."""
        dt = dtypes.resolve(dtype)
        if self.value.dtype != dt:
            self.value = self.value.astype(dt)
            self.grad = np.zeros_like(self.value)
        return self

    def zero_grad(self):
        self.grad.fill(0.0)

    def __repr__(self):
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
