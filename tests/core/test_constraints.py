"""Domain constraints: each §6.2 rule holds exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (DrebinConstraint, LightingConstraint,
                        MultiRectOcclusion, PdfFeatureConstraint,
                        SingleRectOcclusion, Unconstrained,
                        constraint_for_dataset)
from repro.errors import ConstraintError


class TestLighting:
    def test_gradient_becomes_uniform_per_sample(self):
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(3, 1, 4, 4))
        out = LightingConstraint().apply(grad, None)
        for i in range(3):
            values = np.unique(out[i])
            assert values.size == 1
            assert values[0] == pytest.approx(grad[i].mean())

    def test_direction_follows_mean_sign(self):
        grad = np.full((1, 1, 2, 2), -0.5)
        out = LightingConstraint().apply(grad, None)
        assert np.all(out < 0)

    def test_project_clips(self):
        x = np.array([[[[-0.2, 0.5], [1.4, 0.9]]]])
        out = LightingConstraint().project(x, x)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestSingleRect:
    def test_only_rectangle_changes(self):
        rng = np.random.default_rng(1)
        con = SingleRectOcclusion(height=3, width=4)
        x0 = np.zeros((1, 8, 8))
        con.setup(x0, rng)
        grad = np.ones((2, 1, 8, 8))
        out = con.apply(grad, None)
        assert int((out != 0).sum()) == 2 * 3 * 4
        top, left = con._pos
        assert np.all(out[:, :, top:top + 3, left:left + 4] == 1.0)

    def test_requires_setup(self):
        con = SingleRectOcclusion()
        with pytest.raises(ConstraintError):
            con.apply(np.zeros((1, 1, 8, 8)), None)

    def test_rectangle_must_fit(self):
        con = SingleRectOcclusion(height=10, width=10)
        with pytest.raises(ConstraintError):
            con.setup(np.zeros((1, 8, 8)), np.random.default_rng(0))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_rectangle_always_inside_image(self, seed):
        con = SingleRectOcclusion(height=3, width=5)
        con.setup(np.zeros((1, 9, 11)), np.random.default_rng(seed))
        top, left = con._pos
        assert 0 <= top <= 9 - 3
        assert 0 <= left <= 11 - 5


class TestMultiRect:
    def test_only_darkening_allowed(self):
        rng = np.random.default_rng(2)
        con = MultiRectOcclusion(size=2, count=3)
        x0 = np.zeros((1, 8, 8))
        con.setup(x0, rng)
        grad = np.abs(rng.normal(size=(1, 1, 8, 8)))  # all positive
        out = con.apply(grad, None)
        # Positive-mean patches are zeroed: nothing may brighten.
        assert np.all(out <= 0.0)
        assert np.all(out == 0.0)

    def test_negative_gradient_passes_in_patches(self):
        rng = np.random.default_rng(3)
        con = MultiRectOcclusion(size=2, count=2)
        con.setup(np.zeros((1, 8, 8)), rng)
        grad = -np.ones((1, 1, 8, 8))
        out = con.apply(grad, None)
        assert int((out != 0).sum()) <= 2 * 2 * 2
        assert np.all(out <= 0.0)
        assert (out != 0).any()

    def test_patch_size_validation(self):
        con = MultiRectOcclusion(size=9, count=1)
        with pytest.raises(ConstraintError):
            con.setup(np.zeros((1, 8, 8)), np.random.default_rng(0))
        with pytest.raises(ConstraintError):
            MultiRectOcclusion(size=0)


class TestDrebin:
    def _mask(self, n=10, manifest=5):
        mask = np.zeros(n, dtype=bool)
        mask[:manifest] = True
        return mask

    def test_apply_masks_non_manifest_and_set_bits(self):
        con = DrebinConstraint(self._mask())
        x = np.zeros((1, 10))
        x[0, 0] = 1.0  # already set: not eligible
        grad = np.ones((1, 10))
        out = con.apply(grad, x)
        assert out[0, 0] == 0.0          # already 1
        assert np.all(out[0, 5:] == 0.0)  # code features frozen
        assert np.all(out[0, 1:5] == 1.0)

    def test_negative_gradient_not_eligible(self):
        con = DrebinConstraint(self._mask())
        x = np.zeros((1, 10))
        grad = -np.ones((1, 10))
        assert np.all(con.apply(grad, x) == 0.0)

    def test_project_flips_top_bit_only(self):
        con = DrebinConstraint(self._mask(), per_step=1)
        x_prev = np.zeros((1, 10))
        x_new = x_prev.copy()
        x_new[0, 2] = 0.4
        x_new[0, 3] = 0.9  # strongest move
        out = con.project(x_new, x_prev)
        assert out[0, 3] == 1.0
        assert out[0, 2] == 0.0
        assert out.sum() == 1.0

    def test_project_never_removes_bits(self):
        con = DrebinConstraint(self._mask())
        x_prev = np.ones((1, 10))
        x_new = np.zeros((1, 10))  # gradient step tried to remove
        out = con.project(x_new, x_prev)
        np.testing.assert_array_equal(out, x_prev)

    def test_per_step_validation(self):
        with pytest.raises(ConstraintError):
            DrebinConstraint(self._mask(), per_step=0)


class TestPdf:
    def _mask(self, n=8, mutable=5):
        mask = np.zeros(n, dtype=bool)
        mask[:mutable] = True
        return mask

    def test_apply_freezes_immutable(self):
        con = PdfFeatureConstraint(self._mask())
        grad = np.ones((1, 8))
        out = con.apply(grad, np.zeros((1, 8)))
        assert np.all(out[0, 5:] == 0.0)
        assert np.all(out[0, :5] == 1.0)

    def test_project_rounds_to_integers(self):
        con = PdfFeatureConstraint(self._mask())
        x_prev = np.full((1, 8), 3.0)
        x_new = x_prev + 0.7
        out = con.project(x_new, x_prev)
        np.testing.assert_array_equal(out[0, :5], 4.0)
        np.testing.assert_array_equal(out[0, 5:], 3.0)

    def test_project_small_steps_dropped(self):
        con = PdfFeatureConstraint(self._mask())
        x_prev = np.full((1, 8), 3.0)
        out = con.project(x_prev + 0.3, x_prev)
        np.testing.assert_array_equal(out, x_prev)

    def test_counts_stay_non_negative_and_bounded(self):
        con = PdfFeatureConstraint(self._mask(), max_value=10.0)
        x_prev = np.full((1, 8), 1.0)
        out = con.project(x_prev - 5.0, x_prev)
        assert out.min() >= 0.0
        out = con.project(x_prev + 100.0, x_prev)
        assert out[0, :5].max() <= 10.0

    def test_decrements_allowed(self):
        con = PdfFeatureConstraint(self._mask())
        x_prev = np.full((1, 8), 5.0)
        out = con.project(x_prev - 2.0, x_prev)
        np.testing.assert_array_equal(out[0, :5], 3.0)


class TestFactory:
    def test_feature_datasets(self, drebin_smoke, pdf_smoke):
        assert isinstance(constraint_for_dataset(drebin_smoke),
                          DrebinConstraint)
        assert isinstance(constraint_for_dataset(pdf_smoke),
                          PdfFeatureConstraint)

    def test_image_kinds(self, mnist_smoke):
        assert isinstance(constraint_for_dataset(mnist_smoke),
                          LightingConstraint)
        assert isinstance(constraint_for_dataset(mnist_smoke, kind="occl"),
                          SingleRectOcclusion)
        assert isinstance(constraint_for_dataset(mnist_smoke,
                                                 kind="blackout"),
                          MultiRectOcclusion)
        assert isinstance(constraint_for_dataset(mnist_smoke, kind="none"),
                          Unconstrained)
        with pytest.raises(ConstraintError):
            constraint_for_dataset(mnist_smoke, kind="sepia")
