"""Benchmark fixtures.

Benchmarks run the experiment harness at smoke scale.  The session-scoped
``warm_caches`` fixture trains (or loads) all 15 zoo models up front so
the timed region measures the experiment itself, not one-time training.

Each benchmark prints the reproduced table, so the benchmark log doubles
as the paper-table output (tee it to bench_output.txt).

Every benchmark test also lands in ``BENCH_fuzz.json`` at the repo root
— one machine-readable wall-clock record per test via the autouse
``bench_wall_clock`` fixture, plus any labeled throughput records a
benchmark adds itself with
:func:`benchmarks.bench_records.record_bench` — so the perf trajectory
across PRs has data points instead of log archaeology.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_records import record_bench, write_records
from repro.datasets import dataset_names, load_dataset
from repro.models import get_trio
from repro.nn import dtypes

SCALE = "smoke"
SEED = 0


@pytest.fixture(autouse=True, scope="session")
def _pin_float64_default():
    """Benchmarks compare against float64 baselines; float32 runs are
    explicit (see test_engine_throughput.py's dtype matrix)."""
    import numpy as np
    previous = dtypes.set_default_dtype(np.float64)
    yield
    dtypes.set_default_dtype(previous)


@pytest.fixture(scope="session", autouse=True)
def warm_caches():
    for name in dataset_names():
        dataset = load_dataset(name, scale=SCALE, seed=SEED)
        get_trio(name, scale=SCALE, seed=SEED, dataset=dataset)


@pytest.fixture(autouse=True)
def bench_wall_clock(request):
    """Record every benchmark's wall-clock in BENCH_fuzz.json — the
    engine-throughput suites time themselves with ``benchmark.pedantic``
    and would otherwise be invisible to the machine-readable record."""
    start = time.perf_counter()
    yield
    record_bench(time.perf_counter() - start, name=request.node.nodeid)


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer and
    print its rendered table."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.render())
    return result


def pytest_sessionfinish(session, exitstatus):
    write_records(SCALE, SEED)
