"""The tentpole contract, end to end: ``kill -9`` a real ``repro
serve`` daemon mid-wave / mid-checkpoint, restart it, and the resumed
corpus is bit-identical to an uninterrupted run.

Deterministic crashes use the ``REPRO_FAULTS`` env plan (the whole
point of :mod:`repro.utils.faults`: the crash lands at the same
instruction every run); one test also sends a real ``SIGKILL`` to pin
that the injected ``os._exit(137)`` is a faithful stand-in.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.corpus import CorpusStore, FuzzSession
from repro.farm import FarmClient
from repro.utils.faults import KILL_EXIT_CODE

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                   "..", "..", "src"))

SPEC = {"store": "tenant", "kind": "fuzz", "rounds": 2, "seeds": 12,
        "wave_size": 6, "shard_size": 4, "seed": 7}


def start_daemon(root, faults=None):
    """Launch ``repro serve`` on ``root`` as a real subprocess."""
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def wait_ready(root, proc, timeout=120.0):
    """Block until the daemon answers ping (or it died at startup)."""
    client = FarmClient(str(root), timeout=5)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited {proc.returncode} before becoming ready:\n"
                f"{proc.stdout.read()}")
        try:
            client.ping()
            return client
        except Exception:
            time.sleep(0.05)
    raise AssertionError("daemon never became ready")


def reference_store(path, models, dataset, spec=SPEC):
    """The uninterrupted run every crashed-and-resumed store must match."""
    FuzzSession(str(path), models, PAPER_HYPERPARAMS["mnist"],
                constraint_for_dataset(dataset, kind="default"),
                task=dataset.task, wave_size=spec["wave_size"], workers=1,
                shard_size=spec["shard_size"], seed=spec["seed"],
                dataset=dataset,
                initial_seed_count=spec["seeds"]).run(spec["rounds"])
    return str(path)


def resume_and_verify(root, spec, reference, assert_stores_identical,
                      wait_timeout=300.0):
    """Start a clean daemon over ``root``, let the auto-requeued job
    finish, drain, and compare the store against ``reference``."""
    proc = start_daemon(root)
    try:
        client = wait_ready(root, proc)
        jobs = client.status()
        assert len(jobs) == 1           # the interrupted job, re-queued
        record = client.wait(jobs[0]["job_id"], timeout=wait_timeout)
        assert record["status"] == "done"
        assert record["result"]["completed_rounds"] == spec["rounds"]
        client.drain()
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert_stores_identical(os.path.join(str(root), "stores",
                                         spec["store"]), reference)


@pytest.fixture
def reference(tmp_path, mnist_trio, mnist_smoke):
    path = reference_store(tmp_path / "reference", mnist_trio, mnist_smoke)
    # The crash tests below need enough new tests for their countdowns
    # to fire mid-run; this pins the spec stays crash-worthy.
    assert len(CorpusStore(path).entries(kind="test")) >= 3
    return path


def test_daemon_killed_mid_wave_resumes_bit_identically(
        tmp_path, reference, assert_stores_identical):
    """``corpus.add-test:3``: the daemon dies absorbing the 3rd new test
    of the campaign — two tests persisted, the wave half-applied."""
    root = tmp_path / "farm"
    proc = start_daemon(root, faults="corpus.add-test:3")
    try:
        client = wait_ready(root, proc)
        client.submit(SPEC)
        assert proc.wait(timeout=300) == KILL_EXIT_CODE
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    resume_and_verify(root, SPEC, reference, assert_stores_identical)


def test_daemon_killed_mid_checkpoint_resumes_bit_identically(
        tmp_path, reference, assert_stores_identical):
    """``corpus.commit.mid:3``: the daemon dies inside a commit — wave
    snapshots written, ``checkpoint.json`` not yet flipped — the
    narrowest crash window the store's commit protocol defends."""
    root = tmp_path / "farm"
    proc = start_daemon(root, faults="corpus.commit.mid:3")
    try:
        client = wait_ready(root, proc)
        client.submit(SPEC)
        assert proc.wait(timeout=300) == KILL_EXIT_CODE
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    resume_and_verify(root, SPEC, reference, assert_stores_identical)


def test_daemon_sigkilled_for_real_resumes_to_completion(
        tmp_path, mnist_trio, mnist_smoke, assert_stores_identical):
    """A genuine ``kill -9`` (not injected) once the store shows real
    progress; the restarted daemon finishes the job losslessly."""
    spec = dict(SPEC, rounds=8)
    root = tmp_path / "farm"
    store_path = os.path.join(str(root), "stores", spec["store"])
    proc = start_daemon(root)
    try:
        client = wait_ready(root, proc)
        client.submit(spec)
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            state = CorpusStore(store_path).fuzz_state() \
                if os.path.isdir(store_path) else None
            if state is not None and state["completed_rounds"] >= 1:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("job never made progress")
        os.kill(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=60) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    resume_and_verify(
        root, spec,
        reference_store(tmp_path / "reference", mnist_trio, mnist_smoke,
                        spec),
        assert_stores_identical)
