"""Trainer: learning actually happens, metrics, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (Dense, Network, Trainer, accuracy, mse,
                      steering_accuracy)


def _toy_classification(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


def _mlp(seed=0, out=2, activation="softmax"):
    rng = np.random.default_rng(seed)
    return Network([
        Dense(4, 16, rng=rng, name="h"),
        Dense(16, out, activation=activation, rng=rng, name="o"),
    ], input_shape=(4,), name="toy")


def test_loss_decreases_and_accuracy_improves():
    x, y = _toy_classification()
    net = _mlp()
    before = accuracy(net, x, y)
    trainer = Trainer(net, loss="cross_entropy", optimizer="adam", rng=1,
                      lr=0.01)
    history = trainer.fit(x, y, epochs=25, batch_size=32)
    assert history["loss"][-1] < history["loss"][0]
    after = accuracy(net, x, y)
    assert after > max(before, 0.9)


def test_validation_metric_recorded():
    x, y = _toy_classification()
    net = _mlp(seed=1)
    trainer = Trainer(net, rng=2)
    history = trainer.fit(x, y, epochs=3, batch_size=64,
                          validation=(x, y), metric=accuracy)
    assert len(history["val_metric"]) == 3


def test_regression_training():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(400, 4))
    y = 0.5 * x[:, 0] - 0.25 * x[:, 2]
    net = _mlp(seed=2, out=1, activation="linear")
    trainer = Trainer(net, loss="mse", optimizer="adam", rng=4)
    trainer.fit(x, y, epochs=20, batch_size=32)
    assert mse(net, x, y) < 0.05
    assert steering_accuracy(net, x, y) > 0.95


def test_mismatched_shapes_rejected():
    net = _mlp(seed=5)
    trainer = Trainer(net)
    with pytest.raises(ConfigError):
        trainer.fit(np.zeros((10, 4)), np.zeros(9, dtype=int), epochs=1)


def test_training_is_deterministic_given_seeds():
    x, y = _toy_classification(seed=7)

    def run():
        net = _mlp(seed=11)
        Trainer(net, rng=13).fit(x, y, epochs=3, batch_size=32)
        return net.predict(x[:5])

    np.testing.assert_array_equal(run(), run())
