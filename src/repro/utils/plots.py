"""ASCII line plots for experiment figures.

The environment has no matplotlib; the paper's Figures 9 and 10 are
line charts, so this module renders multi-series charts in plain text.
Used by the reporting pipeline to put a visual next to each figure's
numbers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#%@&"


def ascii_plot(series, width=60, height=16, title=None, x_label="x",
               y_label="y"):
    """Render ``{name: (xs, ys)}`` as an ASCII chart.

    Series share axes; each gets a marker from a fixed cycle and a legend
    line.  NaN points are skipped.
    """
    if not series:
        raise ConfigError("ascii_plot needs at least one series")
    if width < 10 or height < 4:
        raise ConfigError("plot area too small")

    points = []
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise ConfigError(f"series {name!r}: x/y lengths differ")
        keep = ~(np.isnan(xs) | np.isnan(ys))
        points.append((name, xs[keep], ys[keep]))

    all_x = np.concatenate([xs for _, xs, _ in points if xs.size]
                           or [np.array([0.0])])
    all_y = np.concatenate([ys for _, _, ys in points if ys.size]
                           or [np.array([0.0])])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, xs, ys) in enumerate(points):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + f"  {x_lo:.3g}".ljust(width // 2)
                 + f"{x_hi:.3g}".rjust(width // 2)
                 + f"  ({x_label})")
    for index, (name, _, _) in enumerate(points):
        marker = _MARKERS[index % len(_MARKERS)]
        lines.append(f"  {marker} = {name}")
    return "\n".join(lines)
