"""ASCII line plots."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.plots import ascii_plot


def test_basic_plot_structure():
    text = ascii_plot({"up": ([0, 1, 2], [0.0, 0.5, 1.0])},
                      width=20, height=6, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert any("o" in line for line in lines)
    assert "o = up" in text


def test_multiple_series_distinct_markers():
    text = ascii_plot({
        "a": ([0, 1], [0.0, 1.0]),
        "b": ([0, 1], [1.0, 0.0]),
    }, width=20, height=6)
    assert "o = a" in text and "x = b" in text


def test_extremes_placed_at_edges():
    text = ascii_plot({"s": ([0, 10], [0.0, 1.0])}, width=21, height=5)
    plot_lines = [l for l in text.splitlines() if "|" in l]
    # min value bottom-left, max value top-right
    assert plot_lines[0].rstrip().endswith("o")
    assert "o" in plot_lines[-1]


def test_nan_points_skipped():
    text = ascii_plot({"s": ([0, 1, 2], [0.1, float("nan"), 0.3])},
                      width=15, height=5)
    assert text.count("o") - 1 == 2  # 2 points + 1 legend marker


def test_constant_series_no_crash():
    ascii_plot({"flat": ([0, 1, 2], [0.5, 0.5, 0.5])}, width=15, height=5)


def test_validation():
    with pytest.raises(ConfigError):
        ascii_plot({})
    with pytest.raises(ConfigError):
        ascii_plot({"s": ([0], [1])}, width=5, height=2)
    with pytest.raises(ConfigError):
        ascii_plot({"s": ([0, 1], [1])})


def test_axis_labels_present():
    text = ascii_plot({"s": ([0, 4], [0, 8])}, width=20, height=5,
                      x_label="threshold")
    assert "(threshold)" in text
    assert "8" in text and "0" in text
