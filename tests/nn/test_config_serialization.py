"""Architecture serialization: config round trips and single-file models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import (build_dave_orig, build_lenet5, build_resnet,
                          build_vgg16)
from repro.nn import (Dense, Layer, Network, load_network,
                      network_from_config, network_from_payload,
                      network_to_config, network_to_payload, save_network)


@pytest.mark.parametrize("builder", [build_lenet5, build_vgg16,
                                     build_resnet, build_dave_orig])
def test_zoo_architectures_roundtrip(builder):
    original = builder(rng=np.random.default_rng(0))
    rebuilt = network_from_config(network_to_config(original))
    assert rebuilt.input_shape == original.input_shape
    assert rebuilt.output_shape == original.output_shape
    assert rebuilt.total_neurons == original.total_neurons
    assert len(rebuilt.layers) == len(original.layers)
    # Weight shapes line up, so a state dict transfers.
    rebuilt.load_state_dict(original.state_dict())
    x = np.random.default_rng(1).random((2, *original.input_shape))
    np.testing.assert_allclose(rebuilt.predict(x), original.predict(x))


def test_save_load_single_file(tmp_path):
    net = build_lenet5(rng=np.random.default_rng(2))
    x = np.random.default_rng(3).random((3, 1, 28, 28))
    expected = net.predict(x)
    path = tmp_path / "model.npz"
    save_network(net, path)
    # Reload with no knowledge of the builder.
    clone = load_network(path)
    np.testing.assert_allclose(clone.predict(x), expected)
    assert clone.name == net.name


def test_payload_roundtrip_bit_identical():
    """The campaign worker path: payload → rebuilt network computes the
    exact same float64 outputs, no disk involved."""
    net = build_lenet5(rng=np.random.default_rng(7))
    clone = network_from_payload(network_to_payload(net))
    x = np.random.default_rng(8).random((3, 1, 28, 28))
    np.testing.assert_array_equal(clone.predict(x), net.predict(x))
    assert clone.name == net.name


def test_payload_survives_pickling():
    import pickle
    net = build_lenet5(rng=np.random.default_rng(9))
    payload = pickle.loads(pickle.dumps(network_to_payload(net)))
    clone = network_from_payload(payload)
    x = np.random.default_rng(10).random((2, 1, 28, 28))
    np.testing.assert_array_equal(clone.predict(x), net.predict(x))


def test_payload_state_is_a_copy():
    net = build_lenet5(rng=np.random.default_rng(11))
    payload = network_to_payload(net)
    name = next(iter(payload["state"]))
    payload["state"][name][...] = 0.0
    assert not np.array_equal(payload["state"][name],
                              net.state_dict()[name])


def test_load_plain_weights_file_rejected(tmp_path):
    net = build_lenet5(rng=np.random.default_rng(4))
    path = tmp_path / "weights.npz"
    net.save(path)  # no embedded config
    with pytest.raises(ConfigError):
        load_network(path)


def test_unknown_layer_type_rejected():
    class Custom(Layer):
        def forward(self, x, training=False):
            return x

        def output_shape(self, input_shape):
            return tuple(input_shape)

    net = Network([Custom()], (4,))
    with pytest.raises(ConfigError):
        network_to_config(net)
    from repro.nn import layer_from_config
    with pytest.raises(ConfigError):
        layer_from_config({"type": "transformer"})


def test_config_is_json_serializable():
    import json
    net = build_dave_orig(rng=np.random.default_rng(5))
    text = json.dumps(network_to_config(net))
    rebuilt = network_from_config(json.loads(text))
    assert rebuilt.output_shape == net.output_shape


def test_fixedscale_constants_travel():
    from repro.nn import FixedScale
    mean = np.array([1.0, 2.0])
    std = np.array([3.0, 4.0])
    net = Network([FixedScale(mean, std, name="s"),
                   Dense(2, 2, activation="softmax",
                         rng=np.random.default_rng(6), name="o")], (2,))
    rebuilt = network_from_config(network_to_config(net))
    np.testing.assert_array_equal(rebuilt.layers[0].mean, mean)
    np.testing.assert_array_equal(rebuilt.layers[0].std, std)
