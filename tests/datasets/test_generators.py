"""The five synthetic dataset generators: domains, determinism, structure."""

import numpy as np
import pytest

from repro.datasets import (dataset_names, generate_drebin, generate_driving,
                            generate_imagenet, generate_mnist, generate_pdf,
                            load_dataset)
from repro.datasets.drebin import build_vocabulary
from repro.datasets.driving import render_road, steering_for
from repro.datasets.mnist import DIGIT_SKELETONS, render_digit
from repro.datasets.imagenet import CLASS_NAMES, render_scene
from repro.datasets.pdfmalware import PDF_FEATURES, mutable_feature_mask
from repro.errors import DatasetError


class TestMnist:
    def test_shapes_and_range(self, mnist_smoke):
        assert mnist_smoke.input_shape == (1, 28, 28)
        assert mnist_smoke.num_classes == 10
        assert mnist_smoke.x_train.min() >= 0.0
        assert mnist_smoke.x_train.max() <= 1.0

    def test_all_ten_classes_in_both_splits(self, mnist_smoke):
        assert set(mnist_smoke.y_train) == set(range(10))
        assert set(mnist_smoke.y_test) == set(range(10))

    def test_render_digit_deterministic(self):
        a = render_digit(3, np.random.default_rng(5))
        b = render_digit(3, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_render_digit_validates(self):
        with pytest.raises(DatasetError):
            render_digit(10, np.random.default_rng(0))

    def test_all_skeletons_render_visible_strokes(self):
        rng = np.random.default_rng(1)
        for digit in DIGIT_SKELETONS:
            img = render_digit(digit, rng)
            assert img.max() > 0.8, f"digit {digit} almost invisible"
            # Strokes should cover a meaningful but not overwhelming area.
            assert 0.03 < (img > 0.5).mean() < 0.5

    def test_digits_are_distinguishable(self):
        """Mean images of different digits must differ substantially —
        otherwise no classifier could learn the dataset."""
        rng = np.random.default_rng(2)
        means = {d: np.mean([render_digit(d, rng) for _ in range(8)], axis=0)
                 for d in (0, 1, 7)}
        assert np.abs(means[0] - means[1]).sum() > 20
        assert np.abs(means[1] - means[7]).sum() > 20


class TestImagenet:
    def test_shapes(self, imagenet_smoke):
        assert imagenet_smoke.input_shape == (3, 32, 32)
        assert imagenet_smoke.num_classes == 10
        assert imagenet_smoke.class_names == list(CLASS_NAMES)

    def test_render_scene_range_and_determinism(self):
        a = render_scene(4, np.random.default_rng(9))
        b = render_scene(4, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0.0 and a.max() <= 1.0

    def test_invalid_class(self):
        with pytest.raises(DatasetError):
            render_scene(10, np.random.default_rng(0))

    def test_classes_differ(self):
        rng = np.random.default_rng(3)
        mean_imgs = [np.mean([render_scene(c, rng) for _ in range(5)], axis=0)
                     for c in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(mean_imgs[i] - mean_imgs[j]).mean() > 0.02, \
                    (i, j)


class TestDriving:
    def test_regression_task(self, driving_smoke):
        assert driving_smoke.task == "regression"
        assert driving_smoke.input_shape == (1, 16, 32)
        assert np.abs(np.asarray(driving_smoke.y_train)).max() <= 1.3

    def test_steering_sign_follows_curvature(self):
        assert steering_for(0.4, 0.0) > 0
        assert steering_for(-0.4, 0.0) < 0
        assert steering_for(0.0, 0.0) == pytest.approx(0.0)

    def test_steering_clipped(self):
        assert steering_for(10.0, 10.0) == pytest.approx(1.2)

    def test_render_road_brightness_control(self):
        rng = np.random.default_rng(0)
        dark = render_road(0.1, 0.0, rng, brightness=0.6)
        rng = np.random.default_rng(0)
        bright = render_road(0.1, 0.0, rng, brightness=1.2)
        assert bright.mean() > dark.mean()

    def test_curvature_moves_road(self):
        rng = np.random.default_rng(1)
        left = render_road(-0.5, 0.0, rng, brightness=1.0)
        rng = np.random.default_rng(1)
        right = render_road(0.5, 0.0, rng, brightness=1.0)
        # Compare the horizon-adjacent rows: centre of mass must shift.
        row = 6
        cols = np.arange(32)
        com_left = (left[0, row] * cols).sum() / left[0, row].sum()
        com_right = (right[0, row] * cols).sum() / right[0, row].sum()
        assert com_right > com_left


class TestPdf:
    def test_schema(self):
        assert len(PDF_FEATURES) == 135
        families = {family for _, family in PDF_FEATURES}
        assert families == {"count", "len", "bool", "ratio"}

    def test_mutable_mask_matches_schema(self):
        mask = mutable_feature_mask()
        assert mask.shape == (135,)
        for flag, (_, family) in zip(mask, PDF_FEATURES):
            assert flag == (family in ("count", "len"))

    def test_counts_are_integers(self, pdf_smoke):
        mask = pdf_smoke.metadata["mutable_mask"]
        counts = pdf_smoke.x_train[:, mask]
        np.testing.assert_array_equal(counts, np.round(counts))
        assert counts.min() >= 0

    def test_classes_differ_on_informative_features(self, pdf_smoke):
        names = pdf_smoke.feature_names
        js = names.index("count_js")
        y = np.asarray(pdf_smoke.y_train)
        malicious_js = pdf_smoke.x_train[y == 1, js].mean()
        benign_js = pdf_smoke.x_train[y == 0, js].mean()
        assert malicious_js > benign_js * 2


class TestDrebin:
    def test_binary_features(self, drebin_smoke):
        values = np.unique(drebin_smoke.x_train)
        assert set(values).issubset({0.0, 1.0})

    def test_manifest_mask_structure(self, drebin_smoke):
        mask = drebin_smoke.metadata["manifest_mask"]
        names = drebin_smoke.feature_names
        assert mask.shape == (len(names),)
        for name, is_manifest in zip(names, mask):
            category = name.split("::")[0]
            expected = category in ("feature", "permission", "activity",
                                    "service_receiver", "provider", "intent")
            assert is_manifest == expected, name

    def test_vocabulary_deterministic(self):
        names_a, mask_a = build_vocabulary(np.random.default_rng(11))
        names_b, mask_b = build_vocabulary(np.random.default_rng(11))
        assert names_a == names_b
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_suspicious_features_skew_malicious(self, drebin_smoke):
        names = drebin_smoke.feature_names
        idx = names.index("permission::SEND_SMS")
        y = np.asarray(drebin_smoke.y_train)
        assert (drebin_smoke.x_train[y == 1, idx].mean()
                > drebin_smoke.x_train[y == 0, idx].mean())


class TestLoading:
    def test_dataset_names(self):
        assert dataset_names() == ["mnist", "imagenet", "driving", "pdf",
                                   "drebin"]

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("cifar")

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = load_dataset("pdf", scale="smoke", seed=3)
        b = load_dataset("pdf", scale="smoke", seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        assert any(p.name.startswith("dataset-pdf")
                   for p in tmp_path.iterdir())

    def test_generation_deterministic(self):
        a = generate_pdf(scale="smoke", seed=5)
        b = generate_pdf(scale="smoke", seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)
