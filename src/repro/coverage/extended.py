"""Finer-grained coverage criteria (follow-on work to the paper).

DeepXplore's neuron coverage founded a family of DNN test-adequacy
metrics; the canonical refinements (DeepGauge, Ma et al. 2018) split
each neuron's observed activation range into sections and treat the
extremes as corner-case regions.  They are implemented here as
extensions so the repo can compare them against plain neuron coverage
(``benchmarks/test_ablation_coverage_metrics.py``); none of the paper's
experiments depend on them.

All three criteria are defined against a :class:`NeuronProfile` — the
per-neuron activation range observed on the training set:

* **k-multisection coverage** — each neuron's [low, high] is divided
  into k equal sections; a section is covered when some test input lands
  the neuron's output in it.
* **boundary coverage** — fraction of neuron *corner regions* (below
  low, above high) that some test input reaches.
* **top-k neuron coverage** — fraction of neurons that were among the
  k most active of their layer for at least one test input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError
from repro.coverage.neuron import raw_activations as _raw_activations

__all__ = ["NeuronProfile", "KMultisectionCoverage", "BoundaryCoverage",
           "TopKNeuronCoverage"]


class NeuronProfile:
    """Per-neuron activation [low, high] observed on profiling data."""

    def __init__(self, network, low, high):
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if low.shape != (network.total_neurons,) or low.shape != high.shape:
            raise CoverageError(
                "profile bounds must be per-neuron vectors")
        if np.any(low > high):
            raise CoverageError("profile low bound exceeds high bound")
        self.network = network
        self.low = low
        self.high = high

    @classmethod
    def from_data(cls, network, x, batch_size=256):
        """Profile activation ranges from (training) inputs ``x``."""
        acts = _raw_activations(network, x, batch_size=batch_size)
        return cls(network, acts.min(axis=0), acts.max(axis=0))

    def span(self):
        """Per-neuron range width (zero for constant neurons)."""
        return self.high - self.low

    def state_dict(self):
        """Picklable snapshot of the profiled bounds."""
        return {"network": self.network.name, "low": self.low.copy(),
                "high": self.high.copy()}

    def merge(self, other):
        """Widen bounds to cover another profile of the same network.

        Min/max combine is order-independent, so per-shard profiles of
        disjoint data slices merge into the full-data profile.
        """
        state = other.state_dict() if isinstance(other, NeuronProfile) \
            else other
        if state["network"] != self.network.name:
            raise CoverageError(
                f"cannot merge profile of {state['network']!r} into one "
                f"over {self.network.name!r}")
        low = np.asarray(state["low"], dtype=np.float64)
        high = np.asarray(state["high"], dtype=np.float64)
        if low.shape != self.low.shape or high.shape != self.high.shape:
            # Same zoo name at a different scale has a different neuron
            # count; merging those would be silently wrong.
            raise CoverageError(
                f"cannot merge profile with {low.shape[0]} neurons into "
                f"one with {self.low.shape[0]}")
        self.low = np.minimum(self.low, low)
        self.high = np.maximum(self.high, high)
        return self


def _check_same_criterion(ours, theirs, what):
    """Shared merge guard for the extended criteria."""
    for key, mine in ours.items():
        if isinstance(mine, np.ndarray):
            ok = np.array_equal(mine, theirs.get(key))
        else:
            ok = mine == theirs.get(key)
        if not ok:
            raise CoverageError(
                f"cannot merge {what}: {key} differs "
                f"({mine!r} != {theirs.get(key)!r})")


class KMultisectionCoverage:
    """k-multisection neuron coverage over a profile."""

    def __init__(self, profile, k=10):
        if k < 1:
            raise CoverageError(f"k must be >= 1, got {k}")
        self.profile = profile
        self.k = int(k)
        self.covered = np.zeros((profile.network.total_neurons, self.k),
                                dtype=bool)

    def update(self, x):
        """Fold test inputs into section coverage; returns #new sections."""
        acts = _raw_activations(self.profile.network, x)
        span = self.profile.span()
        safe_span = np.where(span > 0, span, 1.0)
        # Section index per (input, neuron); outside-range values are
        # boundary territory, not multisection coverage.
        frac = (acts - self.profile.low[None, :]) / safe_span[None, :]
        in_range = (frac >= 0.0) & (frac <= 1.0) & (span > 0)[None, :]
        sections = np.clip((frac * self.k).astype(int), 0, self.k - 1)
        before = int(self.covered.sum())
        rows = np.broadcast_to(np.arange(acts.shape[1])[None, :],
                               acts.shape)
        self.covered[rows[in_range], sections[in_range]] = True
        return int(self.covered.sum()) - before

    def coverage(self):
        """Covered sections / (k * neurons-with-nonzero-span)."""
        span = self.profile.span()
        usable = span > 0
        if not usable.any():
            raise CoverageError("profile has no neurons with range")
        return float(self.covered[usable].sum() / (self.k * usable.sum()))

    def state_dict(self):
        """Picklable snapshot: criterion parameters + section mask."""
        return {"network": self.profile.network.name, "k": self.k,
                "low": self.profile.low.copy(),
                "high": self.profile.high.copy(),
                "covered": self.covered.copy()}

    def load_state_dict(self, state):
        self._check_mergeable(state)
        self.covered[...] = np.asarray(state["covered"], dtype=bool)

    def merge(self, other):
        """OR-combine section coverage measured against the same profile."""
        state = other.state_dict() if isinstance(
            other, KMultisectionCoverage) else other
        self._check_mergeable(state)
        self.covered |= np.asarray(state["covered"], dtype=bool)
        return self

    def _check_mergeable(self, state):
        _check_same_criterion(
            {"network": self.profile.network.name, "k": self.k,
             "low": self.profile.low, "high": self.profile.high},
            state, "k-multisection coverage")


class BoundaryCoverage:
    """Corner-case coverage: activations beyond the profiled range."""

    def __init__(self, profile):
        self.profile = profile
        n = profile.network.total_neurons
        self.below = np.zeros(n, dtype=bool)
        self.above = np.zeros(n, dtype=bool)

    def update(self, x):
        acts = _raw_activations(self.profile.network, x)
        before = int(self.below.sum() + self.above.sum())
        self.below |= (acts < self.profile.low[None, :]).any(axis=0)
        self.above |= (acts > self.profile.high[None, :]).any(axis=0)
        return int(self.below.sum() + self.above.sum()) - before

    def coverage(self):
        """Covered corner regions / (2 * neurons)."""
        n = self.profile.network.total_neurons
        return float((self.below.sum() + self.above.sum()) / (2 * n))

    def state_dict(self):
        """Picklable snapshot: profile bounds + corner masks."""
        return {"network": self.profile.network.name,
                "low": self.profile.low.copy(),
                "high": self.profile.high.copy(),
                "below": self.below.copy(), "above": self.above.copy()}

    def load_state_dict(self, state):
        self._check_mergeable(state)
        self.below[...] = np.asarray(state["below"], dtype=bool)
        self.above[...] = np.asarray(state["above"], dtype=bool)

    def merge(self, other):
        """OR-combine corner coverage measured against the same profile."""
        state = other.state_dict() if isinstance(
            other, BoundaryCoverage) else other
        self._check_mergeable(state)
        self.below |= np.asarray(state["below"], dtype=bool)
        self.above |= np.asarray(state["above"], dtype=bool)
        return self

    def _check_mergeable(self, state):
        _check_same_criterion(
            {"network": self.profile.network.name,
             "low": self.profile.low, "high": self.profile.high},
            state, "boundary coverage")


class TopKNeuronCoverage:
    """Fraction of neurons ever among their layer's top-k most active."""

    def __init__(self, network, k=2):
        if k < 1:
            raise CoverageError(f"k must be >= 1, got {k}")
        self.network = network
        self.k = int(k)
        self.hot = np.zeros(network.total_neurons, dtype=bool)

    def update(self, x):
        acts = _raw_activations(self.network, x)
        before = int(self.hot.sum())
        for entry in self.network.neuron_layers:
            block = acts[:, entry.offset:entry.offset + entry.count]
            k = min(self.k, entry.count)
            top = np.argsort(block, axis=1)[:, -k:]
            flat = np.unique(top) + entry.offset
            self.hot[flat] = True
        return int(self.hot.sum()) - before

    def coverage(self):
        return float(self.hot.mean())

    def state_dict(self):
        """Picklable snapshot: criterion parameters + hot mask."""
        return {"network": self.network.name, "k": self.k,
                "hot": self.hot.copy()}

    def load_state_dict(self, state):
        self._check_mergeable(state)
        self.hot[...] = np.asarray(state["hot"], dtype=bool)

    def merge(self, other):
        """OR-combine top-k coverage of the same (network, k) criterion."""
        state = other.state_dict() if isinstance(
            other, TopKNeuronCoverage) else other
        self._check_mergeable(state)
        self.hot |= np.asarray(state["hot"], dtype=bool)
        return self

    def _check_mergeable(self, state):
        _check_same_criterion({"network": self.network.name, "k": self.k},
                              state, "top-k neuron coverage")
