#!/usr/bin/env python
"""Diff two BENCH_engine.json snapshots and fail on throughput loss.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--max-regression 0.30]

Records are matched by ``name``; every pair that carries a throughput
value (``seeds_per_sec``, or ``jobs_per_sec`` for the farm daemon
benchmarks) is compared, and the exit status is non-zero
when any current record regresses by more than ``--max-regression``
(a fraction: 0.30 means "30% slower than the baseline fails").

``ascent-rule[*]`` records (the per-rule iterations-to-difference
leaderboard) get their own quality comparison: a rule whose
``differences`` count drops, or whose ``mean_iterations`` rises, by
more than ``--max-regression`` fails the check too — so a change that
quietly blunts one rule's search power is caught even if throughput
held steady.

Records present on only one side are reported but never fail the
check, so adding or retiring benchmark cells does not break CI.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(path):
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    records = payload.get("benchmarks", [])
    return {r["name"]: r for r in records if "name" in r}


#: Throughput metrics compared when both sides carry them.  The farm
#: benchmarks report ``jobs_per_sec`` (daemon dispatch throughput) next
#: to the engine/fuzz suites' ``seeds_per_sec``; the federation smoke
#: reports ``speedup`` (hosts=2 throughput over hosts=1 — the "does
#: federation pay for itself" ratio), gated like any other throughput.
THROUGHPUT_METRICS = ("seeds_per_sec", "jobs_per_sec", "speedup")

_METRIC_UNITS = {"jobs_per_sec": "jobs/s", "speedup": "x",
                 "seeds_per_sec": "seeds/s"}


def compare(baseline, current, max_regression):
    """Yield (name, metric, base, cur, ratio, failed) rows for common
    records, one row per throughput metric both sides report."""
    rows = []
    for name in sorted(set(baseline) & set(current)):
        for metric in THROUGHPUT_METRICS:
            base = baseline[name].get(metric)
            cur = current[name].get(metric)
            if not base or cur is None:
                continue
            ratio = cur / base
            rows.append((name, metric, base, cur, ratio,
                         ratio < 1.0 - max_regression))
    return rows


def compare_rules(baseline, current, max_regression):
    """Quality rows for ``ascent-rule[*]`` records.

    Yields ``(label, metric, base, cur, failed)``: ``differences``
    regresses downward, ``mean_iterations`` regresses upward.
    """
    rows = []
    for name in sorted(set(baseline) & set(current)):
        if not name.startswith("ascent-rule["):
            continue
        base, cur = baseline[name], current[name]
        b_diff, c_diff = base.get("differences"), cur.get("differences")
        if b_diff and c_diff is not None:
            rows.append((name, "differences", b_diff, c_diff,
                         c_diff < b_diff * (1.0 - max_regression)))
        b_it, c_it = base.get("mean_iterations"), cur.get("mean_iterations")
        if b_it and c_it is not None:
            rows.append((name, "mean_iterations", b_it, c_it,
                         c_it > b_it * (1.0 + max_regression)))
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_engine.json snapshots")
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("current", help="freshly measured snapshot")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        metavar="FRACTION",
                        help="allowed seeds_per_sec loss (default 0.30)")
    args = parser.parse_args(argv)

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    rows = compare(baseline, current, args.max_regression)
    rule_rows = compare_rules(baseline, current, args.max_regression)
    if not rows and not rule_rows:
        print("bench_compare: no comparable records", file=sys.stderr)
        return 2

    width = max(len(name) for name, *_ in rows + rule_rows)
    failed = []
    for name, metric, base, cur, ratio, bad in rows:
        verdict = "FAIL" if bad else "ok"
        unit = _METRIC_UNITS.get(metric, "seeds/s")
        print(f"{name:<{width}}  {base:>8.2f} -> {cur:>8.2f} {unit}  "
              f"(x{ratio:.2f})  {verdict}")
        if bad:
            failed.append(f"{name}.{metric}")
    for name, metric, base, cur, bad in rule_rows:
        verdict = "FAIL" if bad else "ok"
        print(f"{name:<{width}}  {base:>8.2f} -> {cur:>8.2f} "
              f"{metric}  {verdict}")
        if bad:
            failed.append(f"{name}.{metric}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  only in baseline (skipped)")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  new record (skipped)")

    if failed:
        print(f"bench_compare: {len(failed)} record(s) regressed more "
              f"than {args.max_regression:.0%}: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"bench_compare: {len(rows) + len(rule_rows)} record(s) "
          f"within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
