"""Ablation: sequential Algorithm 1 vs the batched generator.

Measures wall-clock and yield for the same seed set; batching amortizes
per-iteration model passes across all active seeds.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import (BatchDeepXplore, DeepXplore, LightingConstraint,
                        PAPER_HYPERPARAMS)
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.utils.tables import render_table


@pytest.mark.parametrize("mode", ["sequential", "batched"])
def test_batch_throughput(benchmark, mode):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(40, np.random.default_rng(71))
    hp = PAPER_HYPERPARAMS["mnist"]
    engine_cls = DeepXplore if mode == "sequential" else BatchDeepXplore

    def run():
        engine = engine_cls(models, hp, LightingConstraint(), rng=73)
        start = time.perf_counter()
        result = engine.run(seeds)
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["mode", "seeds", "# diffs", "seconds", "diffs/s"],
        [[mode, result.seeds_processed, result.difference_count,
          round(elapsed, 2),
          round(result.difference_count / max(elapsed, 1e-9), 1)]],
        title="[ablation] sequential vs batched generation"))
    assert result.difference_count > 0
