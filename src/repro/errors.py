"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An array had an unexpected shape or dimensionality."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NotFittedError(ReproError):
    """A model was used before it was trained or loaded."""


class ConstraintError(ReproError):
    """A domain constraint was misconfigured or violated."""


class CoverageError(ReproError):
    """Neuron-coverage bookkeeping was used inconsistently."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class FarmError(ReproError):
    """A farm daemon / job-queue operation failed (see :mod:`repro.farm`)."""
