"""Benchmark: Table 5 — diversity with vs without the coverage objective."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_coverage_diversity


def test_table5_diversity(benchmark):
    result = run_once(benchmark, run_coverage_diversity, scale=SCALE,
                      seed=SEED, repetitions=2)
    assert len(result.rows) == 2
