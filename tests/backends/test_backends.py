"""The ComputeBackend seam: registry, numpy reference adapter, engine
integration, and the import-gated ONNX adapter."""

import numpy as np
import pytest

from repro.backends import (ComputeBackend, NumpyBackend, OnnxBackend,
                            backend_names, have_onnxruntime, make_backend,
                            unwrap_network)
from repro.core import (AscentEngine, Hyperparams, Unconstrained,
                        make_engine, resolve_models)
from repro.errors import ConfigError
from repro.nn import Conv2D, Dense, Flatten, Network, dtypes
from repro.nn.config import network_to_payload


def _net(name="backend_net", seed=0):
    rng = np.random.default_rng(seed)
    return Network([
        Conv2D(1, 2, 3, padding=1, rng=rng, name="c"),
        Flatten(name="f"),
        Dense(2 * 4 * 4, 4, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 4, 4), name=name)


def test_registry_lists_both_backends():
    assert backend_names() == ["numpy", "onnx"]
    with pytest.raises(ConfigError, match="unknown backend"):
        make_backend("tensorrt", _net())


def test_numpy_backend_is_pure_delegation():
    net = _net()
    backend = make_backend("numpy", net)
    assert isinstance(backend, NumpyBackend)
    assert isinstance(backend, ComputeBackend)
    assert backend.network is net
    assert backend.name == net.name
    assert backend.dtype == net.dtype
    assert backend.output_shape == net.output_shape
    assert backend.num_classes == 4
    assert backend.bounds == (0.0, 1.0)
    assert backend.preprocessing == (0.0, 1.0)

    x = np.random.default_rng(1).random((2, 1, 4, 4))
    np.testing.assert_array_equal(backend.predict(x), net.predict(x))
    tape = backend.forward(x)
    assert tape.network is net
    assert tape.gradient_of_class(0).shape == x.shape
    assert unwrap_network(backend) is net
    assert unwrap_network(net) is net


def test_numpy_backend_accepts_payload_and_dtype():
    with dtypes.default_dtype(np.float64):
        net = _net()
    payload = network_to_payload(net)
    backend = NumpyBackend(payload, dtype=np.float32)
    assert backend.dtype == np.dtype(np.float32)
    # Wrapping a live network at another dtype derives a copy, never
    # mutates the original.
    converted = NumpyBackend(net, dtype=np.float32)
    assert net.dtype == np.dtype(np.float64)
    assert converted.network is not net
    assert converted.dtype == np.dtype(np.float32)


def test_backend_already_wrapped_passes_through():
    backend = NumpyBackend(_net())
    assert make_backend("numpy", backend) is backend
    with pytest.raises(ConfigError, match="re-adapt"):
        make_backend("onnx", backend)


def test_make_engine_with_backend_and_dtype_end_to_end():
    with dtypes.default_dtype(np.float64):
        models = [_net("m0", 0), _net("m1", 1)]
    hp = Hyperparams(lambda1=1.0, lambda2=0.1, step=0.05, max_iterations=5)
    engine = make_engine("batch", models, hp, Unconstrained(),
                         "classification", 0, dtype="float32",
                         backend="numpy")
    assert isinstance(engine, AscentEngine)
    assert engine.dtype == np.dtype(np.float32)
    result = engine.run(np.random.default_rng(2).random((4, 1, 4, 4)))
    assert result.seeds_processed == 4
    for test in result.tests:
        assert test.x.dtype == np.dtype(np.float32)


def test_make_engine_refuses_stale_trackers_after_conversion():
    from repro.coverage import NeuronCoverageTracker
    with dtypes.default_dtype(np.float64):
        models = [_net("m0", 0), _net("m1", 1)]
    trackers = [NeuronCoverageTracker(m) for m in models]
    with pytest.raises(ConfigError, match="trackers"):
        make_engine("batch", models, Hyperparams(), Unconstrained(),
                    "classification", 0, dtype="float32", trackers=trackers)


def test_resolve_models_converts_without_mutating():
    with dtypes.default_dtype(np.float64):
        models = [_net("m0", 0), _net("m1", 1)]
    resolved = resolve_models(models, dtype=np.float32)
    assert all(m.dtype == np.dtype(np.float64) for m in models)
    assert all(r.dtype == np.dtype(np.float32) for r in resolved)
    # No dtype requested: identity, no copies.
    assert resolve_models(models) == models


def test_onnx_backend_without_runtime_raises_config_error():
    if have_onnxruntime():
        pytest.skip("onnxruntime installed; the gating branch is moot")
    with pytest.raises(ConfigError, match="onnxruntime"):
        OnnxBackend("model.onnx")


def test_onnx_backend_predicts_when_runtime_available(tmp_path):
    pytest.importorskip("onnxruntime")
    onnx = pytest.importorskip("onnx")
    from onnx import TensorProto, helper

    # y = softmax(x @ W) for a 4->3 linear head.
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(4, 3)).astype(np.float32)
    graph = helper.make_graph(
        [helper.make_node("MatMul", ["x", "w"], ["z"]),
         helper.make_node("Softmax", ["z"], ["y"], axis=1)],
        "head",
        [helper.make_tensor_value_info("x", TensorProto.FLOAT, ["N", 4])],
        [helper.make_tensor_value_info("y", TensorProto.FLOAT, ["N", 3])],
        [helper.make_tensor("w", TensorProto.FLOAT, weight.shape,
                            weight.flatten())])
    path = tmp_path / "head.onnx"
    onnx.save(helper.make_model(graph), str(path))

    backend = OnnxBackend(path, name="head")
    assert backend.kind == "onnx"
    assert backend.output_shape == (3,)
    assert backend.num_classes == 3
    x = rng.random((5, 4)).astype(np.float32)
    preds = backend.predict(x)
    assert preds.shape == (5, 3)
    np.testing.assert_allclose(preds.sum(axis=1), 1.0, rtol=1e-5)
    with pytest.raises(ConfigError, match="inference-only"):
        backend.forward(x)
    with pytest.raises(ConfigError, match="numpy backend"):
        unwrap_network(backend)
