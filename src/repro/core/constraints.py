"""Domain-specific constraints (paper §6.2).

Constraints keep generated tests physically realistic.  They hook into
Algorithm 1 at two points:

* :meth:`Constraint.apply` rewrites the gradient before the ascent step
  (line 13: ``grad = DOMAIN_CONSTRNTS(grad)``);
* :meth:`Constraint.project` repairs the updated input so it stays in the
  valid domain (pixels in [0, 1], integer counts, binary bits).

Image constraints implemented, as in the paper: **lighting** (single
global brightness direction), **single-rectangle occlusion** (a camera
blocked by one patch), and **multi-rectangle black occlusion** (dirt
specks that may only darken pixels).  Feature constraints: Drebin's
add-only manifest bits and the PDF count/length feature rules.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.errors import ConstraintError
from repro.utils.rng import as_rng

__all__ = [
    "Constraint", "Unconstrained", "LightingConstraint",
    "SingleRectOcclusion", "MultiRectOcclusion", "DrebinConstraint",
    "PdfFeatureConstraint", "constraint_for_dataset",
]


class Constraint:
    """Base class; stateless unless :meth:`setup` stores per-seed state."""

    name = "constraint"

    #: True for constraints whose :meth:`setup` draws per-seed randomness
    #: (e.g. patch positions).  Batched engines give each seed its own
    #: :meth:`clone` of such constraints so seeds don't share state.
    per_seed_state = False

    def setup(self, x0, rng):
        """Called once per seed before ascent starts (e.g. pick patches)."""

    def apply(self, grad, x):
        """Rewrite the raw input-gradient; must not modify ``grad``."""
        return grad

    def project(self, x_new, x_prev):
        """Repair the post-step input into the valid domain."""
        return x_new

    def clone(self):
        """Independent copy with the same configuration.

        Used as a per-seed template by batched engines and as a
        per-shard template by campaigns; the copy's per-seed state (if
        any) is re-drawn by the next :meth:`setup`.
        """
        return copy.deepcopy(self)


class Unconstrained(Constraint):
    """No gradient rewriting; pixels clipped to [0, 1]."""

    name = "none"

    def project(self, x_new, x_prev):
        return np.clip(x_new, 0.0, 1.0)


class LightingConstraint(Constraint):
    """Uniform brightness change: all pixels move by the same amount.

    The direction (lighten vs. darken) follows the sign of ``mean(G)``
    per sample, exactly as §6.2 describes.
    """

    name = "light"

    def apply(self, grad, x):
        batch = grad.shape[0]
        means = grad.reshape(batch, -1).mean(axis=1)
        shape = (batch,) + (1,) * (grad.ndim - 1)
        return np.broadcast_to(means.reshape(shape), grad.shape).copy()

    def project(self, x_new, x_prev):
        return np.clip(x_new, 0.0, 1.0)


class SingleRectOcclusion(Constraint):
    """Only an ``m x n`` rectangle of the image may change.

    DeepXplore is free to place the rectangle anywhere; this
    implementation draws the position uniformly per seed in
    :meth:`setup`, after which ascent modifies only that patch.
    """

    name = "occl"
    per_seed_state = True

    def __init__(self, height=6, width=6):
        if height < 1 or width < 1:
            raise ConstraintError("rectangle dimensions must be >= 1")
        self.height = int(height)
        self.width = int(width)
        self._pos = None

    def setup(self, x0, rng):
        rng = as_rng(rng)
        img_h, img_w = x0.shape[-2], x0.shape[-1]
        if self.height > img_h or self.width > img_w:
            raise ConstraintError(
                f"rectangle {(self.height, self.width)} larger than image "
                f"{(img_h, img_w)}")
        top = int(rng.integers(0, img_h - self.height + 1))
        left = int(rng.integers(0, img_w - self.width + 1))
        self._pos = (top, left)

    def apply(self, grad, x):
        if self._pos is None:
            raise ConstraintError("setup() must run before apply()")
        top, left = self._pos
        masked = np.zeros_like(grad)
        masked[..., top:top + self.height, left:left + self.width] = \
            grad[..., top:top + self.height, left:left + self.width]
        return masked

    def project(self, x_new, x_prev):
        return np.clip(x_new, 0.0, 1.0)


class MultiRectOcclusion(Constraint):
    """Several tiny ``m x m`` patches that may only darken (dirt on lens).

    Per §6.2: for each selected patch, if the mean patch gradient is
    positive (would brighten), it is zeroed — only pixel decreases are
    allowed — producing small black specks.
    """

    name = "blackout"
    per_seed_state = True

    def __init__(self, size=3, count=4):
        if size < 1 or count < 1:
            raise ConstraintError("patch size/count must be >= 1")
        self.size = int(size)
        self.count = int(count)
        self._positions = None

    def setup(self, x0, rng):
        rng = as_rng(rng)
        img_h, img_w = x0.shape[-2], x0.shape[-1]
        if self.size > min(img_h, img_w):
            raise ConstraintError(
                f"patch size {self.size} larger than image {(img_h, img_w)}")
        self._positions = [
            (int(rng.integers(0, img_h - self.size + 1)),
             int(rng.integers(0, img_w - self.size + 1)))
            for _ in range(self.count)]

    def apply(self, grad, x):
        if self._positions is None:
            raise ConstraintError("setup() must run before apply()")
        masked = np.zeros_like(grad)
        for top, left in self._positions:
            patch = grad[..., top:top + self.size, left:left + self.size]
            batch = patch.reshape(patch.shape[0], -1)
            keep = batch.mean(axis=1) <= 0.0  # only darkening allowed
            shaped = keep.reshape((-1,) + (1,) * (patch.ndim - 1))
            masked[..., top:top + self.size, left:left + self.size] = \
                np.where(shaped, patch, 0.0)
        return masked

    def project(self, x_new, x_prev):
        return np.clip(x_new, 0.0, 1.0)


class DrebinConstraint(Constraint):
    """Add-only manifest features (paper §6.2, Drebin).

    Only features extracted from the Android manifest may change, and only
    from 0 to 1 (adding a permission never breaks functionality; removing
    one can).  Each ascent iteration sets the ``per_step`` highest-gradient
    eligible bits to 1, mirroring the original implementation's
    pick-the-max-gradient-feature rule.
    """

    name = "drebin"

    def __init__(self, manifest_mask, per_step=1):
        self.manifest_mask = np.asarray(manifest_mask, dtype=bool)
        if per_step < 1:
            raise ConstraintError("per_step must be >= 1")
        self.per_step = int(per_step)

    def apply(self, grad, x):
        eligible = self.manifest_mask[None, :] & (x < 0.5) & (grad > 0.0)
        return np.where(eligible, grad, 0.0)

    def project(self, x_new, x_prev):
        """Binarize: flip the strongest-moving eligible bits to 1."""
        out = x_prev.copy()
        delta = x_new - x_prev
        for row in range(out.shape[0]):
            moved = np.flatnonzero(delta[row] > 0.0)
            if moved.size == 0:
                continue
            ranked = moved[np.argsort(delta[row][moved])[::-1]]
            out[row, ranked[:self.per_step]] = 1.0
        return out


class PdfFeatureConstraint(Constraint):
    """PDF count/length feature rules (paper §6.2, Contagio/VirusTotal).

    Following the Šrndic & Laskov restrictions: only count and length
    features are adjustable (boolean flags and derived ratios are fixed
    document properties), updates are rounded to whole counts, and counts
    stay within ``[0, max_value]``.
    """

    name = "pdf"

    def __init__(self, mutable_mask, max_value=5000.0):
        self.mutable_mask = np.asarray(mutable_mask, dtype=bool)
        self.max_value = float(max_value)

    def apply(self, grad, x):
        return np.where(self.mutable_mask[None, :], grad, 0.0)

    def project(self, x_new, x_prev):
        out = x_prev.copy()
        mutable = self.mutable_mask[None, :]
        # Round the *update* so mutated counts remain integers.
        delta = np.where(mutable, np.round(x_new - x_prev), 0.0)
        out = np.clip(out + delta, 0.0, self.max_value)
        return out


def constraint_for_dataset(dataset, kind="default"):
    """Default constraint for one of the five datasets.

    ``kind`` selects among the image constraints: ``"light"``, ``"occl"``,
    ``"blackout"``; feature datasets ignore it and use their §6.2 rules.
    ``"default"`` is lighting for images (the paper's choice for all
    non-gallery vision experiments).
    """
    if dataset.metadata.get("domain") == "features":
        if "manifest_mask" in dataset.metadata:
            return DrebinConstraint(dataset.metadata["manifest_mask"])
        if "mutable_mask" in dataset.metadata:
            return PdfFeatureConstraint(dataset.metadata["mutable_mask"])
        raise ConstraintError(
            f"feature dataset {dataset.name!r} has no constraint metadata")
    kinds = {
        "default": LightingConstraint,
        "light": LightingConstraint,
        "occl": SingleRectOcclusion,
        "blackout": MultiRectOcclusion,
        "none": Unconstrained,
    }
    if kind not in kinds:
        raise ConstraintError(
            f"unknown image constraint {kind!r}; known: {sorted(kinds)}")
    return kinds[kind]()
