"""Figure 8: gallery of difference-inducing inputs per image constraint.

Generates difference-inducing inputs for the three vision datasets under
each of the three image constraints (lighting, single-rectangle occlusion,
multi-rectangle blackout) and optionally writes seed/generated image pairs
as PGM/PPM files — the reproduction of the paper's image grid.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import get_trio
from repro.utils.imageops import save_pgm, save_ppm
from repro.utils.rng import as_rng

__all__ = ["run_gallery", "CONSTRAINT_KINDS"]

CONSTRAINT_KINDS = ("light", "occl", "blackout")
_VISION_DATASETS = ("mnist", "imagenet", "driving")


def _describe_predictions(dataset, test):
    preds = np.asarray(test.predictions)
    if preds.dtype.kind == "f":
        return " / ".join(f"{p:+.2f} rad" for p in preds)
    names = dataset.class_names or [str(i) for i in range(100)]
    return " / ".join(names[int(p)] for p in preds)


def _save_pair(output_dir, tag, seed_img, gen_img):
    os.makedirs(output_dir, exist_ok=True)
    save_fn = save_ppm if seed_img.shape[0] == 3 else save_pgm
    save_fn(os.path.join(output_dir, f"{tag}-seed.{'ppm' if seed_img.shape[0] == 3 else 'pgm'}"),
            seed_img)
    save_fn(os.path.join(output_dir, f"{tag}-generated.{'ppm' if seed_img.shape[0] == 3 else 'pgm'}"),
            gen_img)


def run_gallery(scale="small", seed=0, per_cell=2, output_dir=None,
                use_cache=True, datasets=None, ascent="vanilla", beta=None):
    """Generate the Figure 8 grid; returns a table of found examples.

    ``ascent``/``beta`` select the update rule driving each per-seed
    ascent (see :func:`make_engine`).
    """
    datasets = datasets or list(_VISION_DATASETS)
    result = ExperimentResult(
        experiment_id="figure8",
        title="Difference-inducing inputs per constraint and dataset",
        headers=["Dataset", "Constraint", "seed idx", "iterations",
                 "predictions (per model)"],
        paper_reference=("images generated under lighting, single-rect and "
                         "multi-rect constraints that flip at least one "
                         "model's output"),
    )
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        models = get_trio(dataset_name, scale=scale, seed=seed,
                          dataset=dataset, use_cache=use_cache)
        hp = PAPER_HYPERPARAMS[dataset_name]
        for kind in CONSTRAINT_KINDS:
            rng = as_rng(seed + zlib.crc32(kind.encode()) % 1000)
            n_seeds = seeds_for_scale(scale, maximum=dataset.x_test.shape[0])
            seeds_x, _ = dataset.sample_seeds(n_seeds, rng)
            engine = make_engine(
                "sequential", models, hp,
                constraint_for_dataset(dataset, kind=kind), dataset.task,
                rng, ascent=ascent, beta=beta)
            found = 0
            for i in range(seeds_x.shape[0]):
                if found >= per_cell:
                    break
                test = engine.generate_from_seed(seeds_x[i], seed_index=i)
                if test is None or test.iterations == 0:
                    continue
                found += 1
                result.rows.append([
                    dataset_name, kind, i, test.iterations,
                    _describe_predictions(dataset, test)])
                if output_dir:
                    _save_pair(output_dir,
                               f"{dataset_name}-{kind}-{found}",
                               seeds_x[i], test.x)
            if found == 0:
                result.rows.append([dataset_name, kind, "-", "-",
                                    "no example found"])
    if output_dir:
        result.notes.append(f"seed/generated image pairs written to "
                            f"{output_dir}")
    return result
