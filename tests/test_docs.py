"""Docs stay truthful: links resolve, and the promised files exist."""

import os

from repro.utils.docs import (broken_intra_repo_links, iter_markdown_links,
                              markdown_files)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_docs_files_exist():
    for required in ("README.md", "docs/ARCHITECTURE.md",
                     "docs/EXPERIMENTS.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, required)), required


def test_markdown_files_found():
    names = {os.path.basename(p) for p in markdown_files(REPO_ROOT)}
    assert {"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"} <= names


def test_iter_markdown_links_parses_inline_links():
    text = ("See [the docs](docs/ARCHITECTURE.md) and "
            "[section](README.md#running).\n"
            "```\n[not a link](ignored.md) inside a fence\n```\n"
            "External [site](https://example.com) too.")
    assert list(iter_markdown_links(text)) == [
        "docs/ARCHITECTURE.md", "README.md#running", "https://example.com"]


def test_no_broken_intra_repo_links():
    broken = broken_intra_repo_links(REPO_ROOT)
    assert broken == [], f"broken markdown links: {broken}"
