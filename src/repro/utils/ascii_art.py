"""Terminal rendering of images — the examples' "screenshot" facility.

PGM/PPM files are written for real viewing; ASCII rendering lets the
examples and error reports show what a generated input looks like in a
plain terminal log.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["ascii_image", "side_by_side"]

_RAMP = " .:-=+*#%@"


def ascii_image(image, width=None):
    """Render a ``(1|3, H, W)`` or ``(H, W)`` image as ASCII art."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr.mean(axis=0)  # luminance approximation
    if arr.ndim != 2:
        raise ShapeError(f"expected an image, got shape {arr.shape}")
    if width is not None and width < arr.shape[1]:
        step = int(np.ceil(arr.shape[1] / width))
        arr = arr[::step, ::step]
    arr = np.clip(arr, 0.0, 1.0)
    indices = np.minimum((arr * len(_RAMP)).astype(int), len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[i] for i in row) for row in indices)


def side_by_side(image_a, image_b, gap="   ", labels=None):
    """Render two equally sized images next to each other."""
    art_a = ascii_image(image_a).splitlines()
    art_b = ascii_image(image_b).splitlines()
    if len(art_a) != len(art_b):
        raise ShapeError("images must have the same height")
    lines = []
    if labels:
        left, right = labels
        lines.append(left.ljust(len(art_a[0])) + gap + right)
    lines.extend(a + gap + b for a, b in zip(art_a, art_b))
    return "\n".join(lines)
