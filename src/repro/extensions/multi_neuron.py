"""Joint multi-neuron coverage objective (paper §4.2 extension).

Algorithm 1 activates one inactivated neuron per model per iteration; the
paper notes "we can also potentially jointly maximize multiple neurons
simultaneously, but we choose to activate one neuron at a time ... for
clarity".  This extension implements the multi-neuron variant: obj2 sums
``k`` uncovered neurons per model, which trades per-neuron gradient focus
for broader coverage pressure.  The ablation benchmark
(``benchmarks/test_ablation_multi_neuron.py``) measures the trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["MultiNeuronCoverageObjective"]


class MultiNeuronCoverageObjective:
    """obj2 over ``neurons_per_model`` uncovered neurons per model.

    Drop-in replacement for :class:`repro.core.CoverageObjective` (same
    ``pick`` / ``value`` / ``gradient`` protocol), so it can be handed to
    :class:`repro.core.JointObjective` or used through
    :func:`make_multi_neuron_engine`.
    """

    def __init__(self, trackers, neurons_per_model=3, rng=None):
        if neurons_per_model < 1:
            raise ConfigError("neurons_per_model must be >= 1")
        self.trackers = list(trackers)
        self.neurons_per_model = int(neurons_per_model)
        self.rng = as_rng(rng)
        self._targets = [[] for _ in self.trackers]

    def pick(self):
        """Choose up to k uncovered neurons per model."""
        self._targets = []
        for tracker in self.trackers:
            uncovered = tracker.uncovered_ids()
            if uncovered.size == 0:
                self._targets.append([])
                continue
            count = min(self.neurons_per_model, uncovered.size)
            chosen = self.rng.choice(uncovered, size=count, replace=False)
            self._targets.append([int(c) for c in chosen])
        return [list(t) for t in self._targets]

    def value_from_tapes(self, tapes):
        total = 0.0
        for tape, neurons in zip(tapes, self._targets):
            for neuron in neurons:
                total += float(tape.neuron_value(neuron).sum())
        return total

    def gradient_from_tapes(self, tapes):
        grad = np.zeros_like(tapes[0].x)
        for tape, neurons in zip(tapes, self._targets):
            for neuron in neurons:
                grad += tape.gradient_of_neuron(neuron)
        return grad

    def value(self, x):
        total = 0.0
        for tracker, neurons in zip(self.trackers, self._targets):
            for neuron in neurons:
                total += float(tracker.network.neuron_value(x, neuron).sum())
        return total

    def gradient(self, x):
        grad = np.zeros_like(x)
        for tracker, neurons in zip(self.trackers, self._targets):
            for neuron in neurons:
                grad += tracker.network.input_gradient_of_neuron(x, neuron)
        return grad
