"""Historical home of the sequential Algorithm 1 driver.

The per-seed ascent loop that used to live here was unified into
:mod:`repro.core.engine`: :class:`~repro.core.engine.DeepXplore` is now
a batch-of-1 facade over the single vectorized
:class:`~repro.core.engine.AscentEngine`, bit-identical to the old
sequential implementation under fixed RNG (pinned in
``tests/core/test_engine.py``).  This module re-exports the public
names so existing imports keep working; it contains no ascent loop of
its own.
"""

from __future__ import annotations

from repro.core.engine import (DeepXplore, GeneratedTest, GenerationResult,
                               normalize_gradient)

__all__ = ["DeepXplore", "GeneratedTest", "GenerationResult",
           "normalize_gradient"]
