"""The fuzz farm: an always-on, multi-tenant campaign daemon.

Layered bottom-up (each layer unit-tested on its own in
``tests/farm/``):

:mod:`repro.farm.jobs`
    Job specs — JSON-safe descriptions of generate/fuzz work.
:mod:`repro.farm.queue`
    Bounded journaled queue: backpressure, retry-with-backoff,
    per-store FIFO, crash recovery.
:mod:`repro.farm.locks`
    Pid-liveness store locks (stale locks from ``kill -9`` self-heal).
:mod:`repro.farm.daemon`
    The worker-threaded daemon executing jobs over per-tenant corpus
    stores under one farm root.
:mod:`repro.farm.server` / :mod:`repro.farm.client`
    JSON-lines control socket (``repro serve | submit | status``),
    plus the federation verbs :mod:`repro.dist` speaks
    (:class:`PeerClient`, gossip, corpus sync, remote shards).

See docs/FARM.md for the operational story and docs/DISTRIBUTED.md
for the multi-host fabric built on top.
"""

from repro.farm.client import FarmClient, PeerClient
from repro.farm.daemon import FarmDaemon
from repro.farm.jobs import JOB_KINDS, Job, normalize_spec
from repro.farm.locks import StoreLock, StoreLockedError, lock_holder
from repro.farm.queue import (JobQueue, QueueSaturatedError,
                              UnknownJobError)
from repro.farm.server import FarmServer

__all__ = [
    "FarmClient",
    "FarmDaemon",
    "FarmServer",
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "PeerClient",
    "QueueSaturatedError",
    "StoreLock",
    "StoreLockedError",
    "UnknownJobError",
    "lock_holder",
    "normalize_spec",
]
