"""JobQueue policies under a fake clock: backpressure, backoff, FIFO,
journal crash recovery."""

import json

import pytest

from repro.errors import FarmError
from repro.farm import JobQueue, QueueSaturatedError, UnknownJobError


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_queue(tmp_path, clock, **kwargs):
    kwargs.setdefault("capacity", 4)
    kwargs.setdefault("backoff_base", 1.0)
    return JobQueue(str(tmp_path / "queue.json"), clock=clock, **kwargs)


def spec(store="s", **extra):
    base = {"store": store, "rounds": 2}
    base.update(extra)
    return base


def test_submit_assigns_sequential_ids(tmp_path, clock):
    queue = make_queue(tmp_path, clock)
    a = queue.submit(spec("a"))
    b = queue.submit(spec("b"))
    assert (a.job_id, b.job_id) == ("job-000001", "job-000002")
    assert a.status == "queued" and a.attempts == 0


def test_bad_specs_rejected(tmp_path, clock):
    queue = make_queue(tmp_path, clock)
    with pytest.raises(FarmError):
        queue.submit({})                          # no store
    with pytest.raises(FarmError):
        queue.submit(spec(store="../evil"))       # unsafe name
    with pytest.raises(FarmError):
        queue.submit(spec(kind="meditate"))       # unknown kind
    with pytest.raises(FarmError):
        queue.submit(spec(rounds=0))              # below 1
    with pytest.raises(FarmError):
        queue.submit(spec(frobnicate=1))          # unknown field


def test_saturation_counts_queued_plus_running(tmp_path, clock):
    """The backpressure contract: rejection is deterministic at
    capacity, independent of how fast workers drain."""
    queue = make_queue(tmp_path, clock, capacity=2)
    queue.submit(spec("a"))
    queue.submit(spec("b"))
    with pytest.raises(QueueSaturatedError) as excinfo:
        queue.submit(spec("c"))
    assert excinfo.value.retry_after > 0
    # A running job still occupies its slot...
    assert queue.claim() is not None
    with pytest.raises(QueueSaturatedError):
        queue.submit(spec("c"))
    # ...and only completion frees it.
    queue.mark_done("job-000001")
    assert queue.submit(spec("c")).job_id == "job-000003"


def test_claim_serializes_per_store_and_keeps_fifo(tmp_path, clock):
    queue = make_queue(tmp_path, clock)
    queue.submit(spec("a"))            # job-1
    queue.submit(spec("a"))            # job-2: same store, must wait
    queue.submit(spec("b"))            # job-3
    first = queue.claim()
    assert first.job_id == "job-000001"
    second = queue.claim()
    assert second.job_id == "job-000003"   # store a is busy; b runs
    assert queue.claim() is None
    queue.mark_done(first.job_id)
    assert queue.claim().job_id == "job-000002"   # a's turn, in order


def test_retry_backoff_doubles_and_gates_claims(tmp_path, clock):
    queue = make_queue(tmp_path, clock, max_attempts=3, backoff_base=2.0)
    queue.submit(spec("a"))
    job = queue.claim()
    queue.mark_failed(job.job_id, RuntimeError("boom"))
    assert job.status == "queued" and job.error == "boom"
    assert queue.claim() is None                  # gated: now + 2*2**0
    assert queue.next_wakeup() == clock() + 2.0
    clock.advance(2.0)
    job = queue.claim()
    assert job.attempts == 2
    queue.mark_failed(job.job_id, RuntimeError("boom again"))
    assert queue.claim() is None                  # gated: now + 2*2**1
    clock.advance(1.0)
    assert queue.claim() is None
    clock.advance(3.0)
    job = queue.claim()
    assert job.attempts == 3
    queue.mark_failed(job.job_id, RuntimeError("third strike"))
    assert job.status == "failed"                 # max_attempts parked
    assert queue.claim() is None


def test_permanent_failure_skips_retries(tmp_path, clock):
    queue = make_queue(tmp_path, clock, max_attempts=3)
    queue.submit(spec("a"))
    job = queue.claim()
    queue.mark_failed(job.job_id, FarmError("bad spec"), permanent=True)
    assert job.status == "failed" and job.attempts == 1


def test_release_returns_job_without_burning_an_attempt(tmp_path, clock):
    queue = make_queue(tmp_path, clock)
    queue.submit(spec("a"))
    job = queue.claim()
    assert job.attempts == 1
    queue.release(job.job_id)             # graceful drain, not a failure
    assert job.status == "queued" and job.attempts == 0
    assert queue.claim().attempts == 1


def test_unknown_job_id(tmp_path, clock):
    queue = make_queue(tmp_path, clock)
    with pytest.raises(UnknownJobError):
        queue.get("job-999999")


def test_journal_round_trip_requeues_running_jobs(tmp_path, clock):
    """Crash recovery: a journal reloaded after ``kill -9`` turns
    in-flight jobs back into queued ones and keeps the id counter."""
    queue = make_queue(tmp_path, clock)
    queue.submit(spec("a"))
    queue.submit(spec("b"))
    running = queue.claim()
    queue.submit(spec("c"))
    queue.mark_done(queue.claim().job_id)         # b finishes
    del queue

    reloaded = make_queue(tmp_path, clock)
    jobs = {j.job_id: j for j in reloaded.jobs()}
    assert jobs[running.job_id].status == "queued"       # was running
    assert jobs[running.job_id].attempts == 1            # attempt kept
    assert jobs["job-000002"].status == "done"
    assert jobs["job-000003"].status == "queued"
    assert reloaded.submit(spec("d")).job_id == "job-000004"


def test_journal_version_is_checked(tmp_path, clock):
    path = tmp_path / "queue.json"
    path.write_text(json.dumps({"version": 99, "jobs": []}))
    with pytest.raises(FarmError):
        JobQueue(str(path), clock=clock)


def test_invalid_capacity_and_attempts(tmp_path, clock):
    with pytest.raises(FarmError):
        make_queue(tmp_path, clock, capacity=0)
    with pytest.raises(FarmError):
        make_queue(tmp_path, clock, max_attempts=0)
