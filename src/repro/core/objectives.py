"""Joint-optimization objectives (paper §4.2, Equations 2-3).

``obj_joint(x) = (sum_{k != j} F_k(x)[c] - lambda1 * F_j(x)[c])
                 + lambda2 * f_n(x)``

The first term pushes one randomly chosen DNN ``F_j`` away from the seed
class ``c`` while holding the others on it; the second pushes a currently
inactivated neuron ``n`` (one per model, re-picked every iteration) above
the activation threshold.  Every term is differentiable, so the whole
objective's input-gradient is the sum of per-term input-gradients.

Each objective exposes two equivalent APIs:

* ``gradient(x)`` / ``value(x)`` — self-contained; runs the models.
* ``gradient_from_tapes(tapes)`` / ``value_from_tapes(tapes)`` — derives
  the same quantities from :class:`~repro.nn.tape.ForwardPass` tapes the
  caller already recorded (one per model, in model order).  The
  generation engines use this path so that one forward pass per model
  per iteration feeds every term *and* the oracle check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["DifferentialObjective", "RegressionDifferentialObjective",
           "CoverageObjective", "JointObjective"]


class DifferentialObjective:
    """Equation 2 for classifiers: suppress F_j's class-c score."""

    def __init__(self, models, target_index, seed_class, lambda1):
        if not 0 <= target_index < len(models):
            raise ConfigError(
                f"target_index {target_index} out of range for "
                f"{len(models)} models")
        self.models = list(models)
        self.target_index = int(target_index)
        self.seed_class = int(seed_class)
        self.lambda1 = float(lambda1)

    def value_from_tapes(self, tapes):
        total = 0.0
        for k, tape in enumerate(tapes):
            score = float(tape.outputs()[:, self.seed_class].sum())
            total += -self.lambda1 * score if k == self.target_index else score
        return total

    def gradient_from_tapes(self, tapes):
        grad = np.zeros_like(tapes[0].x)
        for k, tape in enumerate(tapes):
            g = tape.gradient_of_class(self.seed_class)
            grad += -self.lambda1 * g if k == self.target_index else g
        return grad

    def value(self, x):
        total = 0.0
        for k, model in enumerate(self.models):
            score = float(model.predict(x)[:, self.seed_class].sum())
            total += -self.lambda1 * score if k == self.target_index else score
        return total

    def gradient(self, x):
        return self.gradient_from_tapes([m.run(x) for m in self.models])


class RegressionDifferentialObjective:
    """Equation 2's analogue for the steering regressors.

    Pushes the chosen model's angle down while pushing the others' angles
    up, driving the predictions apart until the steering directions
    disagree.
    """

    def __init__(self, models, target_index, lambda1):
        if not 0 <= target_index < len(models):
            raise ConfigError(
                f"target_index {target_index} out of range for "
                f"{len(models)} models")
        self.models = list(models)
        self.target_index = int(target_index)
        self.lambda1 = float(lambda1)

    def value_from_tapes(self, tapes):
        total = 0.0
        for k, tape in enumerate(tapes):
            angle = float(tape.outputs().sum())
            total += -self.lambda1 * angle if k == self.target_index else angle
        return total

    def gradient_from_tapes(self, tapes):
        grad = np.zeros_like(tapes[0].x)
        seed = np.ones(self.models[0].output_shape, dtype=tapes[0].dtype)
        for k, tape in enumerate(tapes):
            g = tape.gradient_of_output(seed)
            grad += -self.lambda1 * g if k == self.target_index else g
        return grad

    def value(self, x):
        total = 0.0
        for k, model in enumerate(self.models):
            angle = float(model.predict(x).sum())
            total += -self.lambda1 * angle if k == self.target_index else angle
        return total

    def gradient(self, x):
        return self.gradient_from_tapes([m.run(x) for m in self.models])


class CoverageObjective:
    """obj2: the summed output of one inactivated neuron per model.

    Algorithm 1 line 33 re-picks the neurons each iteration; call
    :meth:`pick` per iteration and then :meth:`gradient` (or hand the
    iteration's tapes to :meth:`gradient_from_tapes`, aligned with the
    trackers' networks).
    """

    def __init__(self, trackers, rng=None):
        self.trackers = list(trackers)
        self.rng = as_rng(rng)
        self._targets = [None] * len(self.trackers)

    def pick(self):
        """Choose an uncovered neuron per model; returns the choices."""
        self._targets = [t.pick_uncovered(self.rng) for t in self.trackers]
        return list(self._targets)

    def value_from_tapes(self, tapes):
        total = 0.0
        for tape, neuron in zip(tapes, self._targets):
            if neuron is None:
                continue
            total += float(tape.neuron_value(neuron).sum())
        return total

    def gradient_from_tapes(self, tapes):
        grad = np.zeros_like(tapes[0].x)
        for tape, neuron in zip(tapes, self._targets):
            if neuron is None:
                continue
            grad += tape.gradient_of_neuron(neuron)
        return grad

    def value(self, x):
        total = 0.0
        for tracker, neuron in zip(self.trackers, self._targets):
            if neuron is None:
                continue
            total += float(tracker.network.neuron_value(x, neuron).sum())
        return total

    def gradient(self, x):
        grad = np.zeros_like(x)
        for tracker, neuron in zip(self.trackers, self._targets):
            if neuron is None:
                continue
            grad += tracker.network.input_gradient_of_neuron(x, neuron)
        return grad


class JointObjective:
    """obj1 + lambda2 * obj2 (Equation 3)."""

    def __init__(self, differential, coverage, lambda2):
        self.differential = differential
        self.coverage = coverage
        self.lambda2 = float(lambda2)

    def step_gradient_from_tapes(self, tapes):
        """Gradient for one ascent iteration, derived from the
        iteration's recorded tapes (re-picks coverage neurons)."""
        grad = self.differential.gradient_from_tapes(tapes)
        if self.lambda2 > 0.0 and self.coverage is not None:
            self.coverage.pick()
            grad = grad + self.lambda2 * self.coverage.gradient_from_tapes(
                tapes)
        return grad

    def step_gradient(self, x):
        """Gradient for one ascent iteration (re-picks coverage neurons)."""
        grad = self.differential.gradient(x)
        if self.lambda2 > 0.0 and self.coverage is not None:
            self.coverage.pick()
            grad = grad + self.lambda2 * self.coverage.gradient(x)
        return grad

    def value(self, x):
        total = self.differential.value(x)
        if self.lambda2 > 0.0 and self.coverage is not None:
            total += self.lambda2 * self.coverage.value(x)
        return total
