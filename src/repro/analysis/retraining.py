"""Retraining with generated tests (paper §7.3, Figure 10).

Augmenting the training set with difference-inducing inputs — labelled
automatically by majority vote across the tested DNNs — and retraining for
a few epochs improves accuracy more than augmenting with the same number
of random or adversarial inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.nn import Trainer, accuracy

__all__ = ["RetrainingCurve", "retrain_with_augmentation"]


@dataclass
class RetrainingCurve:
    """Accuracy after each retraining epoch (index 0 = before retraining)."""

    source: str
    accuracies: list = field(default_factory=list)

    @property
    def improvement(self):
        """Accuracy gain from epoch 0 to the final epoch."""
        return self.accuracies[-1] - self.accuracies[0]


def retrain_with_augmentation(network, dataset, extra_x, extra_y, epochs=5,
                              batch_size=64, lr=5e-4, rng=None,
                              source="deepxplore"):
    """Retrain ``network`` on train-set ∪ extra samples; track accuracy.

    The network is mutated in place (callers wanting to preserve the
    original should reload from cache or deep-copy the state dict first).
    Returns a :class:`RetrainingCurve` with ``epochs + 1`` entries.
    """
    extra_x = np.asarray(extra_x, dtype=np.float64)
    extra_y = np.asarray(extra_y)
    if extra_x.shape[0] != extra_y.shape[0]:
        raise ConfigError("extra_x/extra_y sample counts differ")
    x_aug = np.concatenate([dataset.x_train, extra_x])
    y_aug = np.concatenate([np.asarray(dataset.y_train), extra_y])
    curve = RetrainingCurve(source=source)
    curve.accuracies.append(accuracy(network, dataset.x_test, dataset.y_test))
    trainer = Trainer(network, loss="cross_entropy", optimizer="adam", lr=lr,
                      rng=rng)
    for _ in range(epochs):
        trainer.fit(x_aug, y_aug, epochs=1, batch_size=batch_size)
        curve.accuracies.append(
            accuracy(network, dataset.x_test, dataset.y_test))
    return curve
