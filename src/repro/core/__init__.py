"""DeepXplore core: joint-optimization test generation (paper §3-§4)."""

from repro.core.campaign import Campaign, CampaignShard, shard_corpus
from repro.core.config import Hyperparams, PAPER_HYPERPARAMS
from repro.core.constraints import (Constraint, DrebinConstraint,
                                    LightingConstraint, MultiRectOcclusion,
                                    PdfFeatureConstraint, SingleRectOcclusion,
                                    Unconstrained, constraint_for_dataset)
from repro.core.engine import (ASCENT_RULES, AdamRule, AdaptiveStepRule,
                               AscentContext, AscentEngine, AscentRule,
                               BatchDeepXplore, DeepFoolRule, DeepXplore,
                               GeneratedTest, GenerationResult, MomentumRule,
                               NesterovRule, VanillaRule, make_rule,
                               rule_from_identity, run_ascent)
from repro.core.factory import make_engine, resolve_models
from repro.core.objectives import (CoverageObjective, DifferentialObjective,
                                   JointObjective,
                                   RegressionDifferentialObjective)
from repro.core.oracle import (ClassificationOracle, RegressionOracle,
                               majority_label, make_oracle)

__all__ = [
    "ASCENT_RULES", "AdamRule", "AdaptiveStepRule", "AscentContext",
    "AscentEngine", "AscentRule", "BatchDeepXplore", "DeepFoolRule",
    "MomentumRule", "NesterovRule", "VanillaRule", "make_engine",
    "make_rule", "resolve_models", "rule_from_identity", "run_ascent",
    "Campaign", "CampaignShard", "shard_corpus",
    "Hyperparams", "PAPER_HYPERPARAMS",
    "Constraint", "DrebinConstraint", "LightingConstraint",
    "MultiRectOcclusion", "PdfFeatureConstraint", "SingleRectOcclusion",
    "Unconstrained", "constraint_for_dataset",
    "DeepXplore", "GeneratedTest", "GenerationResult",
    "CoverageObjective", "DifferentialObjective", "JointObjective",
    "RegressionDifferentialObjective",
    "ClassificationOracle", "RegressionOracle", "majority_label",
    "make_oracle",
]
