"""End-to-end integration: the full DeepXplore pipeline per dataset.

Each test exercises dataset synthesis -> model zoo -> Algorithm 1 ->
oracle -> coverage -> analysis for one domain, asserting the cross-module
contracts the unit tests cannot see.
"""

import numpy as np
import pytest

from repro.analysis import average_l1_diversity
from repro.core import (DeepXplore, PAPER_HYPERPARAMS,
                        constraint_for_dataset, majority_label)
from repro.coverage import NeuronCoverageTracker
from repro.nn import accuracy


def _pipeline(models, dataset, rng_seed, n_seeds=20, **hp_changes):
    hp = PAPER_HYPERPARAMS[dataset.name].with_(**hp_changes) \
        if hp_changes else PAPER_HYPERPARAMS[dataset.name]
    trackers = [NeuronCoverageTracker(m, threshold=hp.threshold)
                for m in models]
    engine = DeepXplore(models, hp, constraint_for_dataset(dataset),
                        task=dataset.task, trackers=trackers, rng=rng_seed)
    seeds, labels = dataset.sample_seeds(
        min(n_seeds, dataset.x_test.shape[0]), np.random.default_rng(rng_seed))
    return engine, engine.run(seeds), seeds, labels


def test_mnist_full_pipeline(mnist_trio, mnist_smoke):
    engine, result, seeds, _ = _pipeline(mnist_trio, mnist_smoke, 100)
    assert result.difference_count > 0
    # Coverage is consistent between the engine and its trackers.
    assert engine.mean_coverage() == pytest.approx(
        np.mean([t.coverage() for t in engine.trackers]))
    # Diversity is computable over the generated suite.
    ascent = [t for t in result.tests if t.iterations > 0]
    assert average_l1_diversity(ascent, seeds) >= 0.0
    # Majority-vote labels stay in the class range and mostly match the
    # seeds' own classes (the mutation is a brightness shift).
    if ascent:
        tests_x = np.stack([t.x for t in ascent])
        votes = majority_label(mnist_trio, tests_x)
        assert set(votes).issubset(set(range(10)))


def test_driving_full_pipeline(driving_trio, driving_smoke):
    engine, result, _, _ = _pipeline(driving_trio, driving_smoke, 101)
    assert result.difference_count > 0
    for test in result.tests:
        angles = test.predictions
        # The recorded disagreement must still hold on re-prediction.
        fresh = np.array([m.predict(test.x[None])[0, 0]
                          for m in driving_trio])
        np.testing.assert_allclose(fresh, angles, atol=1e-9)


def test_pdf_full_pipeline(pdf_trio, pdf_smoke):
    engine, result, seeds, _ = _pipeline(pdf_trio, pdf_smoke, 102)
    assert result.difference_count > 0
    mutable = pdf_smoke.metadata["mutable_mask"]
    for test in result.tests:
        if test.iterations == 0:
            continue
        seed = seeds[test.seed_index]
        # Immutable features byte-identical; mutable ones integral.
        np.testing.assert_array_equal(test.x[~mutable], seed[~mutable])
        np.testing.assert_array_equal(test.x[mutable],
                                      np.round(test.x[mutable]))


def test_drebin_full_pipeline(drebin_trio, drebin_smoke):
    engine, result, seeds, _ = _pipeline(drebin_trio, drebin_smoke, 103)
    manifest = drebin_smoke.metadata["manifest_mask"]
    for test in result.tests:
        if test.iterations == 0:
            continue
        seed = seeds[test.seed_index]
        delta = test.x - seed
        # Only manifest additions, no removals anywhere.
        assert np.all(delta >= 0.0)
        assert np.all(delta[~manifest] == 0.0)
        assert delta.sum() == test.iterations  # one bit per iteration


def test_retraining_loop_closes(mnist_trio, mnist_smoke):
    """The paper's feedback loop: generate -> label -> retrain ->
    accuracy stays sane."""
    from repro.analysis import retrain_with_augmentation
    from repro.models import get_model
    engine, result, _, _ = _pipeline(mnist_trio, mnist_smoke, 104,
                                     n_seeds=25)
    tests_x = result.test_inputs()
    if tests_x.shape[0] == 0:
        pytest.skip("no tests generated at this seed")
    votes = majority_label(mnist_trio, tests_x)
    net = get_model("MNI_C2", scale="smoke", seed=0, dataset=mnist_smoke)
    before = accuracy(net, mnist_smoke.x_test, mnist_smoke.y_test)
    curve = retrain_with_augmentation(net, mnist_smoke, tests_x, votes,
                                      epochs=2, rng=105)
    assert curve.accuracies[0] == pytest.approx(before)
    assert curve.accuracies[-1] > 0.5  # retraining did not destroy it
