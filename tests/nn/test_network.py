"""Network container: shapes, neuron table, input-gradients, serialization."""

import numpy as np
import pytest

from repro.errors import CoverageError, ShapeError
from repro.nn import (Conv2D, Dense, Flatten, MaxPool2D, Network)


@pytest.fixture
def small_cnn():
    rng = np.random.default_rng(0)
    return Network([
        Conv2D(1, 3, 3, padding=1, rng=rng, name="c1"),
        MaxPool2D(2, name="p1"),
        Conv2D(3, 4, 3, padding=1, rng=rng, name="c2"),
        Flatten(name="f"),
        Dense(4 * 4 * 4, 6, rng=rng, name="fc"),
        Dense(6, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 8, 8), name="small")


def test_shapes_and_counts(small_cnn):
    assert small_cnn.output_shape == (3,)
    assert small_cnn.total_neurons == 3 + 4 + 6 + 3
    names = [e.layer_name for e in small_cnn.neuron_layers]
    assert names == ["c1", "c2", "fc", "out"]
    offsets = [e.offset for e in small_cnn.neuron_layers]
    assert offsets == [0, 3, 7, 13]


def test_neuron_layer_of(small_cnn):
    entry, local = small_cnn.neuron_layer_of(0)
    assert entry.layer_name == "c1" and local == 0
    entry, local = small_cnn.neuron_layer_of(8)
    assert entry.layer_name == "fc" and local == 1
    with pytest.raises(CoverageError):
        small_cnn.neuron_layer_of(16)
    with pytest.raises(CoverageError):
        small_cnn.neuron_layer_of(-1)


def test_input_validation(small_cnn):
    with pytest.raises(ShapeError):
        small_cnn.predict(np.zeros((2, 1, 7, 8)))


def test_predict_batching_consistent(small_cnn, rng):
    x = rng.random((10, 1, 8, 8))
    np.testing.assert_allclose(small_cnn.predict(x, batch_size=3),
                               small_cnn.predict(x, batch_size=100))


def test_neuron_activations_shape_and_values(small_cnn, rng):
    x = rng.random((4, 1, 8, 8))
    acts = small_cnn.neuron_activations(x)
    assert acts.shape == (4, small_cnn.total_neurons)
    # Output-layer neurons are the softmax probabilities themselves.
    np.testing.assert_allclose(acts[:, -3:], small_cnn.predict(x))


def test_class_gradient_matches_numeric(small_cnn, rng):
    x = rng.random((2, 1, 8, 8))
    grad = small_cnn.input_gradient_of_class(x, 1)
    assert grad.shape == x.shape
    eps = 1e-6
    for idx in [(0, 0, 2, 3), (1, 0, 7, 7)]:
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (small_cnn.predict(xp)[idx[0], 1]
                   - small_cnn.predict(xm)[idx[0], 1]) / (2 * eps)
        assert abs(grad[idx] - numeric) < 1e-7


def test_neuron_gradient_matches_numeric(small_cnn, rng):
    x = rng.random((2, 1, 8, 8))
    for neuron in [0, 5, 9, small_cnn.total_neurons - 1]:
        grad = small_cnn.input_gradient_of_neuron(x, neuron)
        eps = 1e-6
        idx = (1, 0, 4, 4)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (small_cnn.neuron_value(xp, neuron)[1]
                   - small_cnn.neuron_value(xm, neuron)[1]) / (2 * eps)
        assert abs(grad[idx] - numeric) < 1e-6, neuron


def test_state_dict_roundtrip(small_cnn, rng, tmp_path):
    x = rng.random((3, 1, 8, 8))
    before = small_cnn.predict(x)
    path = tmp_path / "weights.npz"
    small_cnn.save(path)
    # Perturb, then restore.
    for param in small_cnn.parameters():
        param.value += 1.0
    assert not np.allclose(small_cnn.predict(x), before)
    small_cnn.load(path)
    np.testing.assert_allclose(small_cnn.predict(x), before)


def test_load_rejects_missing_and_mismatched(small_cnn):
    state = small_cnn.state_dict()
    bad = dict(state)
    first_key = next(iter(bad))
    del bad[first_key]
    with pytest.raises(KeyError):
        small_cnn.load_state_dict(bad)
    bad = dict(state)
    bad[first_key] = np.zeros((1, 1))
    with pytest.raises(ShapeError):
        small_cnn.load_state_dict(bad)


def test_parameter_count(small_cnn):
    expected = sum(p.value.size for p in small_cnn.parameters())
    assert small_cnn.parameter_count() == expected
    assert "small" in repr(small_cnn)


def test_class_gradient_requires_flat_output():
    rng = np.random.default_rng(1)
    net = Network([Conv2D(1, 2, 3, padding=1, rng=rng)], (1, 4, 4))
    with pytest.raises(ShapeError):
        net.input_gradient_of_class(np.zeros((1, 1, 4, 4)), 0)
