"""On-disk, content-addressed corpus store.

A :class:`CorpusStore` is the persistence layer that turns one-shot
generation runs into an ever-growing campaign: every seed and every
difference-inducing test lives in the store, together with the merged
per-model coverage reached so far, and any later run (``repro fuzz``,
``repro generate --resume``) picks up exactly where the corpus left off.

Layout (everything under one directory)::

    corpus/
      MANIFEST.json            # store version + config fingerprint + counters
      checkpoint.json          # commit point: coverage generation + fuzz state
      meta.jsonl               # one JSON record per entry, append-only
      inputs/<hash>.npy        # content-addressed input arrays
      coverage/<model>.g<N>.npz  # versioned merged coverage snapshots

Invariants:

* **Content addressing** — an entry's identity is the SHA-256 of its
  input array (shape + dtype + bytes).  Adding an input twice is a
  no-op, which makes every absorb idempotent: replaying a partially
  persisted wave converges to the same store.
* **Atomic writes** — every file lands via write-to-temp +
  ``os.replace``; ``meta.jsonl`` is append-only with a flush+fsync per
  record, and a truncated trailing line (a crash mid-append) is ignored
  on load.
* **Versioned commit point** — coverage snapshots are written under a
  fresh generation number *first*, then ``checkpoint.json`` flips to
  reference them in one atomic replace.  A crash between the two leaves
  the previous checkpoint (and its snapshot files) fully intact, which
  is what makes :class:`~repro.corpus.session.FuzzSession` resume
  bit-identically.
* **Merge laws** — persisted coverage merges with
  :func:`repro.coverage.merge_state_dicts` (OR: commutative,
  associative, idempotent), the same laws campaign shard-merging rests
  on, so stores built shard-wise or machine-wise fold together exactly.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re

import numpy as np

from repro.analysis.minimize import minimize_suite
from repro.coverage import merge_state_dicts
from repro.errors import ConfigError
from repro.utils.atomicio import atomic_write_bytes, atomic_write_json
from repro.utils.faults import fault_point

__all__ = ["CorpusStore", "CorpusEntry", "corpus_fingerprint", "input_hash",
           "coverage_to_bytes", "coverage_from_bytes",
           "coverage_states_equal"]

STORE_VERSION = 1

#: How many times :meth:`CorpusStore.snapshot` restarts when a racing
#: commit garbage-collects a coverage generation out from under it.
_SNAPSHOT_RETRIES = 5

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


def corpus_fingerprint(models, hyperparams, task):
    """The config dict a corpus store is pinned to (``bind_config``).

    One definition shared by :class:`~repro.corpus.session.FuzzSession`
    and the CLI so ``generate --corpus`` and ``fuzz`` over the same
    directory can never drift apart on fingerprint shape.  Neuron
    counts participate: same-named models at different scales are
    different architectures, and their corpora must not mix.
    """
    return {"models": [m.name for m in models],
            "neurons": [int(m.total_neurons) for m in models],
            "threshold": float(hyperparams.threshold),
            "scaled": True,
            "task": task}


def input_hash(x):
    """Content address of one input array: SHA-256 over shape+dtype+bytes.

    Inputs are canonicalized to contiguous ``float64`` (the dtype every
    engine works in) so the hash is stable across the list/array/dtype
    forms a caller might hold.
    """
    x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(repr((x.shape, str(x.dtype))).encode("utf-8"))
    digest.update(x.tobytes())
    return digest.hexdigest()


# The write discipline now lives in repro.utils.atomicio (the farm's
# journal and endpoint files use the same one); these aliases keep this
# module's historical names working.
_atomic_write_bytes = atomic_write_bytes
_atomic_write_json = atomic_write_json


def _coverage_to_npz_bytes(state):
    """Serialize one tracker ``state_dict`` to ``.npz`` bytes.

    Boolean masks go in as arrays; the scalar config rides along as a
    JSON string in a 0-d unicode array, so nothing needs pickling.
    """
    config = json.dumps({
        "network": state["network"],
        "total_neurons": int(state["total_neurons"]),
        "threshold": float(state["threshold"]),
        "scaled": bool(state["scaled"]),
    })
    buffer = io.BytesIO()
    np.savez(buffer,
             config=np.array(config),
             tracked=np.asarray(state["tracked"], dtype=bool),
             covered=np.asarray(state["covered"], dtype=bool))
    return buffer.getvalue()


def _coverage_from_npz(path):
    with np.load(path, allow_pickle=False) as data:
        config = json.loads(str(data["config"][()]))
        state = dict(config)
        state["tracked"] = np.asarray(data["tracked"], dtype=bool)
        state["covered"] = np.asarray(data["covered"], dtype=bool)
    return state


def coverage_to_bytes(state):
    """Serialize one tracker ``state_dict`` to portable ``.npz`` bytes.

    The exact byte format committed snapshots use on disk, exposed so
    the distribution layer (``repro.dist``) can ship coverage over the
    wire without inventing a second encoding.
    """
    return _coverage_to_npz_bytes(state)


def coverage_from_bytes(payload):
    """Inverse of :func:`coverage_to_bytes`."""
    return _coverage_from_npz(io.BytesIO(payload))


def coverage_states_equal(a, b):
    """True when two ``{model: state_dict}`` maps cover identically.

    The no-op detector behind sync's skip-the-commit path: an OR-merge
    whose result equals the already-committed states would rewrite
    every snapshot and bump the checkpoint generation for nothing, so
    callers compare first.  Masks are compared bit-for-bit; the scalar
    config fields ride along with the masks and cannot differ when the
    masks match a committed snapshot of the same fingerprint-bound
    store.
    """
    if set(a) != set(b):
        return False
    for name, state in a.items():
        other = b[name]
        if not np.array_equal(np.asarray(state["covered"], dtype=bool),
                              np.asarray(other["covered"], dtype=bool)):
            return False
        if not np.array_equal(np.asarray(state["tracked"], dtype=bool),
                              np.asarray(other["tracked"], dtype=bool)):
            return False
    return True


class CorpusEntry(dict):
    """One corpus record (a dict with attribute sugar for common keys)."""

    @property
    def hash(self):
        return self["hash"]

    @property
    def kind(self):
        return self["kind"]


class CorpusStore:
    """Persistent content-addressed corpus + merged coverage.

    Single-writer: one process (the fuzz session or CLI command) owns
    the store at a time.  Readers of a quiescent store are always safe.
    """

    def __init__(self, path, create=True):
        self.path = os.path.abspath(path)
        if not create and not os.path.isdir(self.path):
            # Read-only callers (corpus info, merge sources, distill)
            # must not fabricate an empty store at a typo'd path and
            # then report success over it.
            raise ConfigError(f"no corpus store at {path}")
        if os.path.exists(self.path) and not os.path.isdir(self.path):
            raise ConfigError(
                f"corpus path {path} exists and is not a directory")
        self.inputs_dir = os.path.join(self.path, "inputs")
        self.coverage_dir = os.path.join(self.path, "coverage")
        self.meta_path = os.path.join(self.path, "meta.jsonl")
        self.manifest_path = os.path.join(self.path, "MANIFEST.json")
        self.checkpoint_path = os.path.join(self.path, "checkpoint.json")
        os.makedirs(self.inputs_dir, exist_ok=True)
        os.makedirs(self.coverage_dir, exist_ok=True)
        # Version-check the manifest BEFORE parsing meta/checkpoint: a
        # future-format store must fail with this clean ConfigError, not
        # whatever KeyError the version-1 parsers hit first.
        manifest = self._load_manifest()
        if manifest.get("version", STORE_VERSION) != STORE_VERSION:
            raise ConfigError(
                f"corpus store at {self.path} has version "
                f"{manifest.get('version')!r}; this build reads "
                f"version {STORE_VERSION}")
        self._config = manifest.get("config")
        self._entries = {}          # hash -> CorpusEntry, insertion-ordered
        self._load_meta()
        self._checkpoint = self._load_checkpoint()

    # -- loading ------------------------------------------------------------
    def _read_meta_records(self):
        """Parse ``meta.jsonl`` from disk into ``{hash: CorpusEntry}``.

        The file content is captured in one read, so the result is a
        point-in-time prefix of the append-only log even while another
        process (or thread) is appending to it.  A truncated trailing
        line (a crash or an in-flight append) is ignored — the entry's
        ``.npy`` may exist but unreferenced files are harmless and
        re-adding is idempotent.
        """
        records = {}
        if not os.path.exists(self.meta_path):
            return records
        with open(self.meta_path, "r", encoding="utf-8") as handle:
            data = handle.read()
        for line in data.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            records[record["hash"]] = CorpusEntry(record)
        return records

    def _load_meta(self):
        self._entries.update(self._read_meta_records())

    def _load_checkpoint(self):
        if not os.path.exists(self.checkpoint_path):
            return {"version": STORE_VERSION, "coverage_gen": 0,
                    "coverage": {}, "fuzz": None}
        with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def _load_manifest(self):
        if not os.path.exists(self.manifest_path):
            return {"version": STORE_VERSION, "config": None}
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- config fingerprint -------------------------------------------------
    def bind_config(self, config):
        """Pin (or validate) the store's config fingerprint.

        ``config`` is a JSON-safe dict naming what the corpus was built
        against (model names, coverage threshold/scaling, task).  The
        first binder writes it; later binders must match — feeding a
        corpus built for one model trio into another is a
        :class:`ConfigError`, not silently wrong coverage.
        """
        config = json.loads(json.dumps(config))  # normalize to JSON types
        if self._config is None:
            self._config = config
            self._write_manifest()
        elif self._config != config:
            raise ConfigError(
                f"corpus at {self.path} was built with config "
                f"{self._config!r}; refusing to reuse it with {config!r}")
        return self._config

    @property
    def config(self):
        return self._config

    # -- entries ------------------------------------------------------------
    def __len__(self):
        return len(self._entries)

    def __contains__(self, entry_hash):
        return entry_hash in self._entries

    def entries(self, kind=None):
        """All entries in insertion order, optionally filtered by kind."""
        if kind is None:
            return list(self._entries.values())
        return [e for e in self._entries.values() if e["kind"] == kind]

    def get(self, entry_hash):
        return self._entries[entry_hash]

    def input_path(self, entry_hash):
        return os.path.join(self.inputs_dir, f"{entry_hash}.npy")

    def load_input(self, entry_hash):
        return np.load(self.input_path(entry_hash), allow_pickle=False)

    def load_inputs(self, hashes):
        """Stack the inputs for ``hashes`` into one batch array."""
        return np.stack([self.load_input(h) for h in hashes])

    def add_entry(self, x, kind, **meta):
        """Persist one input; returns ``(hash, added)``.

        Idempotent: an input already in the store (by content hash) is
        not re-written and its metadata is not duplicated, so replaying
        a partially persisted wave converges.  The ``.npy`` lands
        atomically *before* the ``meta.jsonl`` record references it.
        """
        # Countdown N dies on the Nth NEW entry of that kind — with the
        # first N-1 already on disk and unreferenced by any checkpoint,
        # the exact mid-wave state the resume contract must absorb.
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        entry_hash = input_hash(x)
        if entry_hash in self._entries:
            return entry_hash, False
        fault_point(f"corpus.add-{kind}")
        buffer = io.BytesIO()
        np.save(buffer, x)
        _atomic_write_bytes(self.input_path(entry_hash), buffer.getvalue())
        record = {"hash": entry_hash, "kind": str(kind)}
        record.update(json.loads(json.dumps(meta)))
        with open(self.meta_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[entry_hash] = CorpusEntry(record)
        return entry_hash, True

    # -- coverage + checkpoint commits --------------------------------------
    def coverage_states(self):
        """The committed per-model coverage snapshots, ``{name: state}``."""
        states = {}
        for name, rel_path in self._checkpoint.get("coverage", {}).items():
            states[name] = _coverage_from_npz(os.path.join(self.path,
                                                           rel_path))
        return states

    def fuzz_state(self):
        """The committed fuzz-session state (or ``None``)."""
        return self._checkpoint.get("fuzz")

    def commit(self, coverage_states=None, fuzz_state=None):
        """Atomically commit coverage snapshots + session state.

        Order is the crash-safety contract: (1) write every snapshot
        under a fresh generation number, (2) atomically replace
        ``checkpoint.json`` to reference them, (3) garbage-collect
        snapshots of other generations.  A crash anywhere leaves the
        store at exactly the previous commit.

        ``coverage_states`` maps model name to a tracker ``state_dict``;
        when ``None`` the previously committed snapshots are kept.
        """
        gen = int(self._checkpoint.get("coverage_gen", 0)) + 1
        if coverage_states is None:
            coverage_refs = dict(self._checkpoint.get("coverage", {}))
            gen = int(self._checkpoint.get("coverage_gen", 0))
        else:
            coverage_refs = {}
            for name, state in coverage_states.items():
                safe = _SAFE_NAME.sub("_", name)
                rel_path = os.path.join("coverage", f"{safe}.g{gen}.npz")
                _atomic_write_bytes(os.path.join(self.path, rel_path),
                                    _coverage_to_npz_bytes(state))
                coverage_refs[name] = rel_path
        checkpoint = {"version": STORE_VERSION, "coverage_gen": gen,
                      "coverage": coverage_refs, "fuzz": fuzz_state}
        # The narrowest crash window the commit protocol defends: new
        # snapshots on disk, checkpoint not yet flipped to them.
        fault_point("corpus.commit.mid")
        _atomic_write_json(self.checkpoint_path, checkpoint)
        self._checkpoint = checkpoint
        self._gc_coverage()
        self._write_manifest()

    def _gc_coverage(self):
        """Remove snapshots the committed checkpoint no longer references."""
        keep = {os.path.basename(p)
                for p in self._checkpoint.get("coverage", {}).values()}
        for name in os.listdir(self.coverage_dir):
            if name.endswith(".npz") and name not in keep:
                os.unlink(os.path.join(self.coverage_dir, name))

    def merge_coverage(self, states):
        """Committed snapshots ⊕ ``states`` (no commit; caller commits).

        Models without a committed snapshot pass through unchanged.
        """
        merged = self.coverage_states()
        for name, state in states.items():
            if name in merged:
                merged[name] = merge_state_dicts(merged[name], state)
            else:
                merged[name] = state
        return merged

    def _write_manifest(self):
        kinds = {}
        for entry in self._entries.values():
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        _atomic_write_json(self.manifest_path, {
            "version": STORE_VERSION,
            "config": self._config,
            "entries": len(self._entries),
            "by_kind": kinds,
            "coverage_gen": self._checkpoint.get("coverage_gen", 0),
        })

    # -- consistent reads ---------------------------------------------------
    def snapshot(self, exclude_hashes=None):
        """Crash-consistent point-in-time view of this store's disk state.

        ``exclude_hashes`` filters the returned entry records (delta
        manifests for sync: a puller sends the hashes it already holds
        and receives only what it lacks).  Coverage and config are
        always included — they merge, they don't dedup.

        Everything is read from disk — never from this handle's caches —
        so the snapshot observes entries and commits made by *other*
        processes or threads since this handle was opened.  Ordering is
        the consistency argument:

        1. the checkpoint is captured first (one atomic file), pinning a
           coverage generation;
        2. the referenced ``.npz`` snapshots are loaded — if a racing
           commit's GC deleted that generation mid-read, the whole read
           restarts from a fresh checkpoint (bounded retries);
        3. ``meta.jsonl`` is captured *after* the checkpoint, and the
           log is append-only, so the entry list is always a superset of
           what the captured coverage has seen — never missing an entry
           the coverage refers to.

        Returns ``{"config", "generation", "entries", "coverage",
        "fuzz"}`` where ``entries`` is a list of plain record dicts.
        """
        last_error = None
        for _ in range(_SNAPSHOT_RETRIES):
            manifest = self._load_manifest()
            checkpoint = self._load_checkpoint()
            try:
                coverage = {
                    name: _coverage_from_npz(os.path.join(self.path, rel))
                    for name, rel in checkpoint.get("coverage", {}).items()}
            except FileNotFoundError as error:
                last_error = error
                continue
            entries = list(self._read_meta_records().values())
            if exclude_hashes:
                exclude = {str(h) for h in exclude_hashes}
                entries = [entry for entry in entries
                           if entry["hash"] not in exclude]
            return {"config": manifest.get("config"),
                    "generation": int(checkpoint.get("coverage_gen", 0)),
                    "entries": entries,
                    "coverage": coverage,
                    "fuzz": checkpoint.get("fuzz")}
        raise ConfigError(
            f"could not take a consistent snapshot of {self.path} after "
            f"{_SNAPSHOT_RETRIES} attempts: a writer kept committing over "
            f"the read ({last_error})")

    # -- store-level merge --------------------------------------------------
    def merge(self, other):
        """Fold another store (or store directory) into this one.

        Entries dedup by content hash (other's insertion order is
        preserved for new entries); coverage snapshots OR-merge under
        the PR-2 laws.  The other store's fuzz-session state is *not*
        imported — scheduling state only makes sense against the store
        that produced it.  Returns the number of entries added.

        The source is read through :meth:`snapshot`, so merging from a
        store that another process is actively fuzzing is safe: this
        folds in a crash-consistent prefix of the source, and a later
        merge picks up the rest (idempotent by content address).
        """
        if not isinstance(other, CorpusStore):
            other = CorpusStore(other, create=False)
        snap = other.snapshot()
        if snap["config"] is not None:
            # Adopts the config when this store has none (fresh merge
            # destination); otherwise a mismatch is a ConfigError.
            self.bind_config(snap["config"])
        # Validate + compute the merged coverage BEFORE copying any
        # entry: merge_coverage is pure and raises CoverageError on a
        # criterion/architecture mismatch, so an incompatible source
        # fails without polluting this store.
        merged_coverage = self.merge_coverage(snap["coverage"])
        added = 0
        for entry in snap["entries"]:
            if entry["hash"] in self._entries:
                # Content address already present — skip the .npy read
                # and re-hash entirely (overlapping corpora are the
                # common case after sharded fuzzing).
                continue
            meta = {k: v for k, v in entry.items()
                    if k not in ("hash", "kind")}
            _, was_new = self.add_entry(other.load_input(entry["hash"]),
                                        entry["kind"], **meta)
            added += int(was_new)
        self.commit(coverage_states=merged_coverage,
                    fuzz_state=self.fuzz_state())
        return added

    # -- distillation -------------------------------------------------------
    def distill(self, networks, threshold=0.0, scaled=True, keep_seeds=True):
        """Shrink the corpus to a coverage-preserving subset.

        Greedy set-cover (:func:`repro.analysis.minimize.minimize_suite`)
        over the stored *test* entries: the kept subset standalone-covers
        every neuron the full test set covers on ``networks``.  Seed
        entries are kept by default (they are the fuzzable frontier, not
        redundant artifacts).  The committed *merged* coverage is left
        untouched — it also remembers ascent-path activations that no
        stored input reproduces, and forgetting it would make later
        sessions re-chase covered neurons.

        Returns ``(kept, dropped)`` entry counts (over test entries).
        """
        tests = self.entries(kind="test") if keep_seeds else self.entries()
        if not tests:
            return 0, 0
        hashes = [entry["hash"] for entry in tests]
        inputs = self.load_inputs(hashes)
        chosen, _ = minimize_suite(networks, inputs, threshold=threshold,
                                   scaled=scaled)
        keep_hashes = {hashes[i] for i in chosen}
        if keep_seeds:
            keep_hashes |= {e["hash"] for e in self.entries(kind="seed")}
        dropped = [h for h in self._entries if h not in keep_hashes]
        self._entries = {h: e for h, e in self._entries.items()
                         if h in keep_hashes}
        lines = "".join(json.dumps(dict(e), sort_keys=True) + "\n"
                        for e in self._entries.values())
        _atomic_write_bytes(self.meta_path, lines.encode("utf-8"))
        for entry_hash in dropped:
            path = self.input_path(entry_hash)
            if os.path.exists(path):
                os.unlink(path)
        self._write_manifest()
        return len(keep_hashes & set(hashes)), len(dropped)

    def describe(self):
        """One-paragraph human summary (the ``corpus info`` command)."""
        kinds = {}
        for entry in self._entries.values():
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        coverage = self.coverage_states()
        lines = [f"corpus at {self.path}",
                 f"  entries : {len(self._entries)} "
                 + " ".join(f"{k}={v}" for k, v in sorted(kinds.items()))]
        for name, state in sorted(coverage.items()):
            tracked = int(state["tracked"].sum())
            covered = int((state["covered"] & state["tracked"]).sum())
            frac = covered / tracked if tracked else 0.0
            lines.append(f"  coverage: {name} {covered}/{tracked} "
                         f"({frac:.1%})")
        fuzz = self.fuzz_state()
        if fuzz:
            lines.append(f"  fuzz    : {fuzz.get('completed_rounds', 0)} "
                         f"round(s) completed, root seed "
                         f"{fuzz.get('root_seed')}")
        return "\n".join(lines)
