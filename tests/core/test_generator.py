"""Algorithm 1 driver: end-to-end generation on the smoke-scale zoo."""

import numpy as np
import pytest

from repro.core import (DeepXplore, Hyperparams, LightingConstraint,
                        PAPER_HYPERPARAMS, constraint_for_dataset)
from repro.core.generator import normalize_gradient
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError


def test_normalize_gradient_unit_rms():
    rng = np.random.default_rng(0)
    grad = rng.normal(scale=37.0, size=(3, 2, 4, 4))
    out = normalize_gradient(grad)
    rms = np.sqrt((out.reshape(3, -1) ** 2).mean(axis=1))
    np.testing.assert_allclose(rms, 1.0, atol=1e-6)


def test_normalize_gradient_zero_safe():
    out = normalize_gradient(np.zeros((2, 5)))
    np.testing.assert_array_equal(out, 0.0)


def test_requires_two_models(lenet1):
    with pytest.raises(ConfigError):
        DeepXplore([lenet1])


def test_tracker_count_must_match(mnist_trio):
    trackers = [NeuronCoverageTracker(mnist_trio[0])]
    with pytest.raises(ConfigError):
        DeepXplore(mnist_trio, trackers=trackers)


def test_finds_differences_on_mnist(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(25, np.random.default_rng(3))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=5)
    result = engine.run(seeds)
    assert result.difference_count > 0
    assert result.seeds_processed == 25
    assert (result.seeds_disagreed + result.seeds_exhausted
            <= result.seeds_processed)


def test_generated_tests_expose_disagreement(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(25, np.random.default_rng(4))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=6)
    result = engine.run(seeds)
    for test in result.tests:
        preds = [m.predict(test.x[None]).argmax(axis=1)[0]
                 for m in mnist_trio]
        assert len(set(preds)) > 1, "recorded test does not differ"
        np.testing.assert_array_equal(preds, test.predictions)


def test_generated_inputs_stay_valid_pixels(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(15, np.random.default_rng(5))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=7)
    result = engine.run(seeds)
    for test in result.tests:
        assert test.x.min() >= 0.0 and test.x.max() <= 1.0


def test_coverage_grows_with_tests(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(25, np.random.default_rng(6))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=8)
    assert engine.mean_coverage() == 0.0
    result = engine.run(seeds)
    if result.difference_count:
        assert engine.mean_coverage() > 0.0
    assert set(result.coverage) == {m.name for m in mnist_trio}


def test_max_tests_stops_early(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(30, np.random.default_rng(7))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=9)
    result = engine.run(seeds, max_tests=2)
    assert result.difference_count == 2
    assert result.seeds_processed <= 30


def test_cycle_respects_visit_budget(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(5, np.random.default_rng(8))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=10)
    result = engine.run(seeds, desired_coverage=1.0, cycle=True,
                        max_seed_visits=12)
    assert result.seeds_processed <= 12


def test_regression_generation(driving_trio, driving_smoke):
    seeds, _ = driving_smoke.sample_seeds(20, np.random.default_rng(9))
    engine = DeepXplore(driving_trio, PAPER_HYPERPARAMS["driving"],
                        constraint_for_dataset(driving_smoke),
                        task="regression", rng=11)
    result = engine.run(seeds)
    assert result.difference_count > 0
    for test in result.tests:
        assert test.predictions.dtype.kind == "f"


def test_feature_domain_generation(drebin_trio, drebin_smoke):
    seeds, _ = drebin_smoke.sample_seeds(15, np.random.default_rng(10))
    engine = DeepXplore(drebin_trio, PAPER_HYPERPARAMS["drebin"],
                        constraint_for_dataset(drebin_smoke), rng=12)
    result = engine.run(seeds)
    # Generated Drebin inputs must remain binary and only ever add bits.
    for test in result.tests:
        if test.iterations == 0:
            continue
        seed = seeds[test.seed_index]
        assert set(np.unique(test.x)).issubset({0.0, 1.0})
        assert np.all(test.x >= seed)  # add-only


def test_test_inputs_stacking(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(15, np.random.default_rng(11))
    engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), rng=13)
    result = engine.run(seeds)
    stacked = result.test_inputs()
    if result.difference_count:
        assert stacked.shape == (result.difference_count,
                                 *mnist_smoke.input_shape)


def test_deterministic_given_seed(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(10, np.random.default_rng(12))

    def run():
        engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=99)
        return engine.run(seeds)

    a, b = run(), run()
    assert a.difference_count == b.difference_count
    for ta, tb in zip(a.tests, b.tests):
        np.testing.assert_array_equal(ta.x, tb.x)
