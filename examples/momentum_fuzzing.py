#!/usr/bin/env python
"""Momentum-driven corpus fuzzing: one engine, composed strategies.

Momentum used to be a sequential-only engine subclass; as an
``AscentRule`` it now composes with every driver.  This example runs a
coverage-guided fuzz session whose waves ascend under heavy-ball
momentum, sharded across two campaign workers — then kills the session
after two rounds and resumes it, verifying that the ascent rule is part
of the corpus's resume identity:

1. fuzz a persistent corpus for 2 rounds with ``MomentumRule(0.9)``
   and ``workers=2``;
2. attempt to resume the corpus *without* momentum — rejected, the
   rule is part of the deterministic identity;
3. resume with the matching rule to 4 rounds;
4. compare against an uninterrupted 4-round momentum run —
   bit-identical — and against a vanilla run of the same corpus seed,
   which explores a genuinely different trajectory.

CLI equivalent:  python -m repro fuzz mnist --corpus DIR \\
                     --ascent momentum --beta 0.9 --workers 2

Run:  python examples/momentum_fuzzing.py
"""

import tempfile

from repro import (FuzzSession, MomentumRule, PAPER_HYPERPARAMS,
                   constraint_for_dataset, get_trio, load_dataset)
from repro.corpus import CorpusStore
from repro.errors import ConfigError

SCALE = "smoke"
WAVE_SIZE = 8
SHARD_SIZE = 4
ROOT_SEED = 23


def make_session(corpus_dir, models, dataset, constraint, rule=None,
                 workers=2):
    return FuzzSession(corpus_dir, models, PAPER_HYPERPARAMS["mnist"],
                       constraint, wave_size=WAVE_SIZE,
                       shard_size=SHARD_SIZE, seed=ROOT_SEED, rule=rule,
                       workers=workers, dataset=dataset,
                       initial_seed_count=24)


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)
    constraint = constraint_for_dataset(dataset)

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Two momentum rounds, sharded over two workers.
        print("\nMomentum fuzz, rounds 0-1 (workers=2):")
        session = make_session(f"{tmp}/mom", models, dataset, constraint,
                               rule=MomentumRule(0.9))
        print(session.run(2).render())

        # 2. The rule is identity: a vanilla resume is refused.
        try:
            make_session(f"{tmp}/mom", models, dataset, constraint)
            raise SystemExit("BUG: vanilla resume of a momentum corpus "
                             "should have been rejected")
        except ConfigError as error:
            print(f"\nVanilla resume rejected as expected:\n  {error}")

        # 3. Resume with the matching rule and finish rounds 2-3.
        print("\nResuming with momentum, rounds 2-3:")
        resumed = make_session(f"{tmp}/mom", models, dataset, constraint,
                               rule=MomentumRule(0.9))
        print(resumed.run(4).render())

        # 4a. Bit-identical to an uninterrupted 4-round run.
        reference = make_session(f"{tmp}/ref", models, dataset, constraint,
                                 rule=MomentumRule(0.9))
        reference.run(4)
        mom_entries = [e["hash"] for e in CorpusStore(f"{tmp}/mom").entries()]
        ref_entries = [e["hash"] for e in CorpusStore(f"{tmp}/ref").entries()]
        assert mom_entries == ref_entries, "resume diverged from reference!"
        print(f"\nkill+resume == uninterrupted run "
              f"({len(mom_entries)} identical corpus entries)")

        # 4b. Vanilla explores a different trajectory from the same seed.
        vanilla = make_session(f"{tmp}/van", models, dataset, constraint)
        vanilla.run(4)
        van_entries = [e["hash"] for e in
                       CorpusStore(f"{tmp}/van").entries()]
        print(f"momentum corpus: {len(mom_entries)} entries "
              f"({resumed.mean_coverage():.1%} mean coverage) | "
              f"vanilla corpus: {len(van_entries)} entries "
              f"({vanilla.mean_coverage():.1%} mean coverage)")
        assert mom_entries != van_entries, \
            "momentum and vanilla should diverge"


if __name__ == "__main__":
    main()
