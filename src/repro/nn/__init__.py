"""A from-scratch numpy neural-network framework.

This package substitutes for TensorFlow/Keras in the DeepXplore
reproduction.  It provides layers with exact analytic backward passes,
training (SGD/Adam), and — the capability DeepXplore is built on —
gradients of output probabilities and *arbitrary hidden neurons* with
respect to the network input.
"""

from repro.nn import dtypes
from repro.nn.activations import (
    Activation,
    Atan,
    Elu,
    LeakyRelu,
    Linear,
    Relu,
    Sigmoid,
    Softmax,
    Softplus,
    Tanh,
    get_activation,
)
from repro.nn.config import (layer_from_config, layer_to_config,
                             load_network, network_from_config,
                             network_from_payload, network_to_config,
                             network_to_payload, save_network)
from repro.nn.conv import Conv2D, col2im, conv_output_size, im2col
from repro.nn.dense import Dense
from repro.nn.dtypes import (DEFAULT_DTYPE, GOLDEN_DTYPE, default_dtype,
                             get_default_dtype, set_default_dtype)
from repro.nn.dropout import Dropout
from repro.nn.instrumentation import PassCounter
from repro.nn.initializers import (
    get_initializer,
    glorot_uniform,
    he_normal,
    row_normalized,
)
from repro.nn.layer import Layer
from repro.nn.losses import CrossEntropy, Loss, MeanSquaredError, get_loss
from repro.nn.network import LayerNeurons, Network, NeuronId
from repro.nn.norm import BatchNorm
from repro.nn.metrics import (classification_report, confusion_matrix,
                              precision_recall_f1)
from repro.nn.optimizers import (SGD, Adam, CosineDecay, Optimizer, RMSProp,
                                 StepDecay, clip_gradients, get_optimizer)
from repro.nn.parameter import Parameter
from repro.nn.pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.reshape import Flatten
from repro.nn.residual import Residual
from repro.nn.scale import FixedScale
from repro.nn.tape import ForwardPass, scale_layerwise
from repro.nn.training import (EarlyStopping, Trainer, accuracy, mse,
                               steering_accuracy)
from repro.nn.workspace import Workspace

__all__ = [
    "Activation", "Atan", "Elu", "LeakyRelu", "Linear", "Relu", "Sigmoid",
    "Softmax", "Softplus", "Tanh", "get_activation",
    "Conv2D", "col2im", "conv_output_size", "im2col",
    "Dense", "Dropout",
    "get_initializer", "glorot_uniform", "he_normal", "row_normalized",
    "Layer",
    "CrossEntropy", "Loss", "MeanSquaredError", "get_loss",
    "LayerNeurons", "Network", "NeuronId",
    "ForwardPass", "PassCounter", "scale_layerwise",
    "BatchNorm",
    "SGD", "Adam", "RMSProp", "Optimizer", "get_optimizer",
    "StepDecay", "CosineDecay", "clip_gradients",
    "classification_report", "confusion_matrix", "precision_recall_f1",
    "Parameter",
    "AvgPool2D", "GlobalAvgPool2D", "MaxPool2D",
    "Flatten",
    "Residual",
    "FixedScale",
    "EarlyStopping", "Trainer", "accuracy", "mse", "steering_accuracy",
    "layer_from_config", "layer_to_config", "load_network",
    "network_from_config", "network_from_payload", "network_to_config",
    "network_to_payload", "save_network",
    "dtypes", "DEFAULT_DTYPE", "GOLDEN_DTYPE", "default_dtype",
    "get_default_dtype", "set_default_dtype",
    "Workspace",
]
