"""Label pollution helper."""

import numpy as np
import pytest

from repro.datasets import pollute_labels
from repro.errors import DatasetError


def test_pollutes_requested_fraction(mnist_smoke):
    polluted, flipped = pollute_labels(mnist_smoke, source_class=9,
                                       target_class=1, fraction=0.3, rng=0)
    nines = np.flatnonzero(np.asarray(mnist_smoke.y_train) == 9)
    expected = int(round(nines.size * 0.3))
    assert flipped.size == expected
    # Flipped samples now carry the target label.
    assert np.all(np.asarray(polluted.y_train)[flipped] == 1)
    # Unflipped nines stay nines.
    untouched = np.setdiff1d(nines, flipped)
    assert np.all(np.asarray(polluted.y_train)[untouched] == 9)


def test_original_untouched(mnist_smoke):
    before = np.asarray(mnist_smoke.y_train).copy()
    pollute_labels(mnist_smoke, rng=1)
    np.testing.assert_array_equal(mnist_smoke.y_train, before)


def test_test_split_untouched(mnist_smoke):
    polluted, _ = pollute_labels(mnist_smoke, rng=2)
    np.testing.assert_array_equal(polluted.y_test, mnist_smoke.y_test)


def test_images_shared_not_copied(mnist_smoke):
    polluted, _ = pollute_labels(mnist_smoke, rng=3)
    assert polluted.x_train is mnist_smoke.x_train


def test_invalid_fraction(mnist_smoke):
    with pytest.raises(DatasetError):
        pollute_labels(mnist_smoke, fraction=0.0)


def test_missing_source_class(mnist_smoke):
    with pytest.raises(DatasetError):
        pollute_labels(mnist_smoke, source_class=77)


def test_deterministic(mnist_smoke):
    _, a = pollute_labels(mnist_smoke, rng=9)
    _, b = pollute_labels(mnist_smoke, rng=9)
    np.testing.assert_array_equal(a, b)
