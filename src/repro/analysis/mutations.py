"""Human-readable feature-mutation reports (paper Tables 3-4 rendering).

Shared by the experiment harness and the malware-evasion example: given a
seed/mutated pair over a named feature space, list the most-changed
features with before/after values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["FeatureMutation", "mutation_report"]


@dataclass(frozen=True)
class FeatureMutation:
    """One changed feature."""

    name: str
    index: int
    before: float
    after: float

    @property
    def delta(self):
        return self.after - self.before


def mutation_report(before, after, feature_names, top_k=3):
    """Top-``top_k`` changed features between two feature vectors.

    Returns :class:`FeatureMutation` entries sorted by |delta| descending;
    unchanged features never appear, so fewer than ``top_k`` entries may
    be returned.
    """
    before = np.asarray(before, dtype=np.float64).reshape(-1)
    after = np.asarray(after, dtype=np.float64).reshape(-1)
    if before.shape != after.shape:
        raise ConfigError(
            f"vector lengths differ: {before.shape} vs {after.shape}")
    if len(feature_names) != before.size:
        raise ConfigError(
            f"{len(feature_names)} names for {before.size} features")
    if top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    delta = np.abs(after - before)
    order = np.argsort(delta)[::-1]
    report = []
    for index in order[:top_k]:
        if delta[index] == 0.0:
            break
        report.append(FeatureMutation(
            name=feature_names[index], index=int(index),
            before=float(before[index]), after=float(after[index])))
    return report
