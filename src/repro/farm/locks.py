"""Advisory store locks with liveness-checked staleness recovery.

Corpus stores are single-writer; the farm enforces that across
*processes* with a ``LOCK`` file in the store directory recording the
holder's pid.  Creation is ``O_CREAT | O_EXCL`` (atomic on POSIX), so
two processes cannot both win.  A lock whose pid no longer exists is
stale — the normal aftermath of ``kill -9`` — and is silently broken;
a lock held by a live foreign process raises :class:`StoreLockedError`.

Advisory only: :class:`~repro.corpus.store.CorpusStore` itself does
not check it.  The farm daemon takes the lock around every job, and
refuses submits against stores a live outsider holds.
"""

from __future__ import annotations

import json
import os

from repro.errors import FarmError

__all__ = ["StoreLock", "StoreLockedError", "lock_holder"]

LOCK_NAME = "LOCK"


class StoreLockedError(FarmError):
    """The store is locked by a live process that is not us."""

    def __init__(self, path, holder):
        self.holder = holder
        super().__init__(
            f"store at {path} is locked by pid {holder.get('pid')} "
            f"({holder.get('owner', 'unknown')})")


def _pid_alive(pid):
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, TypeError, ValueError):
        return False
    except PermissionError:
        return True     # exists, owned by someone else
    return True


def lock_holder(store_path):
    """The live foreign holder of ``store_path``'s lock, or ``None``.

    ``None`` means free: no lock file, an unreadable/torn one, a stale
    one (dead pid), or our own.
    """
    path = os.path.join(store_path, LOCK_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            holder = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    if int(holder.get("pid", -1)) == os.getpid():
        return None
    if not _pid_alive(holder.get("pid")):
        return None
    return holder


class StoreLock:
    """Context-managed exclusive lock on one store directory."""

    def __init__(self, store_path, owner="repro"):
        self.store_path = os.path.abspath(store_path)
        self.lock_path = os.path.join(self.store_path, LOCK_NAME)
        self.owner = str(owner)
        self._held = False

    def acquire(self):
        os.makedirs(self.store_path, exist_ok=True)
        payload = (json.dumps({"pid": os.getpid(), "owner": self.owner},
                              sort_keys=True) + "\n").encode("utf-8")
        while not self._held:
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                holder = lock_holder(self.store_path)
                if holder is not None:
                    raise StoreLockedError(self.store_path, holder) \
                        from None
                # Stale (dead pid or our own leftover): break it and
                # race for the fresh file again.
                try:
                    os.unlink(self.lock_path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            self._held = True
        return self

    def release(self):
        if self._held:
            self._held = False
            try:
                os.unlink(self.lock_path)
            except FileNotFoundError:
                pass

    def __enter__(self):
        return self.acquire()

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False
