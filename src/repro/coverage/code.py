"""Traditional line coverage of the prediction code path (paper Table 6).

The paper contrasts neuron coverage with the line coverage of "the Python
code used in the training and testing process": a handful of inputs
executes 100% of the code while activating a small fraction of neurons.
This module reproduces that measurement for our numpy substrate using a
``sys.settrace`` line tracer scoped to the :mod:`repro.nn` sources.

Because the forward path of a *fixed architecture* executes the same lines
for every input, the natural denominator is the set of lines a reference
input set executes (the lines that are dynamically reachable for this
model).  That is exactly the phenomenon Table 6 demonstrates: code
coverage saturates immediately, independent of which inputs are chosen.
A static denominator (every line of every reachable forward function) is
also available for callers who want the stricter ratio.
"""

from __future__ import annotations

import dis
import os
import sys

import repro.nn as _nn_package

__all__ = ["CodeCoverage"]

_NN_DIR = os.path.dirname(_nn_package.__file__)


class CodeCoverage:
    """Line coverage of the model's forward/predict code path."""

    def __init__(self, network):
        self.network = network

    # -- tracing ----------------------------------------------------------------
    def lines_executed(self, x):
        """Set of ``(filename, lineno)`` in repro.nn hit by ``predict(x)``."""
        hits = set()

        def tracer(frame, event, arg):
            filename = frame.f_code.co_filename
            if not filename.startswith(_NN_DIR):
                return None
            if event == "line":
                hits.add((filename, frame.f_lineno))
            return tracer

        old = sys.gettrace()
        sys.settrace(tracer)
        try:
            self.network.predict(x)
        finally:
            sys.settrace(old)
        return hits

    # -- denominators -------------------------------------------------------------
    def static_lines(self):
        """All source lines of the forward methods this network can reach."""
        functions = [type(self.network).forward, type(self.network).predict,
                     type(self.network)._check_input]
        seen_types = set()
        stack = list(self.network.layers)
        while stack:
            layer = stack.pop()
            if type(layer) in seen_types:
                continue
            seen_types.add(type(layer))
            functions.append(type(layer).forward)
            activation = getattr(layer, "activation", None)
            if activation is not None:
                functions.append(type(activation).forward)
            stack.extend(getattr(layer, "body", []))
            stack.extend(getattr(layer, "shortcut", []))
        lines = set()
        for func in functions:
            code = func.__code__
            for _, lineno in dis.findlinestarts(code):
                if lineno is not None:
                    lines.add((code.co_filename, lineno))
        return lines

    # -- coverage -----------------------------------------------------------------
    def coverage(self, x, reference=None):
        """Fraction of prediction-path lines executed by ``x``.

        ``reference`` supplies the denominator input set (defaults to the
        network's dynamically reachable lines measured on ``x`` union
        ``reference``); pass ``reference=None`` with ``static=True``
        semantics via :meth:`static_coverage` for the strict ratio.
        """
        executed = self.lines_executed(x)
        if reference is None:
            total = executed
        else:
            total = executed | self.lines_executed(reference)
        if not total:
            return 0.0
        return len(executed & total) / len(total)

    def static_coverage(self, x):
        """Executed fraction of *all* statically listed forward lines."""
        executed = self.lines_executed(x)
        total = self.static_lines()
        if not total:
            return 0.0
        return len(executed & total) / len(total)
