"""Adversarial-testing baseline (Goodfellow et al.'s FGSM and its
iterative variant).

The paper compares DeepXplore against "adversarial testing [26]": craft
imperceptible perturbations that flip a single model's prediction.  These
inputs expose errors but cluster near the seeds, which is why their neuron
coverage tracks random testing in Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import run_ascent
from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["fgsm", "iterative_fgsm", "adversarial_inputs"]

_EPS = 1e-12


def _loss_gradient(network, x, labels):
    """Gradient of mean cross-entropy w.r.t. the input.

    The network outputs probabilities; ``dCE/dx = -(1/p_y) * dp_y/dx``.
    One forward pass serves both the probabilities and the gradient: the
    per-sample seed matrix selects each sample's own label column, so a
    single backward from the tape replaces the per-label sub-batches.
    """
    tape = network.run(x)
    probs = tape.outputs()
    rows = np.arange(x.shape[0])
    picked = probs[rows, labels]
    seed = np.zeros_like(probs)
    seed[rows, labels] = -1.0 / (picked + _EPS)
    return tape.gradient_of_output(seed)


def fgsm(network, x, labels, epsilon=0.1):
    """Fast Gradient Sign Method: one signed step up the loss surface."""
    return iterative_fgsm(network, x, labels, epsilon=epsilon, steps=1)


def iterative_fgsm(network, x, labels, epsilon=0.1, steps=5):
    """Basic iterative method: repeated small FGSM steps, clipped to an
    epsilon ball around the seed.

    Iterates through the repo's one ascent loop
    (:func:`repro.core.engine.run_ascent`) with the sign direction and
    an epsilon-ball projection; the vanilla rule is FGSM's update.
    """
    if epsilon <= 0:
        raise ConfigError(f"epsilon must be positive, got {epsilon}")
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)

    def gradient(adv, iteration):
        return _loss_gradient(network, adv, labels)

    def project(adv_new, adv_prev):
        adv_new = np.clip(adv_new, x - epsilon, x + epsilon)
        return np.clip(adv_new, 0.0, 1.0)

    return run_ascent(x.copy(), steps, gradient, step=epsilon / steps,
                      direction=np.sign, project=project)


def adversarial_inputs(network, dataset, count, epsilon=0.1, rng=None,
                       iterative=False):
    """Generate ``count`` adversarial inputs from random test seeds.

    Returns ``(adversarial_x, seed_labels)``.  Only defined for
    classification datasets — the paper's adversarial baseline likewise
    attacks classifiers (for driving it perturbs toward larger MSE, which
    :func:`regression_adversarial` covers).
    """
    rng = as_rng(rng)
    seeds, labels = dataset.sample_seeds(count, rng)
    if dataset.task == "regression":
        return regression_adversarial(network, seeds, labels,
                                      epsilon=epsilon), labels
    if iterative:
        return iterative_fgsm(network, seeds, labels, epsilon=epsilon), labels
    return fgsm(network, seeds, labels, epsilon=epsilon), labels


def regression_adversarial(network, x, targets, epsilon=0.1):
    """FGSM analogue for regressors: step along d(output)/dx away from
    the target value, increasing squared error."""
    x = np.asarray(x, dtype=np.float64)
    tape = network.run(x)
    preds = tape.outputs().reshape(-1)
    residual_sign = np.sign(preds - np.asarray(targets, dtype=np.float64))
    grad = tape.gradient_of_output(np.ones(network.output_shape))
    shape = (-1,) + (1,) * (x.ndim - 1)
    return np.clip(x + epsilon * np.sign(grad) * residual_sign.reshape(shape),
                   0.0, 1.0)
