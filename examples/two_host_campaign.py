#!/usr/bin/env python
"""Federation walkthrough: two hosts, one campaign, identical corpora.

Demonstrates the distribution layer (docs/DISTRIBUTED.md) end to end,
in-process — two "hosts" are two ``FederatedSession`` objects sharing a
campaign directory, exactly what two machines sharing a filesystem (or
two ``repro serve`` daemons given the same ``--campaign``) would run:

1. run a solo fuzz session as the reference;
2. run the *same* campaign identity as a two-host federation: each
   host claims shards from the shared ledger, publishes its results,
   and merges everyone's — so both finish with ALL the work applied;
3. verify every store — solo, host A, host B — is **bit-identical**:
   placement is throughput, never identity;
4. sync a third, empty store from host A over the pull protocol and
   watch the second pull add nothing (idempotent by content address).

Run:  python examples/two_host_campaign.py
"""

import tempfile
import threading

import numpy as np

from repro import (FuzzSession, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_trio, load_dataset)
from repro.corpus import CorpusStore
from repro.dist import FederatedSession, pull

SCALE = "smoke"
ROUNDS = 2
WAVE_SIZE = 4
SHARD_SIZE = 2
SEED = 11
POOL = 8


def make_session(corpus_dir, models, dataset):
    """Every host builds the same session identity over its own store."""
    return FuzzSession(corpus_dir, models, PAPER_HYPERPARAMS["mnist"],
                       constraint_for_dataset(dataset, kind="default"),
                       task=dataset.task, wave_size=WAVE_SIZE, workers=1,
                       shard_size=SHARD_SIZE, seed=SEED, dataset=dataset,
                       initial_seed_count=POOL)


def describe(label, store):
    cov = store.coverage_states()
    mean = np.mean([c["covered"].mean() for c in cov.values()])
    print(f"  {label:<8} {len(store):>3} entries, "
          f"mean coverage {mean:.1%}")


def assert_identical(a, b):
    assert a.entries() == b.entries(), "entry records diverged"
    for entry in a.entries():
        assert np.array_equal(a.load_input(entry["hash"]),
                              b.load_input(entry["hash"])), \
            "input bytes diverged"
    cov_a, cov_b = a.coverage_states(), b.coverage_states()
    for name in cov_a:
        assert np.array_equal(cov_a[name]["covered"],
                              cov_b[name]["covered"]), \
            f"coverage diverged on {name}"


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)

    with tempfile.TemporaryDirectory() as tmp:
        print(f"\n1. Solo reference: {ROUNDS} rounds, wave={WAVE_SIZE}")
        solo = make_session(f"{tmp}/solo", models, dataset)
        solo.run(ROUNDS)
        describe("solo", solo.store)

        print("\n2. The same campaign as a two-host federation")
        campaign_dir = f"{tmp}/campaign"      # the only shared state
        hosts = [FederatedSession(make_session(f"{tmp}/{name}", models,
                                               dataset),
                                  campaign_dir, host=name)
                 for name in ("hostA", "hostB")]
        threads = [threading.Thread(target=fed.run, args=(ROUNDS,))
                   for fed in hosts]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for name, fed in zip(("hostA", "hostB"), hosts):
            describe(name, fed.store)

        print("\n3. Placement is throughput, never identity:")
        for fed in hosts:
            assert_identical(solo.store, fed.store)
        print("  solo == hostA == hostB, byte for byte")

        print("\n4. Corpus sync is an idempotent semilattice join:")
        mirror = CorpusStore(f"{tmp}/mirror")
        first = pull(mirror, hosts[0].store)
        second = pull(mirror, hosts[0].store)
        assert second == 0, "second pull must be a no-op"
        assert_identical(solo.store, mirror)
        print(f"  first pull +{first} entries, second pull +{second}; "
              "mirror == solo")

    print("\nDone: any host set converges to the solo bytes.")


if __name__ == "__main__":
    main()
