"""Distributed campaign fabric: multi-host sync, shards, federation.

Three layers, each useful alone (docs/DISTRIBUTED.md is the manual):

* :mod:`repro.dist.sync` — corpus synchronisation between stores, over
  a shared filesystem or the farm's TCP verbs.  A semilattice join:
  idempotent, commutative, crash-safe.
* :mod:`repro.dist.shards` — the work-stealing shard ledger.  Hosts
  claim ``(campaign seed, shard)`` units by lock-protected CAS and
  publish results as atomic files; any host can run any shard and the
  merged campaign is bit-identical to a solo run.
* :mod:`repro.dist.coordinator` — the federation surface: persisted
  peer lists (``repro join`` / ``repro peers``), ledger-federated fuzz
  sessions, and RPC shard fan-out for ``generate --peers``.

Imports are kept lazy toward :mod:`repro.farm` (the daemon imports this
package for its ``federate`` job kind, and the RPC paths import the
farm client), so the two packages compose without an import cycle.
"""

from repro.dist.coordinator import (MAX_GOSSIP_PEERS, PEERS_NAME,
                                    FederatedSession, PeerList,
                                    PeerShardRunner, parse_peer)
from repro.dist.shards import (LedgerShardRunner, ShardLedger,
                               decode_outcome, encode_outcome, round_key,
                               shard_digest, shard_hashes, shard_id)
from repro.dist.sync import (DEFAULT_BATCH, LocalSource, RemoteSource,
                             decode_array, decode_coverage, encode_array,
                             encode_coverage, pull, push)

__all__ = [
    "MAX_GOSSIP_PEERS", "PEERS_NAME", "FederatedSession", "PeerList",
    "PeerShardRunner", "parse_peer",
    "LedgerShardRunner", "ShardLedger", "decode_outcome",
    "encode_outcome", "round_key", "shard_digest", "shard_hashes",
    "shard_id",
    "DEFAULT_BATCH", "LocalSource", "RemoteSource", "decode_array",
    "decode_coverage", "encode_array", "encode_coverage", "pull", "push",
]
