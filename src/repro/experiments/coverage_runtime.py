"""Table 8: time and seeds needed to reach full neuron coverage.

DeepXplore cycles through seeds until every tracked neuron activates.  As
in the paper, fully connected layers are excluded for the image datasets
("some neurons in fully-connected layers ... are very hard to activate"),
while the MLP-only malware models track all layers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.coverage import NeuronCoverageTracker
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import TRIOS, get_trio
from repro.nn import Dense
from repro.utils.rng import as_rng

__all__ = ["run_coverage_runtime"]

_IMAGE_DATASETS = ("mnist", "imagenet", "driving")


def _layer_filter_for(dataset_name):
    if dataset_name in _IMAGE_DATASETS:
        return lambda layer: not isinstance(layer, Dense)
    return None


def _batch_waves(models, hp, constraint, task, trackers, rng, seeds,
                 target_coverage, max_visits, ascent="vanilla", beta=None):
    """Batched counterpart of ``DeepXplore.run(..., cycle=True)``.

    Each wave ascends the whole seed set at once against the *shared*
    trackers (so later waves chase only still-uncovered neurons), until
    the coverage target or the seed-visit budget is reached.
    """
    engine = make_engine("batch", models, hp, constraint, task, rng,
                         trackers=trackers, ascent=ascent, beta=beta)
    start = time.perf_counter()
    processed = 0
    tests = 0
    while processed < max_visits:
        result = engine.run(seeds)
        processed += result.seeds_processed
        tests += result.difference_count
        if float(np.mean([t.coverage() for t in trackers])) \
                >= target_coverage:
            break
    return time.perf_counter() - start, processed, tests


def run_coverage_runtime(scale="small", seed=0, target_coverage=1.0,
                         use_cache=True, datasets=None, max_visit_factor=5,
                         engine="sequential", ascent="vanilla", beta=None):
    """Measure time/seeds to ``target_coverage`` for each dataset trio.

    ``engine="batch"`` replaces the per-seed cycling loop with whole-
    corpus waves of the vectorized engine — the same coverage chase, run
    as fast as the substrate allows.  ``ascent``/``beta`` select the
    update rule for either engine (see :func:`make_engine`).
    """
    datasets = datasets or list(TRIOS)
    result = ExperimentResult(
        experiment_id="table8",
        title="Time to reach full neuron coverage",
        headers=["Dataset", "time (s)", "seeds used", "achieved NCov",
                 "# tests"],
        paper_reference=("6.6s-196.4s and 6-35 seeds to reach 100% "
                         "coverage, depending on dataset"),
    )
    rng = as_rng(seed + 8)
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        models = get_trio(dataset_name, scale=scale, seed=seed,
                          dataset=dataset, use_cache=use_cache)
        layer_filter = _layer_filter_for(dataset_name)
        hp = PAPER_HYPERPARAMS[dataset_name]
        trackers = [NeuronCoverageTracker(m, threshold=hp.threshold,
                                          layer_filter=layer_filter)
                    for m in models]
        n_seeds = seeds_for_scale(scale, maximum=dataset.x_test.shape[0])
        if engine == "batch":
            seeds, _ = dataset.sample_seeds(n_seeds, rng)
            elapsed, processed, tests = _batch_waves(
                models, hp, constraint_for_dataset(dataset), dataset.task,
                trackers, rng, seeds, target_coverage,
                n_seeds * max_visit_factor, ascent=ascent, beta=beta)
            achieved = float(np.mean([t.coverage() for t in trackers]))
            result.rows.append([
                dataset_name, round(elapsed, 2), processed,
                f"{achieved:.1%}", tests,
            ])
            continue
        runner = make_engine("sequential", models, hp,
                             constraint_for_dataset(dataset), dataset.task,
                             rng, trackers=trackers, ascent=ascent,
                             beta=beta)
        seeds, _ = dataset.sample_seeds(n_seeds, rng)
        run = runner.run(seeds, desired_coverage=target_coverage, cycle=True,
                         max_seed_visits=n_seeds * max_visit_factor)
        result.rows.append([
            dataset_name, round(run.elapsed, 2), run.seeds_processed,
            f"{runner.mean_coverage():.1%}", run.difference_count,
        ])
    result.notes.append(
        "image datasets track non-FC layers only, matching the paper; "
        "runs stop early if the seed-visit budget is exhausted")
    return result
