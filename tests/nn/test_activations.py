"""Unit and property tests for activation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigError
from repro.nn.activations import (Atan, LeakyRelu, Linear, Relu, Sigmoid,
                                  Softmax, Tanh, get_activation)

_ALL = [Linear(), Relu(), LeakyRelu(0.2), Sigmoid(), Tanh(), Atan(),
        Softmax()]

finite_arrays = arrays(np.float64, (3, 5),
                       elements=st.floats(-20, 20, allow_nan=False))


def _numeric_backward(act, z, grad, eps=1e-6):
    out = np.zeros_like(z)
    for idx in np.ndindex(z.shape):
        zp = z.copy()
        zp[idx] += eps
        zm = z.copy()
        zm[idx] -= eps
        out[idx] = ((act.forward(zp) - act.forward(zm)) * grad).sum() / (2 * eps)
    return out


@pytest.mark.parametrize("act", _ALL, ids=lambda a: a.name)
def test_backward_matches_numeric(act):
    rng = np.random.default_rng(0)
    z = rng.normal(size=(2, 4))
    # Keep ReLU family away from the nondifferentiable kink.
    z[np.abs(z) < 1e-3] = 0.5
    grad = rng.normal(size=z.shape)
    a = act.forward(z)
    analytic = act.backward(grad, z, a)
    numeric = _numeric_backward(act, z, grad)
    np.testing.assert_allclose(analytic, numeric, atol=1e-6)


def test_relu_clamps_negatives():
    z = np.array([[-1.0, 0.0, 2.5]])
    np.testing.assert_array_equal(Relu().forward(z), [[0.0, 0.0, 2.5]])


def test_leaky_relu_negative_slope():
    z = np.array([[-2.0, 3.0]])
    np.testing.assert_allclose(LeakyRelu(0.1).forward(z), [[-0.2, 3.0]])


@given(finite_arrays)
@settings(max_examples=25, deadline=None)
def test_softmax_is_a_distribution(z):
    probs = Softmax().forward(z)
    assert np.all(probs >= 0.0)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)


@given(finite_arrays)
@settings(max_examples=25, deadline=None)
def test_sigmoid_bounded_and_monotone(z):
    out = Sigmoid().forward(z)
    assert np.all(out > 0.0) and np.all(out < 1.0)
    order = np.argsort(z, axis=-1)
    sorted_out = np.take_along_axis(out, order, axis=-1)
    assert np.all(np.diff(sorted_out, axis=-1) >= -1e-12)


def test_sigmoid_extreme_values_stable():
    out = Sigmoid().forward(np.array([[-1e4, 1e4]]))
    np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


def test_softmax_shift_invariance():
    z = np.array([[1.0, 2.0, 3.0]])
    np.testing.assert_allclose(Softmax().forward(z),
                               Softmax().forward(z + 1000.0), atol=1e-12)


def test_atan_bounds():
    out = Atan().forward(np.array([[-1e6, 0.0, 1e6]]))
    assert np.all(np.abs(out) < np.pi / 2)
    assert out[0, 1] == 0.0


def test_get_activation_by_name_and_instance():
    assert isinstance(get_activation("relu"), Relu)
    assert isinstance(get_activation(None), Linear)
    relu = Relu()
    assert get_activation(relu) is relu


def test_get_activation_unknown_raises():
    with pytest.raises(ConfigError):
        get_activation("swish9000")
