"""Analysis tools for the paper's §7 result sections."""

from repro.analysis.diversity import average_l1_diversity, pairwise_l1_diversity
from repro.analysis.minimize import minimize_suite
from repro.analysis.mutations import FeatureMutation, mutation_report
from repro.analysis.overlap import (OverlapStats, activation_overlap,
                                    class_pair_overlap)
from repro.analysis.pollution import PollutionReport, detect_polluted
from repro.analysis.retraining import RetrainingCurve, retrain_with_augmentation
from repro.analysis.ssim import ssim

__all__ = [
    "average_l1_diversity", "pairwise_l1_diversity",
    "minimize_suite",
    "FeatureMutation", "mutation_report",
    "OverlapStats", "activation_overlap", "class_pair_overlap",
    "PollutionReport", "detect_polluted",
    "RetrainingCurve", "retrain_with_augmentation",
    "ssim",
]
