"""Benchmark: Figure 9 — coverage of DeepXplore vs adversarial vs random."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_coverage_comparison


def test_figure9_coverage(benchmark):
    result = run_once(benchmark, run_coverage_comparison, scale=SCALE,
                      seed=SEED)
    assert len(result.rows) == 5 * 4  # datasets x thresholds
