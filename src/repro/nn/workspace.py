"""Preallocated scratch buffers reused across forward/backward passes.

The ascent loop calls ``network.run`` hundreds of times per seed batch
with identical shapes (the batch only ever *shrinks* as seeds resolve).
Without a workspace every iteration reallocates the same im2col column
matrix, conv output, pooling scatter buffer, and gradient arrays —
allocation and page-faulting costs that rival the GEMMs at smoke scale.

A :class:`Workspace` is a caller-owned dict of flat 1-D arrays keyed by
``(id(layer), tag)``.  Layers request views via :meth:`get` /
:meth:`zeros`; a request that fits inside an existing buffer is served
as a reshaped view of its prefix (so a shrinking batch never
reallocates), otherwise the buffer is grown.  Layers never store the
workspace — it is threaded through ``forward(x, workspace=...)`` and
carried to ``backward`` inside the immutable ctx tuple, which keeps the
"no residual state on layers" guarantee intact.

The trade-off is aliasing: arrays handed out by a workspace are only
valid until the **next** forward/backward that reuses the same buffers.
:class:`~repro.nn.tape.ForwardPass` defensively copies the final input
gradient it returns, and the ascent engine consumes each tape's
gradients before running the next forward, so the loop never observes a
stale view.  Code that holds tapes across forwards (tests, notebooks)
should simply not pass a workspace — everything allocates fresh by
default.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Size-elastic scratch-buffer pool for one network's passes."""

    __slots__ = ("_buffers", "allocations")

    def __init__(self):
        self._buffers = {}
        #: Number of backing allocations performed (for reuse tests).
        self.allocations = 0

    def get(self, key, shape, dtype):
        """An uninitialised array of ``shape``/``dtype`` for ``key``.

        Reuses (a prefix of) the existing backing buffer when it is
        large enough and of the same dtype; contents are undefined.
        """
        size = 1
        for dim in shape:
            size *= dim
        buf = self._buffers.get(key)
        if buf is None or buf.size < size or buf.dtype != dtype:
            buf = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
        return buf[:size].reshape(shape)

    def zeros(self, key, shape, dtype):
        """Like :meth:`get` but zero-filled."""
        out = self.get(key, shape, dtype)
        out.fill(0.0)
        return out

    def nbytes(self):
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self):
        """Drop every buffer (keeps the allocation counter)."""
        self._buffers.clear()
