"""Benchmark: §7.3 — training-data pollution detection."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_pollution_detection


def test_pollution_detection(benchmark):
    result = run_once(benchmark, run_pollution_detection, scale=SCALE,
                      seed=SEED)
    assert result.rows
