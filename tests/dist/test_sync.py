"""Corpus sync laws: idempotent, commutative, crash-safe, wire-safe."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusStore
from repro.corpus.store import coverage_from_bytes, coverage_to_bytes
from repro.dist import (LocalSource, RemoteSource, decode_array,
                        decode_coverage, encode_array, encode_coverage,
                        pull, push)
from repro.errors import ConfigError, FarmError
from repro.farm import PeerClient
from repro.utils.faults import InjectedFault, inject, reset_faults


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def test_array_codec_roundtrip():
    rng = np.random.default_rng(3)
    for arr in (rng.normal(size=(5, 4)),
                rng.normal(size=(2, 3, 3)).astype(np.float32),
                np.arange(7, dtype=np.int64)):
        got = decode_array(encode_array(arr))
        assert got.dtype == arr.dtype
        np.testing.assert_array_equal(got, arr)


def test_coverage_codec_roundtrip(synth_coverage):
    state = synth_coverage((1, 3, 5))
    got = decode_coverage(encode_coverage(state))
    assert got["network"] == state["network"]
    np.testing.assert_array_equal(got["covered"], state["covered"])
    # And the public byte helpers are the exact committed npz format.
    got2 = coverage_from_bytes(coverage_to_bytes(state))
    np.testing.assert_array_equal(got2["covered"], state["covered"])


def test_pull_is_idempotent(tmp_path, make_store, assert_stores_identical):
    make_store(tmp_path / "src", 6, seed=1, covered_idx=(0, 2))
    dest = CorpusStore(tmp_path / "dest")
    assert pull(dest, tmp_path / "src") == 6
    assert pull(dest, tmp_path / "src") == 0
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_pull_is_commutative(tmp_path, make_store):
    """a←b then b←a yields the same union corpus + OR'd coverage."""
    make_store(tmp_path / "a", 4, seed=1, covered_idx=(0, 1))
    make_store(tmp_path / "b", 4, seed=2, covered_idx=(6, 7))
    a, b = CorpusStore(tmp_path / "a"), CorpusStore(tmp_path / "b")
    pull(a, tmp_path / "b")
    pull(b, tmp_path / "a")
    assert {e["hash"] for e in a.entries()} == \
        {e["hash"] for e in b.entries()}
    np.testing.assert_array_equal(
        a.coverage_states()["SYN_A"]["covered"],
        b.coverage_states()["SYN_A"]["covered"])
    assert a.coverage_states()["SYN_A"]["covered"][[0, 1, 6, 7]].all()


def test_pull_refuses_mixed_configs(tmp_path, make_store, synth_config):
    make_store(tmp_path / "src", 2)
    dest = CorpusStore(tmp_path / "dest")
    other = dict(synth_config, models=["OTHER"])
    dest.bind_config(other)
    with pytest.raises(ConfigError):
        pull(dest, tmp_path / "src")
    assert len(dest) == 0


def test_pull_crash_mid_transfer_converges(tmp_path, make_store,
                                           assert_stores_identical):
    """A sync killed between entries resumes to the same final state."""
    make_store(tmp_path / "src", 5, covered_idx=(0, 4))
    dest = CorpusStore(tmp_path / "dest")
    with inject("dist.pull.entry", countdown=3, action="raise"):
        with pytest.raises(InjectedFault):
            pull(dest, tmp_path / "src")
    # Two entries landed, nothing committed — and the re-pull converges.
    assert pull(CorpusStore(tmp_path / "dest"), tmp_path / "src") == 3
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_pull_crash_before_commit_converges(tmp_path, make_store,
                                            assert_stores_identical):
    """All entries in, coverage commit missed: re-pull adds 0, commits."""
    make_store(tmp_path / "src", 3, covered_idx=(2,))
    dest = CorpusStore(tmp_path / "dest")
    with inject("dist.sync.mid", countdown=1, action="raise"):
        with pytest.raises(InjectedFault):
            pull(dest, tmp_path / "src")
    assert pull(CorpusStore(tmp_path / "dest"), tmp_path / "src") == 0
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_noop_pull_skips_coverage_commit(tmp_path, make_store):
    """Satellite: an idle mirror sync (remote coverage ⊆ local) must not
    bump the checkpoint generation or rewrite snapshots."""
    make_store(tmp_path / "src", 4, covered_idx=(0, 2))
    pull(CorpusStore(tmp_path / "dest"), tmp_path / "src")
    gen = CorpusStore(tmp_path / "dest").snapshot()["generation"]
    assert pull(CorpusStore(tmp_path / "dest"), tmp_path / "src") == 0
    assert CorpusStore(tmp_path / "dest").snapshot()["generation"] == gen


def test_pull_commits_when_coverage_is_new(tmp_path, make_store):
    """The skip is only for no-ops: new remote coverage still commits."""
    make_store(tmp_path / "a", 2, seed=1, covered_idx=(0,))
    make_store(tmp_path / "b", 2, seed=2, covered_idx=(7,))
    a = CorpusStore(tmp_path / "a")
    gen = a.snapshot()["generation"]
    pull(a, tmp_path / "b")
    a = CorpusStore(tmp_path / "a")
    assert a.snapshot()["generation"] == gen + 1
    assert a.coverage_states()["SYN_A"]["covered"][[0, 7]].all()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_batched_pull_converges_identically(tmp_path_factory, make_store,
                                            assert_stores_identical, data):
    """Tentpole property: for any batch size, with a crash injected at
    any wire round-trip and the pull re-run, the result is byte-identical
    to a per-entry (batch=1) pull.  Batching is transport only."""
    n_entries = data.draw(st.integers(min_value=1, max_value=8),
                          label="n_entries")
    batch = data.draw(st.integers(min_value=1, max_value=5), label="batch")
    crash_at = data.draw(st.one_of(st.none(),
                                   st.integers(min_value=1, max_value=4)),
                         label="crash_at")
    root = tmp_path_factory.mktemp("batched")
    make_store(root / "src", n_entries, seed=3, covered_idx=(1, 6))
    pull(CorpusStore(root / "ref"), root / "src", batch=1)

    dest = CorpusStore(root / "dest")
    if crash_at is not None:
        with inject("dist.pull.batch", countdown=crash_at, action="raise"):
            try:
                pull(dest, root / "src", batch=batch)
            except InjectedFault:
                pass    # died mid-sync with crash_at-1 batches landed
    pull(CorpusStore(root / "dest"), root / "src", batch=batch)
    assert_stores_identical(root / "ref", root / "dest")


def test_local_source_describe(tmp_path, make_store, synth_config):
    make_store(tmp_path / "src", 3)
    source = LocalSource(tmp_path / "src")
    manifest = source.manifest()
    assert len(manifest["entries"]) == 3
    assert manifest["config"] == synth_config


# -- over the wire -----------------------------------------------------------
def test_remote_pull_and_push(tmp_path, make_store, live_peer,
                              assert_stores_identical):
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 5, covered_idx=(1, 2))

    dest = CorpusStore(tmp_path / "local")
    source = RemoteSource("127.0.0.1", port, "shared")
    assert pull(dest, source) == 5
    assert pull(CorpusStore(tmp_path / "local"), source) == 0
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")

    # Push new local work back up; the remote converges to the union.
    rng = np.random.default_rng(9)
    dest = CorpusStore(tmp_path / "local")
    for i in range(3):
        dest.add_entry(rng.normal(size=(4, 4)), "seed", origin=100 + i)
    dest.commit(coverage_states=dest.coverage_states(),
                fuzz_state=dest.fuzz_state())
    assert push(tmp_path / "local", "127.0.0.1", port, "shared") == 3
    assert push(tmp_path / "local", "127.0.0.1", port, "shared") == 0
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")


def test_remote_pull_round_trips_are_batched(tmp_path, make_store,
                                             live_peer,
                                             assert_stores_identical):
    """The wire cost contract: one manifest + ceil(entries/batch)
    fetches on a cold pull, and a warm re-pull is manifest-only (the
    ``have`` filter leaves nothing to fetch) over the same pooled
    connection."""
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 7, covered_idx=(1, 2))
    source = RemoteSource("127.0.0.1", port, "shared")
    assert pull(CorpusStore(tmp_path / "local"), source, batch=3) == 7
    cold = 1 + math.ceil(7 / 3)
    assert source.client.requests == cold
    assert pull(CorpusStore(tmp_path / "local"), source, batch=3) == 0
    assert source.client.requests == cold + 1   # delta manifest only
    assert source.client.reconnects == 0        # one channel throughout
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")


def test_remote_push_round_trips_are_batched(tmp_path, make_store,
                                             live_peer,
                                             assert_stores_identical):
    daemon, _server, port = live_peer
    # The remote store holds a prefix of the local one (same rng seed),
    # so only the 5-entry delta crosses the wire, in 2 batches.
    make_store(daemon.store_path("shared"), 2, seed=3, covered_idx=(3,))
    make_store(tmp_path / "local", 7, seed=3, covered_idx=(3,))
    assert push(tmp_path / "local", "127.0.0.1", port, "shared",
                batch=3) == 5
    assert push(tmp_path / "local", "127.0.0.1", port, "shared",
                batch=3) == 0
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")


def test_batched_pull_crash_mid_batch_converges(tmp_path, make_store,
                                                live_peer,
                                                assert_stores_identical):
    """The remote flavour of the convergence property: a pull killed at
    the second wire round-trip resumes over TCP to the identical store."""
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 5, covered_idx=(0, 4))
    source = RemoteSource("127.0.0.1", port, "shared")
    with inject("dist.pull.batch", countdown=2, action="raise"):
        with pytest.raises(InjectedFault):
            pull(CorpusStore(tmp_path / "local"), source, batch=2)
    assert pull(CorpusStore(tmp_path / "local"), source, batch=2) == 3
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")


def test_remote_verbs_reject_unknown_store(live_peer):
    _daemon, _server, port = live_peer
    client = PeerClient("127.0.0.1", port)
    with pytest.raises(FarmError):
        client.store_manifest("nope")
    with pytest.raises(FarmError):
        client.store_entry("nope", "deadbeef")


def test_busy_store_fails_fast(tmp_path, make_store, live_peer,
                               synth_config):
    """A write verb against a store a job is using is a retryable
    rejection, not a blocked server thread."""
    daemon, _server, port = live_peer
    make_store(daemon.store_path("busy"), 1)
    guard = daemon._store_guard("busy")
    guard.acquire()
    try:
        client = PeerClient("127.0.0.1", port)
        with pytest.raises(FarmError, match="busy"):
            client.store_push("busy", {"hash": "x", "kind": "seed"},
                              encode_array(np.zeros((4, 4))),
                              config=synth_config)
    finally:
        guard.release()


def test_push_detects_corrupt_wire(tmp_path, make_store, live_peer,
                                   synth_config):
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 1)
    client = PeerClient("127.0.0.1", port)
    with pytest.raises(FarmError, match="corrupt"):
        client.store_push("shared",
                          {"hash": "0" * 64, "kind": "seed"},
                          encode_array(np.ones((4, 4))),
                          config=synth_config)
