#!/usr/bin/env python
"""Farm walkthrough: a campaign daemon serving multi-tenant jobs.

Demonstrates the farm layer (docs/FARM.md) end to end, in-process:

1. boot a ``FarmDaemon`` + ``FarmServer`` over a temp farm root — the
   same stack ``repro serve`` runs, minus the subprocess;
2. submit a fuzz job and a generate job against two tenant stores
   through the TCP client; they run concurrently on the worker threads;
3. show backpressure: submits past queue capacity are rejected with a
   retry-after hint instead of queueing unboundedly;
4. drain gracefully and inspect the tenants' corpus stores.

Run:  python examples/farm_serving.py
"""

import tempfile
import threading

from repro import get_trio, load_dataset
from repro.corpus import CorpusStore
from repro.farm import (FarmClient, FarmDaemon, FarmServer, Job,
                        QueueSaturatedError)

SCALE = "smoke"


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)

    with tempfile.TemporaryDirectory() as tmp:
        root = f"{tmp}/farm"
        # model_source hands the daemon our preloaded trio; `repro
        # serve` resolves the same trio from the zoo cache by itself.
        daemon = FarmDaemon(root, workers=2, capacity=3,
                            model_source=lambda *_: (models, dataset))
        daemon.start()
        server = FarmServer(daemon)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"daemon serving {root} on 127.0.0.1:{server.port}\n")

        client = FarmClient(root)
        fuzz = client.submit({"store": "tenant-a", "kind": "fuzz",
                              "rounds": 2, "seeds": 12, "wave_size": 6,
                              "shard_size": 4, "seed": 7})
        gen = client.submit({"store": "tenant-b", "kind": "generate",
                             "seeds": 8, "shard_size": 4, "seed": 3})
        print(f"submitted {fuzz['job_id']} (fuzz -> tenant-a)")
        print(f"submitted {gen['job_id']} (generate -> tenant-b)")

        # Capacity is 3 and two jobs are in flight; two more submits
        # hit the wall and the second is told when to come back.
        third = client.submit({"store": "tenant-c", "kind": "generate",
                               "seeds": 4, "seed": 1})
        try:
            client.submit({"store": "tenant-d", "kind": "generate",
                           "seeds": 4, "seed": 2})
        except QueueSaturatedError as error:
            print(f"backpressure: {error}")

        for job in (fuzz, gen, third):
            record = client.wait(job["job_id"], timeout=300)
            print(f"\n{Job.from_dict(record).describe()}")
            for key, value in sorted(record["result"].items()):
                print(f"  {key}: {value}")

        client.drain()
        server.shutdown()
        server.close()
        daemon.drain(timeout=60)

        print("\nfinal tenant stores:")
        for name in ("tenant-a", "tenant-b", "tenant-c"):
            store = CorpusStore(daemon.store_path(name))
            print(f"  {name}: {len(store.entries(kind='seed'))} seeds, "
                  f"{len(store.entries(kind='test'))} tests")


if __name__ == "__main__":
    main()
