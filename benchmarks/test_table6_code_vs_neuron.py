"""Benchmark: Table 6 — code coverage vs neuron coverage."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_code_vs_neuron


def test_table6_code_vs_neuron(benchmark):
    result = run_once(benchmark, run_code_vs_neuron, scale=SCALE, seed=SEED)
    for row in result.rows:
        assert row[1] == "100%"  # code coverage saturates
