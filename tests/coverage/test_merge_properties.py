"""Property-based merge laws, with Hypothesis choosing the masks.

``tests/coverage/test_merge.py`` pins the laws on hand-picked examples;
here Hypothesis searches for counterexamples over arbitrary covered
masks, merge orders, and shard partitions.  The laws under test are the
exact ones sharded campaigns and the farm's multi-tenant stores rely on:

* snapshot merging (:func:`merge_state_dicts`) is a semilattice join —
  commutative, associative, idempotent, with the empty mask as identity;
* :meth:`NeuronCoverageTracker.merge` over any permutation of shard
  snapshots equals one tracker that saw the union;
* :meth:`GenerationResult.merge` is permutation-invariant but — unlike
  coverage — deliberately NOT idempotent: counters add, so folding the
  same shard twice double-counts (the campaign never does).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeneratedTest, GenerationResult
from repro.coverage import NeuronCoverageTracker, merge_state_dicts
from repro.errors import CoverageError
from repro.nn import Dense, Network

N_NEURONS = 16


def snapshot(covered, tracked=None, threshold=0.5, network="propnet",
             total=N_NEURONS):
    return {
        "network": network,
        "total_neurons": total,
        "threshold": threshold,
        "scaled": True,
        "tracked": (np.ones(total, dtype=bool) if tracked is None
                    else np.asarray(tracked, dtype=bool)),
        "covered": np.asarray(covered, dtype=bool),
    }


masks = st.lists(st.booleans(), min_size=N_NEURONS,
                 max_size=N_NEURONS).map(lambda bits: np.array(bits))


@given(a=masks, b=masks)
def test_snapshot_merge_is_commutative(a, b):
    ab = merge_state_dicts(snapshot(a), snapshot(b))
    ba = merge_state_dicts(snapshot(b), snapshot(a))
    np.testing.assert_array_equal(ab["covered"], ba["covered"])


@given(a=masks, b=masks, c=masks)
def test_snapshot_merge_is_associative(a, b, c):
    left = merge_state_dicts(merge_state_dicts(snapshot(a), snapshot(b)),
                             snapshot(c))
    right = merge_state_dicts(snapshot(a),
                              merge_state_dicts(snapshot(b), snapshot(c)))
    np.testing.assert_array_equal(left["covered"], right["covered"])


@given(a=masks)
def test_snapshot_merge_is_idempotent_with_empty_identity(a):
    twice = merge_state_dicts(snapshot(a), snapshot(a))
    np.testing.assert_array_equal(twice["covered"], a)
    padded = merge_state_dicts(snapshot(a),
                               snapshot(np.zeros(N_NEURONS, dtype=bool)))
    np.testing.assert_array_equal(padded["covered"], a)


@given(a=masks, b=masks)
def test_snapshot_merge_does_not_mutate_inputs(a, b):
    snap_a, snap_b = snapshot(a), snapshot(b)
    merge_state_dicts(snap_a, snap_b)
    np.testing.assert_array_equal(snap_a["covered"], a)
    np.testing.assert_array_equal(snap_b["covered"], b)


@given(a=masks)
def test_incompatible_snapshots_never_merge(a):
    for clash in (snapshot(a, network="othernet"),
                  snapshot(a, threshold=0.25),
                  snapshot(np.zeros(8, dtype=bool), total=8)):
        with pytest.raises(CoverageError):
            merge_state_dicts(snapshot(a), clash)


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(0)
    return Network([
        Dense(4, 6, rng=rng, name="h1"),
        Dense(6, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(4,), name="propnet")


@settings(max_examples=25, deadline=None)
@given(data=st.data(),
       n_batches=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_sharded_tracker_merge_equals_union_in_any_order(
        net, data, n_batches, seed):
    """Per-shard trackers merged in a Hypothesis-chosen order must equal
    one tracker that saw every batch — the serial/parallel equivalence
    the campaign's shard fan-out depends on."""
    rng = np.random.default_rng(seed)
    batches = [rng.random((4, 4)) for _ in range(n_batches)]
    order = data.draw(st.permutations(range(n_batches)))

    whole = NeuronCoverageTracker(net, threshold=0.5)
    parts = []
    for x in batches:
        whole.update(x)
        part = NeuronCoverageTracker(net, threshold=0.5)
        part.update(x)
        parts.append(part)

    merged = NeuronCoverageTracker(net, threshold=0.5)
    for index in order:
        merged.merge(parts[index])
    np.testing.assert_array_equal(merged.covered, whole.covered)
    assert merged.coverage() == whole.coverage()


def _shard_results(counts):
    """Fake per-shard GenerationResults with globally unique seed
    indices, one test per seed (inputs encode the index for identity)."""
    results, seed_index = [], 0
    for count in counts:
        tests = []
        for _ in range(count):
            tests.append(GeneratedTest(
                x=np.full((2,), float(seed_index)), seed_index=seed_index,
                iterations=1, predictions=np.zeros(2), seed_class=0,
                elapsed=0.0))
            seed_index += 1
        results.append(GenerationResult(
            tests=tests, seeds_processed=count, seeds_disagreed=0,
            seeds_exhausted=0, elapsed=0.5))
    return results


@given(data=st.data(),
       counts=st.lists(st.integers(min_value=0, max_value=4),
                       min_size=1, max_size=6))
def test_generation_result_merge_is_permutation_invariant(data, counts):
    order = data.draw(st.permutations(range(len(counts))))

    forward = GenerationResult()
    for result in _shard_results(counts):
        forward.merge(result)
    shuffled = GenerationResult()
    permuted = _shard_results(counts)
    for index in order:
        shuffled.merge(permuted[index])

    assert [t.seed_index for t in shuffled.tests] \
        == [t.seed_index for t in forward.tests] == sorted(
            t.seed_index for t in forward.tests)
    assert shuffled.seeds_processed == forward.seeds_processed == sum(counts)
    assert shuffled.elapsed == pytest.approx(forward.elapsed)


@given(count=st.integers(min_value=1, max_value=5))
def test_generation_result_merge_is_not_idempotent(count):
    """Counters ADD — folding the same shard twice double-counts.  This
    is the law that forbids blind re-absorption of a replayed shard; the
    store's content-addressed dedup, not result merging, is what makes
    crash replays converge."""
    first, second = _shard_results([count, count])
    merged = GenerationResult().merge(first).merge(second)
    assert merged.seeds_processed == 2 * count
