#!/usr/bin/env python
"""CI smoke for the distributed campaign fabric (docs/DISTRIBUTED.md).

Boots two real ``repro serve`` daemons on localhost and runs one
federated fuzzing campaign across them, with a deterministic crash in
the middle:

1. a solo in-process ``FuzzSession`` produces the reference store (and
   warms the smoke-trio weight cache both daemons load from);
2. host B — armed with ``REPRO_FAULTS="dist.shard.claim:2"`` — runs the
   federate job first: it finishes one shard, claims a second, and
   exits 137 holding it;
3. host A runs the same federate job, steals B's abandoned claim (B's
   recorded pid is provably dead on this machine, so no lease wait;
   the cross-machine lease-expiry path is tier-1 tested in
   tests/dist/), finishes the campaign, and its store must be
   byte-identical to the solo reference (it merged B's shard result —
   a genuine cross-host merge);
4. host B restarts clean; its journaled job resumes, replays the done
   ledger without recomputing, and must converge to the same bytes;
5. a corpus pull over TCP (``RemoteSource``) from host A must be
   idempotent: the second pull adds nothing — and cheap: the cold pull
   must cost at most ``1 + ceil(entries/batch)`` wire round-trips (the
   batched ``store-entries`` verb), the warm re-pull exactly one (the
   ``have``-filtered delta manifest), and the no-op re-pull must not
   bump the mirror's checkpoint generation;
6. the same federated campaign is timed at hosts=1 and hosts=2 and the
   seeds/sec — plus the ``hosts=2 / hosts=1`` speedup ratio — written
   to ``BENCH_dist.json`` (gated in CI by ``tools/bench_compare.py``).

Exit code 0 on success, non-zero with a summary on any failure.

Usage:  PYTHONPATH=src python tools/dist_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                   os.pardir, "src"))
sys.path.insert(0, SRC)

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset, make_rule
from repro.corpus import CorpusStore, FuzzSession
from repro.datasets import load_dataset
from repro.farm import FarmClient
from repro.farm.server import read_endpoint
from repro.models import get_trio
from repro.utils.faults import KILL_EXIT_CODE

BENCH_PATH = os.path.join(os.path.dirname(SRC), "BENCH_dist.json")

#: One campaign identity for every run in this smoke: the whole point
#: is that placement (solo / 1 host / 2 hosts / crashed host) never
#: shows up in the bytes.
ROUNDS, SEEDS, WAVE, SHARD, SEED = 3, 10, 5, 2, 11
LEASE = 5.0


def federate_spec(store, campaign_dir):
    return {"store": store, "kind": "federate", "dataset": "mnist",
            "rounds": ROUNDS, "seeds": SEEDS, "wave_size": WAVE,
            "shard_size": SHARD, "seed": SEED, "campaign": campaign_dir,
            "lease": LEASE}


def start_daemon(root, faults=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def wait_ready(root, proc, timeout=300.0):
    client = FarmClient(root, timeout=5)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited {proc.returncode} before "
                             f"ready:\n{proc.stdout.read()}")
        try:
            client.ping()
            return client
        except Exception:
            time.sleep(0.1)
    raise SystemExit("daemon never became ready")


def solo_reference(path):
    dataset = load_dataset("mnist", scale="smoke", seed=0)
    models = get_trio("mnist", scale="smoke", seed=0, dataset=dataset)
    session = FuzzSession(
        path, models, PAPER_HYPERPARAMS["mnist"],
        constraint_for_dataset(dataset, kind="default"),
        task=dataset.task, wave_size=WAVE, workers=1, shard_size=SHARD,
        seed=SEED, rule=make_rule("vanilla", beta=None, overshoot=None),
        dataset=dataset, initial_seed_count=SEEDS)
    session.run(ROUNDS)
    return session


def compare_stores(reference, candidate, label, fuzz_state=True):
    """Byte-compare two stores; SystemExit naming the first mismatch."""
    a, b = CorpusStore(reference), CorpusStore(candidate)
    if a.entries() != b.entries():
        raise SystemExit(f"{label}: entry records differ "
                         f"({len(a)} vs {len(b)} entries)")
    for entry in a.entries():
        xa, xb = a.load_input(entry["hash"]), b.load_input(entry["hash"])
        if not np.array_equal(xa, xb):
            raise SystemExit(f"{label}: input bytes differ for "
                             f"{entry['hash'][:12]}")
    cov_a, cov_b = a.coverage_states(), b.coverage_states()
    if sorted(cov_a) != sorted(cov_b):
        raise SystemExit(f"{label}: coverage models differ")
    for name in cov_a:
        if not np.array_equal(cov_a[name]["covered"],
                              cov_b[name]["covered"]):
            raise SystemExit(f"{label}: coverage mask differs for {name}")
    if fuzz_state and a.fuzz_state() != b.fuzz_state():
        raise SystemExit(f"{label}: fuzz-session state differs")
    print(f"{label}: byte-identical ({len(a)} entries)")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        solo_path = os.path.join(tmp, "solo")
        print("running solo reference session (trains the smoke trio "
              "on a cold cache)...")
        solo = solo_reference(solo_path)
        print(f"solo: {solo.completed_rounds} rounds, "
              f"{len(solo.store)} entries")

        root_a = os.path.join(tmp, "hostA")
        root_b = os.path.join(tmp, "hostB")
        campaign = os.path.join(tmp, "campaign")
        spec = federate_spec("fed", campaign)

        # -- crash phase: B dies holding a claim, A steals ------------
        proc_b = start_daemon(root_b, faults="dist.shard.claim:2")
        client_b = wait_ready(root_b, proc_b)
        job_b = client_b.submit(spec)
        print(f"host B running federate job {job_b['job_id']} "
              f"(armed to die on its 2nd shard claim)")
        code = proc_b.wait(timeout=420)
        if code != KILL_EXIT_CODE:
            raise SystemExit(f"host B exited {code}, wanted the "
                             f"injected kill ({KILL_EXIT_CODE})")
        print(f"host B died with exit {code}, ledger holds its claim")

        proc_a = start_daemon(root_a)
        client_a = wait_ready(root_a, proc_a)
        job_a = client_a.submit(spec)
        t0 = time.monotonic()
        record = client_a.wait(job_a["job_id"], timeout=420)
        steal_seconds = time.monotonic() - t0
        if record["status"] != "done":
            raise SystemExit(f"host A federate job failed: "
                             f"{record.get('error')}")
        print(f"host A finished the campaign in {steal_seconds:.1f}s "
              f"(stole the dead claim by pid check): {record['result']}")
        compare_stores(solo_path, os.path.join(root_a, "stores", "fed"),
                       "host A vs solo")

        # -- restart phase: B resumes and replays the done ledger ------
        proc_b = start_daemon(root_b)
        client_b = wait_ready(root_b, proc_b)
        record = client_b.wait(job_b["job_id"], timeout=420)
        if record["status"] != "done":
            raise SystemExit(f"restarted host B job failed: "
                             f"{record.get('error')}")
        compare_stores(solo_path, os.path.join(root_b, "stores", "fed"),
                       "restarted host B vs solo")

        # -- sync phase: TCP pull is idempotent, batched, and delta-aware
        from repro.dist import DEFAULT_BATCH, RemoteSource, pull
        port_a = read_endpoint(root_a)["port"]
        mirror = CorpusStore(os.path.join(tmp, "mirror"))
        source = RemoteSource("127.0.0.1", port_a, "fed")
        added = pull(mirror, source)
        cold_trips = source.client.requests
        generation = CorpusStore(mirror.path).snapshot()["generation"]
        again = pull(mirror, source)
        warm_trips = source.client.requests - cold_trips
        if added != len(mirror) or again != 0:
            raise SystemExit(f"TCP pull not idempotent: first={added} "
                             f"second={again} entries={len(mirror)}")
        trip_budget = 1 + -(-added // DEFAULT_BATCH)  # manifest + batches
        if cold_trips > trip_budget:
            raise SystemExit(
                f"cold pull cost {cold_trips} round-trips for {added} "
                f"entries; the batched wire protocol budgets "
                f"{trip_budget} (1 manifest + ceil(n/{DEFAULT_BATCH}))")
        if warm_trips != 1:
            raise SystemExit(
                f"warm re-pull cost {warm_trips} round-trips; the "
                f"have-filtered delta manifest should be the only one")
        if CorpusStore(mirror.path).snapshot()["generation"] != generation:
            raise SystemExit(
                "no-op mirror re-sync bumped the checkpoint generation "
                "(the OR-merge was a subset; nothing should commit)")
        print(f"TCP sync: {added} entries in {cold_trips} round-trips "
              f"(budget {trip_budget}), warm re-sync {warm_trips}; "
              f"{source.client.bytes_received} bytes down / "
              f"{source.client.bytes_sent} up on one pooled connection")
        compare_stores(solo_path, mirror.path, "TCP mirror vs solo",
                       fuzz_state=False)    # pulls never move fuzz state
        benchmarks = [{
            "name": "dist-sync[pull]",
            "entries": added, "batch": DEFAULT_BATCH,
            "round_trips": cold_trips, "warm_round_trips": warm_trips,
            "bytes_received": source.client.bytes_received,
            "bytes_sent": source.client.bytes_sent,
        }]

        # -- timing phase: hosts=1 vs hosts=2 ---------------------------
        rates = {}
        for hosts, clients in ((1, [client_a]),
                               (2, [client_a, client_b])):
            bench_spec = federate_spec(f"bench{hosts}",
                                       os.path.join(tmp, f"c{hosts}"))
            t0 = time.monotonic()
            jobs = [c.submit(bench_spec) for c in clients]
            for client, job in zip(clients, jobs):
                # Tight poll over the pooled channel: status checks are
                # cheap now, and a loose poll would charge its tail
                # latency to the measured wall-clock.
                record = client.wait(job["job_id"], timeout=420,
                                     poll=0.02)
                if record["status"] != "done":
                    raise SystemExit(f"hosts={hosts} bench job failed: "
                                     f"{record.get('error')}")
            seconds = time.monotonic() - t0
            rates[hosts] = ROUNDS * WAVE / seconds
            benchmarks.append({
                "name": f"dist-federation[hosts={hosts}]",
                "seconds": seconds,
                "hosts": hosts, "rounds": ROUNDS, "wave_size": WAVE,
                "seeds_per_sec": rates[hosts],
            })
            print(f"hosts={hosts}: {seconds:.2f}s "
                  f"({rates[hosts]:.2f} seeds/sec)")
            compare_stores(
                solo_path,
                os.path.join(root_a, "stores", f"bench{hosts}"),
                f"hosts={hosts} bench vs solo")
        speedup = rates[2] / rates[1]
        benchmarks.append({"name": "dist-federation[speedup]",
                           "hosts": 2, "speedup": speedup})
        print(f"federation speedup: {speedup:.2f}x "
              f"(hosts=2 over hosts=1)")

        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump({"schema": 1, "scale": "smoke", "seed": SEED,
                       "benchmarks": benchmarks}, handle, indent=1)
            handle.write("\n")
        print(f"wrote {BENCH_PATH}")

        for client, proc in ((client_a, proc_a), (client_b, proc_b)):
            client.drain()
            code = proc.wait(timeout=120)
            if code != 0:
                raise SystemExit(f"drained daemon exited {code}")

    print("dist smoke OK: kill -9 mid-wave, steal, restart, and TCP "
          "sync all converged to the solo bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
