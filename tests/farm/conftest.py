"""Farm test helpers: injected model sources and store comparison."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.corpus import CorpusStore


def _assert_stores_identical(path_a, path_b):
    """Bit-level equality of two corpus stores (same helper contract as
    tests/corpus/test_session_resume.py)."""
    a, b = CorpusStore(path_a), CorpusStore(path_b)
    assert [dict(e) for e in a.entries()] == [dict(e) for e in b.entries()]
    for entry in a.entries():
        np.testing.assert_array_equal(a.load_input(entry["hash"]),
                                      b.load_input(entry["hash"]))
    cov_a, cov_b = a.coverage_states(), b.coverage_states()
    assert set(cov_a) == set(cov_b)
    for name in cov_a:
        np.testing.assert_array_equal(cov_a[name]["covered"],
                                      cov_b[name]["covered"])
    assert a.fuzz_state() == b.fuzz_state()


def _wait_for(predicate, timeout=120.0, poll=0.02):
    """Poll ``predicate`` until truthy; returns its final value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    return predicate()


@pytest.fixture
def assert_stores_identical():
    return _assert_stores_identical


@pytest.fixture
def wait_for():
    return _wait_for


@pytest.fixture
def model_source(mnist_trio, mnist_smoke):
    """A daemon ``model_source`` serving the session-cached mnist trio —
    farm tests never train."""
    def source(dataset_name, scale, seed):
        assert dataset_name == "mnist"
        return mnist_trio, mnist_smoke
    return source
