"""Scaled-down VGG-16 / VGG-19 for the mini-ImageNet dataset.

The originals stack 3x3 same-padding convolutions in blocks separated by
2x2 max pooling, ending in fully connected layers; these minis keep that
family signature (VGG-19 is the deeper sibling with extra convolutions per
late block) at channel widths a numpy CPU stack can train.
"""

from __future__ import annotations

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network
from repro.utils.rng import as_rng

__all__ = ["build_vgg16", "build_vgg19"]

_INPUT_SHAPE = (3, 32, 32)


def _block(in_channels, out_channels, convs, rng, tag):
    layers = []
    channels = in_channels
    for i in range(convs):
        layers.append(Conv2D(channels, out_channels, 3, padding=1, rng=rng,
                             name=f"{tag}_conv{i + 1}"))
        channels = out_channels
    layers.append(MaxPool2D(2, name=f"{tag}_pool"))
    return layers


def build_vgg16(rng=None, name="vgg16"):
    """Mini VGG-16: blocks of (2, 2, 3) convolutions, two dense layers."""
    rng = as_rng(rng)
    layers = []
    layers += _block(3, 8, 2, rng, "block1")    # 32 -> 16
    layers += _block(8, 16, 2, rng, "block2")   # 16 -> 8
    layers += _block(16, 24, 3, rng, "block3")  # 8 -> 4
    layers += [
        Flatten(name="flatten"),
        Dense(24 * 4 * 4, 96, rng=rng, name="fc1"),
        Dense(96, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)


def build_vgg19(rng=None, name="vgg19"):
    """Mini VGG-19: deeper late blocks of (2, 2, 4, 2) convolutions."""
    rng = as_rng(rng)
    layers = []
    layers += _block(3, 8, 2, rng, "block1")    # 32 -> 16
    layers += _block(8, 16, 2, rng, "block2")   # 16 -> 8
    layers += _block(16, 24, 4, rng, "block3")  # 8 -> 4
    layers += _block(24, 32, 2, rng, "block4")  # 4 -> 2
    layers += [
        Flatten(name="flatten"),
        Dense(32 * 2 * 2, 96, rng=rng, name="fc1"),
        Dense(96, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)
