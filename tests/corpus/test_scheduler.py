"""SeedScheduler: energy rules, deterministic waves, JSON round-trip."""

import json

import pytest

from repro.corpus import (ENERGY_EPSILON, INITIAL_ENERGY, NOVELTY_WEIGHT,
                          SeedScheduler, VISIT_DECAY)
from repro.errors import ConfigError


def _scheduler(n=5):
    scheduler = SeedScheduler()
    for i in range(n):
        scheduler.add(f"seed{i}")
    return scheduler


def test_new_seeds_enter_hot_in_insertion_order():
    scheduler = _scheduler(4)
    assert scheduler.next_wave(10) == ["seed0", "seed1", "seed2", "seed3"]
    assert scheduler.next_wave(2) == ["seed0", "seed1"]
    assert scheduler.stats("seed0")["energy"] == INITIAL_ENERGY


def test_add_is_idempotent_and_archives_tests():
    scheduler = _scheduler(2)
    assert not scheduler.add("seed0")            # already known
    scheduler.add("test0", schedulable=False)
    assert scheduler.stats("test0")["retired"]
    assert "test0" not in scheduler.next_wave(10)
    assert scheduler.pending_count() == 2
    assert scheduler.retired_count() == 1


def test_yielding_seed_retires():
    scheduler = _scheduler(3)
    scheduler.record_wave(["seed0", "seed1"], yielded={"seed0"},
                          novelty_fraction=0.1)
    assert scheduler.stats("seed0")["retired"]
    assert scheduler.stats("seed0")["energy"] == 0.0
    assert "seed0" not in scheduler.next_wave(10)
    assert not scheduler.stats("seed1")["retired"]


def test_dry_visits_decay_then_exhaust():
    scheduler = _scheduler(1)
    expected = INITIAL_ENERGY
    visits = 0
    while expected * VISIT_DECAY > ENERGY_EPSILON:
        scheduler.record_wave(["seed0"], yielded=set(), novelty_fraction=0.0)
        expected *= VISIT_DECAY
        visits += 1
        assert scheduler.stats("seed0")["energy"] == expected
        assert not scheduler.stats("seed0")["retired"]
    # The sixth dry visit lands exactly on ENERGY_EPSILON and retires
    # the seed (the documented "six dry visits" rule).
    scheduler.record_wave(["seed0"], yielded=set(), novelty_fraction=0.0)
    assert scheduler.stats("seed0")["retired"]
    assert scheduler.stats("seed0")["visits"] == visits + 1 == 6
    assert scheduler.next_wave(10) == []


def test_novelty_keeps_productive_regions_hot():
    scheduler = _scheduler(2)
    scheduler.record_wave(["seed0"], yielded=set(), novelty_fraction=0.5)
    boosted = INITIAL_ENERGY * VISIT_DECAY * (1 + NOVELTY_WEIGHT * 0.5)
    assert scheduler.stats("seed0")["energy"] == boosted
    # Higher energy now schedules ahead of the untouched seed1.
    assert scheduler.next_wave(2) == ["seed0", "seed1"]
    scheduler.record_wave(["seed1"], yielded=set(), novelty_fraction=0.0)
    assert scheduler.next_wave(2) == ["seed0", "seed1"]
    assert scheduler.stats("seed1")["energy"] < boosted


def test_wave_size_validated():
    with pytest.raises(ConfigError):
        _scheduler().next_wave(0)


def test_state_roundtrips_through_json_bit_identically():
    scheduler = _scheduler(6)
    scheduler.add("test0", schedulable=False)
    scheduler.record_wave(["seed0", "seed1", "seed2"], yielded={"seed1"},
                          novelty_fraction=1 / 3)
    scheduler.record_wave(["seed0", "seed3"], yielded=set(),
                          novelty_fraction=0.013)
    state = json.loads(json.dumps(scheduler.state_dict()))
    clone = SeedScheduler.from_state(state)
    for i in range(6):
        assert clone.stats(f"seed{i}") == scheduler.stats(f"seed{i}")
    assert clone.next_wave(4) == scheduler.next_wave(4)
