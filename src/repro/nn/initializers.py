"""Weight initialization schemes.

``glorot_uniform`` and ``he_normal`` follow the standard definitions.
``row_normalized`` reproduces the DAVE-norminit variant from the paper
(§6.1): weights are drawn normally and then each output row is rescaled to
unit L2 norm, which is the "normalizes the randomly initialized network
weights" change that distinguishes DAVE-norminit from DAVE-orig.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["glorot_uniform", "he_normal", "row_normalized", "get_initializer"]


def glorot_uniform(shape, fan_in, fan_out, rng):
    """Uniform(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out))."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape, fan_in, fan_out, rng):
    """Normal(0, sqrt(2 / fan_in)); the standard choice for ReLU layers."""
    rng = as_rng(rng)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def row_normalized(shape, fan_in, fan_out, rng):
    """Normal draw with each output unit's weight vector scaled to norm 1."""
    rng = as_rng(rng)
    weights = rng.normal(0.0, 1.0, size=shape)
    flat = weights.reshape(shape[0], -1)
    norms = np.linalg.norm(flat, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return (flat / norms).reshape(shape)


_INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "row_normalized": row_normalized,
}


def get_initializer(name):
    """Look up an initializer function by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(_INITIALIZERS))
        raise ConfigError(f"unknown initializer {name!r}; known: {known}") from None
