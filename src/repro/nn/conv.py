"""2-D convolution via im2col.

Array layout is ``(batch, channels, height, width)`` throughout.  The
im2col/col2im pair turns convolution into a single matrix multiply, which
is the only way a pure-numpy CNN is fast enough to train the model zoo.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layer import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import as_rng

__all__ = ["Conv2D", "im2col", "col2im", "conv_output_size"]


def conv_output_size(size, kernel, stride, pad):
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"kernel {kernel} with stride {stride}, pad {pad} does not fit "
            f"input size {size}")
    return out


def im2col(x, kernel_h, kernel_w, stride, pad):
    """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, out_h*out_w)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.reshape(n, c * kernel_h * kernel_w, out_h * out_w)


def col2im(cols, input_shape, kernel_h, kernel_w, stride, pad):
    """Fold columns back to input space, summing overlapping windows."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    cols = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2D(Layer):
    """Convolution with built-in activation.

    For neuron coverage, each output *channel* is one neuron whose value is
    the spatial mean of its feature map — the convention of the original
    DeepXplore implementation.
    """

    exposes_neurons = True

    def __init__(self, in_channels, out_channels, kernel_size, stride=1,
                 padding=0, activation="relu", initializer="he_normal",
                 rng=None, name=None):
        super().__init__(name=name)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = tuple(int(k) for k in kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.activation = get_activation(activation)
        kh, kw = self.kernel_size
        fan_in = self.in_channels * kh * kw
        fan_out = self.out_channels * kh * kw
        rng = as_rng(rng)
        init = get_initializer(initializer)
        weight = init((self.out_channels, fan_in), fan_in=fan_in,
                      fan_out=fan_out, rng=rng)
        self.weight = Parameter(weight, f"{self.name}.weight")
        self.bias = Parameter(np.zeros(self.out_channels), f"{self.name}.bias")

    def forward(self, x, training=False):
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_channels}, H, W), "
                f"got {x.shape}")
        kh, kw = self.kernel_size
        cols = im2col(x, kh, kw, self.stride, self.padding)
        z_flat = self.weight.value @ cols  # (N, F, out_h*out_w)
        z_flat += self.bias.value[None, :, None]
        out_h = conv_output_size(x.shape[2], kh, self.stride, self.padding)
        out_w = conv_output_size(x.shape[3], kw, self.stride, self.padding)
        z = z_flat.reshape(x.shape[0], self.out_channels, out_h, out_w)
        a = self.activation.forward(z)
        return a, (x.shape, cols, z, a)

    def backward(self, ctx, grad_out, accumulate=True):
        input_shape, cols, z, a = ctx
        grad_z = self.activation.backward(grad_out, z, a)
        n = grad_z.shape[0]
        gz_flat = grad_z.reshape(n, self.out_channels, -1)
        if accumulate:
            self.weight.grad += np.tensordot(gz_flat, cols,
                                             axes=([0, 2], [0, 2]))
            self.bias.grad += gz_flat.sum(axis=(0, 2))
        grad_cols = self.weight.value.T @ gz_flat
        kh, kw = self.kernel_size
        return col2im(grad_cols, input_shape, kh, kw, self.stride, self.padding)

    def parameters(self):
        return [self.weight, self.bias]

    def output_shape(self, input_shape):
        c, h, w = input_shape
        kh, kw = self.kernel_size
        return (self.out_channels,
                conv_output_size(h, kh, self.stride, self.padding),
                conv_output_size(w, kw, self.stride, self.padding))

    def neuron_count(self, input_shape):
        return self.out_channels

    def neuron_outputs(self, output):
        return output.mean(axis=(2, 3))

    def neuron_seed(self, output_shape, neuron_index):
        channels, h, w = output_shape
        seed = np.zeros(output_shape, dtype=np.float64)
        seed[neuron_index] = 1.0 / (h * w)
        return seed
