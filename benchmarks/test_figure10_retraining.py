"""Benchmark: Figure 10 — retraining accuracy with augmented data."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_retraining_accuracy


def test_figure10_retraining(benchmark):
    result = run_once(benchmark, run_retraining_accuracy, scale=SCALE,
                      seed=SEED, n_augment=30, epochs=3)
    assert result.rows
