"""FuzzSession: resumability, crash recovery, and corpus-reuse economics.

The acceptance contract (ISSUE 4): a session killed at any instant —
including mid-wave, after some tests of the wave were already persisted
— resumes to a corpus *bit-identical* to an uninterrupted run with the
same seed, for workers ∈ {1, 2}; and a second fuzz run over a saved
corpus starts from the persisted coverage and scheduler state, spending
strictly fewer forward passes than the first run did.
"""

import numpy as np
import pytest

from repro.core import (AdamRule, AdaptiveStepRule, DeepFoolRule,
                        LightingConstraint, MomentumRule, NesterovRule,
                        PAPER_HYPERPARAMS)
from repro.corpus import CorpusStore, FuzzSession
from repro.errors import ConfigError
from repro.nn.instrumentation import PassCounter

WAVE, SHARD, SEED, POOL = 8, 4, 7, 16


def make_session(path, models, dataset=None, workers=1, wave_size=WAVE,
                 shard_size=SHARD, seed=SEED, rule=None):
    return FuzzSession(path, models, PAPER_HYPERPARAMS["mnist"],
                       LightingConstraint(), wave_size=wave_size,
                       workers=workers, shard_size=shard_size, seed=seed,
                       rule=rule, dataset=dataset, initial_seed_count=POOL)


def assert_stores_identical(path_a, path_b):
    a, b = CorpusStore(path_a), CorpusStore(path_b)
    assert [dict(e) for e in a.entries()] == [dict(e) for e in b.entries()]
    for entry in a.entries():
        np.testing.assert_array_equal(a.load_input(entry["hash"]),
                                      b.load_input(entry["hash"]))
    cov_a, cov_b = a.coverage_states(), b.coverage_states()
    assert set(cov_a) == set(cov_b)
    for name in cov_a:
        np.testing.assert_array_equal(cov_a[name]["covered"],
                                      cov_b[name]["covered"])
    assert a.fuzz_state() == b.fuzz_state()


def test_fresh_sessions_are_reproducible(tmp_path, mnist_trio, mnist_smoke):
    ra = make_session(tmp_path / "a", mnist_trio, mnist_smoke).run(3)
    rb = make_session(tmp_path / "b", mnist_trio, mnist_smoke).run(3)
    assert ra.new_tests == rb.new_tests > 0
    assert_stores_identical(tmp_path / "a", tmp_path / "b")


@pytest.mark.parametrize("workers", [1, 2])
def test_kill_midwave_then_resume_is_bit_identical(
        tmp_path, mnist_trio, mnist_smoke, monkeypatch, workers):
    """The tentpole invariant: a SIGKILL-style interruption mid-wave —
    after some of the wave's tests already hit the disk but before the
    wave's checkpoint — loses nothing and changes nothing."""
    reference = make_session(tmp_path / "ref", mnist_trio, mnist_smoke,
                             workers=workers)
    reference.run(3)

    killed = make_session(tmp_path / "kill", mnist_trio, mnist_smoke,
                          workers=workers)
    killed.run(1)
    real_add = CorpusStore.add_entry
    test_adds = {"n": 0}

    def bomb(self, x, kind, **meta):
        if kind == "test":
            test_adds["n"] += 1
            if test_adds["n"] > 2:   # die with a wave partially persisted
                raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    monkeypatch.setattr(CorpusStore, "add_entry", bomb)
    with pytest.raises(KeyboardInterrupt):
        killed.run(3)
    monkeypatch.setattr(CorpusStore, "add_entry", real_add)

    resumed = make_session(tmp_path / "kill", mnist_trio, mnist_smoke,
                           workers=workers)
    assert resumed.completed_rounds < 3   # the kill really lost a wave
    resumed.run(3)
    assert_stores_identical(tmp_path / "ref", tmp_path / "kill")


def test_kill_during_initial_pool_draw_then_resume(tmp_path, mnist_trio,
                                                   mnist_smoke, monkeypatch):
    """Regression: a kill while the initial seed pool was being drawn
    used to leave a partial pool that a resumed session silently
    fuzzed as if complete.  The pre-draw checkpoint marker makes the
    resume finish the (deterministic, idempotent) draw instead."""
    make_session(tmp_path / "ref", mnist_trio, mnist_smoke).run(2)

    real_add = CorpusStore.add_entry
    seed_adds = {"n": 0}

    def bomb(self, x, kind, **meta):
        if kind == "seed":
            seed_adds["n"] += 1
            if seed_adds["n"] > 5:   # die with 5 of POOL seeds on disk
                raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    monkeypatch.setattr(CorpusStore, "add_entry", bomb)
    with pytest.raises(KeyboardInterrupt):
        make_session(tmp_path / "kill", mnist_trio, mnist_smoke)
    monkeypatch.setattr(CorpusStore, "add_entry", real_add)
    assert len(CorpusStore(tmp_path / "kill").entries(kind="seed")) == 5

    resumed = make_session(tmp_path / "kill", mnist_trio, mnist_smoke)
    assert len(resumed.store.entries(kind="seed")) == POOL
    resumed.run(2)
    assert_stores_identical(tmp_path / "ref", tmp_path / "kill")


def test_interrupted_pool_draw_needs_a_seed_source(tmp_path, mnist_trio,
                                                   mnist_smoke, monkeypatch):
    real_add = CorpusStore.add_entry

    def bomb(self, x, kind, **meta):
        if kind == "seed":
            raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    monkeypatch.setattr(CorpusStore, "add_entry", bomb)
    with pytest.raises(KeyboardInterrupt):
        make_session(tmp_path / "c", mnist_trio, mnist_smoke)
    monkeypatch.setattr(CorpusStore, "add_entry", real_add)
    # Resuming without a seed source cannot finish the draw.
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio)
    # Resuming with different pool parameters would draw a different
    # pool than the interrupted session intended.
    with pytest.raises(ConfigError):
        FuzzSession(tmp_path / "c", mnist_trio,
                    PAPER_HYPERPARAMS["mnist"], LightingConstraint(),
                    wave_size=WAVE, shard_size=SHARD, seed=SEED,
                    dataset=mnist_smoke, initial_seed_count=POOL + 1)
    # The matching source finishes the draw and the session runs.
    session = make_session(tmp_path / "c", mnist_trio, mnist_smoke)
    assert len(session.store.entries(kind="seed")) == POOL
    session.run(1)


def test_worker_count_never_changes_the_corpus(tmp_path, mnist_trio,
                                               mnist_smoke):
    make_session(tmp_path / "w1", mnist_trio, mnist_smoke, workers=1).run(3)
    make_session(tmp_path / "w2", mnist_trio, mnist_smoke, workers=2).run(3)
    assert_stores_identical(tmp_path / "w1", tmp_path / "w2")


def test_second_run_reuses_persisted_progress(tmp_path, mnist_trio,
                                              mnist_smoke):
    """Run 2 starts from the saved coverage + scheduler: resolved seeds
    never re-run, so it spends strictly fewer forwards than run 1."""
    with PassCounter() as first:
        session = make_session(tmp_path / "c", mnist_trio, mnist_smoke)
        report1 = session.run(2)
    assert report1.waves_run == 2
    retired = session.scheduler.retired_count()
    assert retired > 0            # something resolved, so run 2 must save

    with PassCounter() as second:
        resumed = make_session(tmp_path / "c", mnist_trio, mnist_smoke)
        report2 = resumed.run(4)
    assert resumed.completed_rounds > 2
    # Strictly fewer forward passes and strictly fewer samples pushed
    # through the models, for the same number of waves.
    assert report2.waves_run <= report1.waves_run
    assert second.total_forwards() < first.total_forwards()
    assert (sum(second.forward_samples.values())
            < sum(first.forward_samples.values()))
    # And it really started from the persisted coverage, not from zero.
    persisted = CorpusStore(tmp_path / "c").coverage_states()
    for model, tracker in zip(resumed.models, resumed.trackers):
        assert tracker.covered_count() >= int(
            (persisted[model.name]["covered"]
             & persisted[model.name]["tracked"]).sum())


def test_momentum_fuzzing_is_worker_invariant(tmp_path, mnist_trio,
                                              mnist_smoke):
    """The scenario combination the unified engine unlocked: momentum x
    campaign x corpus-fuzz, still bit-identical across worker counts."""
    make_session(tmp_path / "w1", mnist_trio, mnist_smoke, workers=1,
                 rule=MomentumRule(0.8)).run(3)
    make_session(tmp_path / "w2", mnist_trio, mnist_smoke, workers=2,
                 rule=MomentumRule(0.8)).run(3)
    assert_stores_identical(tmp_path / "w1", tmp_path / "w2")


def test_momentum_resume_is_bit_identical(tmp_path, mnist_trio,
                                          mnist_smoke):
    """`repro fuzz --ascent momentum` interrupted after one round
    resumes to the same corpus an uninterrupted run produces."""
    make_session(tmp_path / "ref", mnist_trio, mnist_smoke, workers=2,
                 rule=MomentumRule(0.8)).run(3)
    make_session(tmp_path / "split", mnist_trio, mnist_smoke, workers=2,
                 rule=MomentumRule(0.8)).run(1)
    resumed = make_session(tmp_path / "split", mnist_trio, mnist_smoke,
                           workers=2, rule=MomentumRule(0.8))
    assert resumed.completed_rounds == 1
    resumed.run(3)
    assert_stores_identical(tmp_path / "ref", tmp_path / "split")


#: One factory per library rule beyond the vanilla/momentum pair the
#: tests above already pin.  Factories, not instances: each session must
#: get its own per-seed state.
RULE_LIBRARY = {
    "nesterov": lambda: NesterovRule(0.8),
    "adam": lambda: AdamRule(),
    "deepfool": lambda: DeepFoolRule(),
    "adaptive": lambda: AdaptiveStepRule(MomentumRule(0.7)),
}


@pytest.mark.parametrize("rule_name", sorted(RULE_LIBRARY))
def test_rule_library_kill_midwave_then_resume(tmp_path, mnist_trio,
                                               mnist_smoke, monkeypatch,
                                               rule_name):
    """The ISSUE-7 acceptance bar: every library rule — including the
    stateful ones (Adam moments, Nesterov velocity) and the ones that
    read engine state (DeepFool tapes, adaptive scheduler feedback) —
    survives a mid-wave kill under workers=2 and resumes to a corpus
    bit-identical to an uninterrupted run."""
    factory = RULE_LIBRARY[rule_name]
    make_session(tmp_path / "ref", mnist_trio, mnist_smoke, workers=2,
                 rule=factory()).run(3)

    killed = make_session(tmp_path / "kill", mnist_trio, mnist_smoke,
                          workers=2, rule=factory())
    killed.run(1)
    real_add = CorpusStore.add_entry
    test_adds = {"n": 0}

    def bomb(self, x, kind, **meta):
        if kind == "test":
            test_adds["n"] += 1
            if test_adds["n"] > 2:   # die with a wave partially persisted
                raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    monkeypatch.setattr(CorpusStore, "add_entry", bomb)
    with pytest.raises(KeyboardInterrupt):
        killed.run(3)
    monkeypatch.setattr(CorpusStore, "add_entry", real_add)

    resumed = make_session(tmp_path / "kill", mnist_trio, mnist_smoke,
                           workers=2, rule=factory())
    assert resumed.completed_rounds < 3
    resumed.run(3)
    assert_stores_identical(tmp_path / "ref", tmp_path / "kill")


@pytest.mark.parametrize("rule_name", sorted(RULE_LIBRARY))
def test_rule_library_resume_requires_matching_rule(tmp_path, mnist_trio,
                                                    mnist_smoke, rule_name):
    """Each library rule's identity() string guards its corpus: a
    resume under any other rule (including vanilla) is refused."""
    factory = RULE_LIBRARY[rule_name]
    make_session(tmp_path / "c", mnist_trio, mnist_smoke,
                 rule=factory()).run(1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio)           # vanilla
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio,
                     rule=MomentumRule(0.8))
    make_session(tmp_path / "c", mnist_trio, rule=factory())


def test_resume_validates_ascent_rule(tmp_path, mnist_trio, mnist_smoke):
    """The ascent rule is part of a corpus's deterministic identity."""
    make_session(tmp_path / "c", mnist_trio, mnist_smoke,
                 rule=MomentumRule(0.8)).run(1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio)           # vanilla
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio,
                     rule=MomentumRule(0.5))               # other beta
    # The matching rule resumes fine.
    make_session(tmp_path / "c", mnist_trio, rule=MomentumRule(0.8))
    # And a pre-rule corpus (no "ascent" key in its fuzz state) resumes
    # as vanilla.
    make_session(tmp_path / "legacy", mnist_trio, mnist_smoke).run(1)
    store = CorpusStore(tmp_path / "legacy")
    state = store.fuzz_state()
    assert state.pop("ascent") == "vanilla"
    store.commit(coverage_states=store.coverage_states(), fuzz_state=state)
    make_session(tmp_path / "legacy", mnist_trio)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "legacy", mnist_trio,
                     rule=MomentumRule(0.8))


def test_resume_validates_coverage_accounting(tmp_path, mnist_trio,
                                              mnist_smoke):
    """absorb_exhausted is identity: it changes what later waves'
    coverage objectives chase, so flipping it on resume is an error."""
    FuzzSession(tmp_path / "c", mnist_trio, PAPER_HYPERPARAMS["mnist"],
                LightingConstraint(), wave_size=WAVE, shard_size=SHARD,
                seed=SEED, absorb_exhausted=False, dataset=mnist_smoke,
                initial_seed_count=POOL).run(1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio)   # default accounting
    FuzzSession(tmp_path / "c", mnist_trio, PAPER_HYPERPARAMS["mnist"],
                LightingConstraint(), wave_size=WAVE, shard_size=SHARD,
                seed=SEED, absorb_exhausted=False)   # matching: resumes


def test_resume_validates_identity(tmp_path, mnist_trio, mnist_smoke):
    make_session(tmp_path / "c", mnist_trio, mnist_smoke).run(1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio, wave_size=WAVE + 1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio, shard_size=SHARD + 1)
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio, seed=SEED + 1)
    # Same identity resumes fine, with no dataset needed.
    make_session(tmp_path / "c", mnist_trio)


def test_empty_store_without_seed_source_raises(tmp_path, mnist_trio):
    with pytest.raises(ConfigError):
        make_session(tmp_path / "c", mnist_trio)


def test_session_over_pre_seeded_store(tmp_path, mnist_trio, mnist_smoke):
    """A corpus seeded by another tool (e.g. generate --corpus) fuzzes
    without a dataset: the stored seed entries are the pool."""
    store = CorpusStore(tmp_path / "c")
    seeds, _ = mnist_smoke.sample_seeds(6, np.random.default_rng(0))
    for i, x in enumerate(seeds):
        store.add_entry(x, "seed", origin=int(i))
    session = make_session(tmp_path / "c", mnist_trio)
    report = session.run(1)
    assert report.waves_run == 1
    assert report.waves[0]["wave_size"] == 6


def test_distill_prunes_store_and_scheduler(tmp_path, mnist_trio,
                                            mnist_smoke):
    session = make_session(tmp_path / "c", mnist_trio, mnist_smoke)
    session.run(2)
    tests_before = len(session.store.entries(kind="test"))
    assert tests_before > 0
    kept, dropped = session.distill()
    assert kept + dropped == tests_before
    assert len(session.store.entries(kind="test")) == kept
    # Scheduler pool shrank with the store and the session still runs.
    assert len(session.scheduler) == len(session.store.entries())
    session.run(3)
