"""The fault-injection rig itself: plans, countdowns, kill semantics."""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.utils import faults
from repro.utils.faults import (InjectedFault, KILL_EXIT_CODE, fault_point,
                                inject, reset_faults)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    reset_faults()
    yield
    reset_faults()


def test_unarmed_points_are_noops():
    for _ in range(100):
        fault_point("anything.at.all")


def test_countdown_fires_on_nth_hit():
    with inject("p", countdown=3) as arm:
        fault_point("p")
        fault_point("p")
        assert arm["remaining"] == 1
        with pytest.raises(InjectedFault):
            fault_point("p")
        assert arm["remaining"] == 0
        fault_point("p")          # exhausted arms never fire again


def test_points_are_independent():
    with inject("a", countdown=1):
        fault_point("b")          # different point: untouched
        with pytest.raises(InjectedFault):
            fault_point("a")


def test_env_plan_parsing(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "x.y:2:raise, z:1:raise")
    reset_faults()
    fault_point("x.y")
    with pytest.raises(InjectedFault):
        fault_point("z")
    with pytest.raises(InjectedFault):
        fault_point("x.y")


@pytest.mark.parametrize("spec", [
    "point",                      # no countdown
    "p:1:explode",                # unknown action
    "p:zero",                     # non-integer countdown
    "p:0",                        # countdown below 1
    "p:1:raise:extra",            # too many fields
])
def test_bad_plans_are_config_errors(monkeypatch, spec):
    monkeypatch.setenv(faults.ENV_VAR, spec)
    reset_faults()
    with pytest.raises(ConfigError):
        fault_point("p")


def test_kill_action_exits_like_sigkill():
    """A ``kill`` arm takes the process down with exit 137 and no
    cleanup — verified in a child so this suite survives."""
    code = (
        "import atexit, sys\n"
        "atexit.register(lambda: print('CLEANUP RAN'))\n"
        "from repro.utils.faults import fault_point\n"
        "fault_point('die.here')\n"
        "print('SURVIVED')\n"
    )
    src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                       "..", "..", "src"))
    env = dict(os.environ, REPRO_FAULTS="die.here:1", PYTHONPATH=src)
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == KILL_EXIT_CODE
    assert "SURVIVED" not in result.stdout
    assert "CLEANUP RAN" not in result.stdout


def test_injected_fault_is_not_a_repro_error():
    """Library error handling (one-line CLI errors, permanent job
    failures) must never swallow an injected crash as handled."""
    from repro.errors import ReproError
    assert not issubclass(InjectedFault, ReproError)
