"""Clients for a running farm daemon.

Two addressing modes over the same one-line JSON protocol (see
:mod:`repro.farm.server`):

* :class:`FarmClient` — addressed by *farm root*: reads the published
  ``daemon.json`` endpoint, so local tooling never touches port
  numbers.  The submit/status half of the control protocol.
* :class:`PeerClient` — addressed by *host:port*: what federation
  peers use for gossip, corpus sync, and remote shard execution, where
  the other daemon's root directory is on a different machine.

Typed rejections come back as the same exceptions the daemon raised
locally — saturation as
:class:`~repro.farm.queue.QueueSaturatedError` with its ``retry_after``
hint intact, a locked store as
:class:`~repro.farm.locks.StoreLockedError`-shaped
:class:`~repro.errors.FarmError`, an unknown job id as
:class:`~repro.farm.queue.UnknownJobError` — so the CLI's one-line
error reporting needs no special cases for remote vs local.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import FarmError
from repro.farm import server as farm_server
from repro.farm.queue import QueueSaturatedError, UnknownJobError

__all__ = ["FarmClient", "PeerClient"]


def _roundtrip(sock, payload, where):
    """One request/response exchange on an open socket."""
    sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
    with sock.makefile("rb") as handle:
        line = handle.readline(farm_server._MAX_LINE)
    if not line:
        raise FarmError(
            f"farm daemon at {where} closed the connection "
            "without answering")
    response = json.loads(line.decode("utf-8"))
    if response.get("ok"):
        return response
    kind = response.get("kind")
    message = response.get("error", "farm request failed")
    # Re-raise the daemon's typed rejection with its original
    # message (the wire carries the text, not the constructor args).
    if kind == "saturated":
        error = QueueSaturatedError.__new__(QueueSaturatedError)
        error.retry_after = float(response.get("retry_after", 1.0))
        error.capacity = 0
        FarmError.__init__(error, message)
        raise error
    if kind == "unknown-job":
        error = UnknownJobError.__new__(UnknownJobError)
        FarmError.__init__(error, message)
        raise error
    raise FarmError(message)


class FarmClient:
    """Thin per-request client (one connection per call, like the wire
    protocol itself)."""

    def __init__(self, root, timeout=10.0):
        self.root = root
        self.timeout = timeout

    def _request(self, payload):
        with farm_server.connect(self.root, timeout=self.timeout) as sock:
            try:
                return _roundtrip(sock, payload, self.root)
            except OSError as error:
                raise FarmError(
                    f"farm daemon at {self.root} dropped the "
                    f"connection mid-request ({error})") from None

    def ping(self):
        return self._request({"cmd": "ping"})

    def submit(self, spec):
        """Submit a job spec; returns the created job record (dict)."""
        return self._request({"cmd": "submit", "spec": spec})["job"]

    def status(self, job_id=None):
        if job_id is not None:
            return self._request({"cmd": "status", "job_id": job_id})["job"]
        return self._request({"cmd": "status"})["jobs"]

    def counts(self):
        return self._request({"cmd": "counts"})["counts"]

    def drain(self):
        return self._request({"cmd": "drain"})

    def peers(self):
        """This daemon's own gossip plus its cached view of its peers."""
        return self._request({"cmd": "peers"})

    def wait(self, job_id, timeout=120.0, poll=0.2):
        """Block until a job finishes; returns its final record.

        Raises :class:`FarmError` if the job ends ``failed`` or the
        timeout expires — a stuck farm should fail loudly in scripts.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise FarmError(
                    f"job {job_id} failed: {job.get('error')}")
            if time.monotonic() >= deadline:
                raise FarmError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (status: {job['status']})")
            time.sleep(poll)


class PeerClient:
    """Host:port-addressed client for the federation verbs.

    The transport behind :class:`~repro.dist.sync.RemoteSource`,
    ``repro.dist.sync.push``, daemon gossip, and
    :class:`~repro.dist.coordinator.PeerShardRunner`.  Same
    one-connection-per-request protocol and typed errors as
    :class:`FarmClient`; only the addressing differs.
    """

    def __init__(self, host, port, timeout=10.0):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)

    def _request(self, payload):
        where = f"{self.host}:{self.port}"
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as error:
            raise FarmError(
                f"peer {where} is not answering ({error})") from None
        # A reset/timeout mid-request must surface as the same typed
        # error as a refused connection: every consumer (peer gossip,
        # sync, shard fan-out) treats FarmError as "this peer failed",
        # and a raw OSError would crash them instead.
        with sock:
            try:
                return _roundtrip(sock, payload, where)
            except OSError as error:
                raise FarmError(
                    f"peer {where} dropped the connection "
                    f"mid-request ({error})") from None

    def ping(self):
        return self._request({"cmd": "ping"})

    def peers(self):
        return self._request({"cmd": "peers"})

    def store_manifest(self, store):
        return self._request({"cmd": "store-manifest", "store": store})

    def store_entry(self, store, entry_hash):
        return self._request({"cmd": "store-entry", "store": store,
                              "hash": entry_hash})

    def store_push(self, store, entry, data, config=None):
        return self._request({"cmd": "store-push", "store": store,
                              "entry": entry, "data": data,
                              "config": config})

    def store_merge_coverage(self, store, coverage, config=None):
        return self._request({"cmd": "store-merge-coverage",
                              "store": store, "coverage": coverage,
                              "config": config})

    def run_shard(self, request):
        return self._request({"cmd": "run-shard", **request})
