"""Benchmark fixtures.

Benchmarks run the experiment harness at smoke scale.  The session-scoped
``warm_caches`` fixture trains (or loads) all 15 zoo models up front so
the timed region measures the experiment itself, not one-time training.

Each benchmark prints the reproduced table, so the benchmark log doubles
as the paper-table output (tee it to bench_output.txt).
"""

from __future__ import annotations

import pytest

from repro.datasets import dataset_names, load_dataset
from repro.models import get_trio

SCALE = "smoke"
SEED = 0


@pytest.fixture(scope="session", autouse=True)
def warm_caches():
    for name in dataset_names():
        dataset = load_dataset(name, scale=SCALE, seed=SEED)
        get_trio(name, scale=SCALE, seed=SEED, dataset=dataset)


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer and
    print its rendered table."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.render())
    return result
