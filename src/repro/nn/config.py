"""Architecture (de)serialization: rebuild a network without its builder.

``network_to_config`` captures the full layer stack as plain JSON-able
data; ``network_from_config`` reconstructs it.  Together with
``Network.state_dict`` this gives self-contained model files — a model
trained anywhere can be archived and differentially tested elsewhere
without importing its original builder code.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import ConfigError
from repro.nn import dtypes
from repro.nn.activations import get_activation
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.layer import Layer
from repro.nn.network import Network
from repro.nn.norm import BatchNorm
from repro.nn.pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.reshape import Flatten
from repro.nn.residual import Residual
from repro.nn.scale import FixedScale

__all__ = ["layer_to_config", "layer_from_config", "network_to_config",
           "network_from_config", "network_to_payload",
           "network_from_payload", "save_network", "load_network"]


def layer_to_config(layer):
    """Serialize one layer to a plain dict (weights excluded)."""
    if isinstance(layer, Dense):
        return {"type": "dense", "name": layer.name,
                "in_features": layer.in_features,
                "out_features": layer.out_features,
                "activation": layer.activation.name}
    if isinstance(layer, Conv2D):
        return {"type": "conv2d", "name": layer.name,
                "in_channels": layer.in_channels,
                "out_channels": layer.out_channels,
                "kernel_size": list(layer.kernel_size),
                "stride": layer.stride, "padding": layer.padding,
                "activation": layer.activation.name}
    if isinstance(layer, MaxPool2D):
        return {"type": "maxpool2d", "name": layer.name,
                "pool_size": list(layer.pool_size)}
    if isinstance(layer, AvgPool2D):
        return {"type": "avgpool2d", "name": layer.name,
                "pool_size": list(layer.pool_size)}
    if isinstance(layer, GlobalAvgPool2D):
        return {"type": "globalavgpool2d", "name": layer.name}
    if isinstance(layer, Flatten):
        return {"type": "flatten", "name": layer.name}
    if isinstance(layer, Dropout):
        return {"type": "dropout", "name": layer.name, "rate": layer.rate}
    if isinstance(layer, BatchNorm):
        return {"type": "batchnorm", "name": layer.name,
                "num_features": layer.num_features,
                "momentum": layer.momentum, "eps": layer.eps}
    if isinstance(layer, FixedScale):
        return {"type": "fixedscale", "name": layer.name,
                "mean": layer.mean.tolist(), "std": layer.std.tolist()}
    if isinstance(layer, Residual):
        return {"type": "residual", "name": layer.name,
                "body": [layer_to_config(l) for l in layer.body],
                "shortcut": [layer_to_config(l) for l in layer.shortcut]}
    raise ConfigError(f"cannot serialize layer type {type(layer).__name__}")


def layer_from_config(config):
    """Rebuild one layer from :func:`layer_to_config` output."""
    kind = config.get("type")
    name = config.get("name")
    if kind == "dense":
        return Dense(config["in_features"], config["out_features"],
                     activation=config["activation"], name=name)
    if kind == "conv2d":
        return Conv2D(config["in_channels"], config["out_channels"],
                      tuple(config["kernel_size"]), stride=config["stride"],
                      padding=config["padding"],
                      activation=config["activation"], name=name)
    if kind == "maxpool2d":
        return MaxPool2D(tuple(config["pool_size"]), name=name)
    if kind == "avgpool2d":
        return AvgPool2D(tuple(config["pool_size"]), name=name)
    if kind == "globalavgpool2d":
        return GlobalAvgPool2D(name=name)
    if kind == "flatten":
        return Flatten(name=name)
    if kind == "dropout":
        return Dropout(config["rate"], name=name)
    if kind == "batchnorm":
        return BatchNorm(config["num_features"], momentum=config["momentum"],
                         eps=config["eps"], name=name)
    if kind == "fixedscale":
        return FixedScale(np.asarray(config["mean"]),
                          np.asarray(config["std"]), name=name)
    if kind == "residual":
        return Residual([layer_from_config(c) for c in config["body"]],
                        shortcut=[layer_from_config(c)
                                  for c in config["shortcut"]],
                        name=name)
    raise ConfigError(f"unknown layer type {kind!r} in config")


def network_to_config(network):
    """Serialize a network's architecture to a plain dict.

    Records the storage dtype so the round-trip reproduces the model
    exactly (campaign shard workers and corpus-store fingerprints depend
    on bit-identical rebuilds).
    """
    return {
        "name": network.name,
        "input_shape": list(network.input_shape),
        "dtype": network.dtype.name,
        "layers": [layer_to_config(l) for l in network.layers],
    }


def network_from_config(config, dtype=None):
    """Rebuild a network (fresh random weights) from its config.

    ``dtype`` overrides the recorded dtype; legacy configs without a
    recorded dtype rebuild at float64 (everything was float64 before the
    dtype policy existed).
    """
    dtype = dtypes.resolve(dtype or config.get("dtype", "float64"))
    with dtypes.default_dtype(dtype):
        layers = [layer_from_config(c) for c in config["layers"]]
        return Network(layers, tuple(config["input_shape"]),
                       name=config.get("name", "network"))


def network_to_payload(network):
    """Architecture + trained weights as one picklable in-memory dict.

    This is the worker-shipping path of campaign runs: the payload
    crosses a process boundary (``multiprocessing``) and is rebuilt with
    :func:`network_from_payload` — no disk file, no builder import, and
    no retraining on the other side.  Weights keep their storage dtype,
    so the rebuilt network computes bit-identical outputs.
    """
    return {"config": network_to_config(network),
            "state": network.state_dict()}


def network_from_payload(payload, dtype=None):
    """Reconstruct a trained network from :func:`network_to_payload`.

    Passing ``dtype`` converts the rebuilt network (e.g. a float64-trained
    model re-materialized at float32 for generation).
    """
    from repro.nn.instrumentation import record_deserialization
    network = network_from_config(payload["config"], dtype=dtype)
    network.load_state_dict(payload["state"])
    record_deserialization(network.name)
    return network


def save_network(network, path):
    """Write architecture + weights as one self-contained ``.npz``.

    The config travels as a JSON string inside the archive, so a single
    file reconstructs the model with :func:`load_network`.
    """
    state = network.state_dict()
    state["__config__"] = np.frombuffer(
        json.dumps(network_to_config(network)).encode("utf-8"),
        dtype=np.uint8)
    np.savez_compressed(path, **state)


def load_network(path):
    """Reconstruct a network saved by :func:`save_network`."""
    with np.load(path) as data:
        if "__config__" not in data.files:
            raise ConfigError(
                f"{path} has no architecture config; was it saved with "
                "save_network()?")
        config = json.loads(bytes(data["__config__"]).decode("utf-8"))
        network = network_from_config(config)
        network.load_state_dict(
            {k: data[k] for k in data.files if k != "__config__"})
    return network
