"""Test-suite minimization and mutation reports."""

import numpy as np
import pytest

from repro.analysis import minimize_suite, mutation_report
from repro.coverage import coverage_of_inputs
from repro.errors import ConfigError


class TestMinimize:
    def test_preserves_joint_coverage(self, mnist_trio, mnist_smoke):
        inputs, _ = mnist_smoke.sample_seeds(20, np.random.default_rng(0))
        chosen, covered = minimize_suite(mnist_trio, inputs, threshold=0.5)
        assert 0 < chosen.size <= 20
        subset = inputs[chosen]
        for net in mnist_trio:
            full = coverage_of_inputs(net, inputs, threshold=0.5)
            mini = coverage_of_inputs(net, subset, threshold=0.5)
            assert mini == pytest.approx(full)

    def test_duplicates_are_dropped(self, lenet5, mnist_smoke):
        one, _ = mnist_smoke.sample_seeds(1, np.random.default_rng(1))
        dupes = np.repeat(one, 10, axis=0)
        chosen, _ = minimize_suite([lenet5], dupes, threshold=0.25)
        assert chosen.size == 1

    def test_greedy_order_is_by_marginal_gain(self, lenet5, mnist_smoke):
        inputs, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(2))
        chosen, _ = minimize_suite([lenet5], inputs, threshold=0.5)
        # First chosen test alone must cover at least as much as any
        # other single test.
        best_alone = max(
            coverage_of_inputs(lenet5, inputs[i:i + 1], threshold=0.5)
            for i in range(inputs.shape[0]))
        first = coverage_of_inputs(lenet5, inputs[chosen[:1]],
                                   threshold=0.5)
        assert first == pytest.approx(best_alone)

    def test_empty_and_validation(self, lenet5):
        chosen, covered = minimize_suite([lenet5], np.empty((0, 1, 28, 28)))
        assert chosen.size == 0 and covered == 0.0
        with pytest.raises(ConfigError):
            minimize_suite([], np.zeros((2, 1, 28, 28)))


class TestMutationReport:
    def test_orders_by_magnitude(self):
        before = np.array([0.0, 5.0, 1.0])
        after = np.array([0.0, 25.0, 2.0])
        report = mutation_report(before, after, ["a", "b", "c"], top_k=3)
        assert [m.name for m in report] == ["b", "c"]
        assert report[0].before == 5.0 and report[0].after == 25.0
        assert report[0].delta == 20.0

    def test_unchanged_features_excluded(self):
        x = np.array([1.0, 2.0])
        assert mutation_report(x, x, ["a", "b"]) == []

    def test_top_k_limits(self):
        before = np.zeros(5)
        after = np.arange(5, dtype=float)
        report = mutation_report(before, after, list("abcde"), top_k=2)
        assert len(report) == 2
        assert report[0].name == "e"

    def test_validation(self):
        with pytest.raises(ConfigError):
            mutation_report(np.zeros(3), np.zeros(4), ["a"] * 3)
        with pytest.raises(ConfigError):
            mutation_report(np.zeros(3), np.zeros(3), ["a"])
        with pytest.raises(ConfigError):
            mutation_report(np.zeros(2), np.zeros(2), ["a", "b"], top_k=0)
