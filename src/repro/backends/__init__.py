"""Pluggable compute backends (see docs/PERFORMANCE.md).

The generation stack talks to models through the
:class:`~repro.backends.base.ComputeBackend` contract.  This package
holds the registry: ``"numpy"`` (the in-tree differentiable networks —
the reference implementation) and ``"onnx"`` (optional, inference-only,
gated on ``onnxruntime`` being importable).
"""

from __future__ import annotations

from repro.backends.base import ComputeBackend
from repro.backends.numpy_backend import NumpyBackend, as_network
from repro.backends.onnx_backend import OnnxBackend, have_onnxruntime
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = ["ComputeBackend", "NumpyBackend", "OnnxBackend", "BACKENDS",
           "backend_names", "make_backend", "unwrap_network", "as_network",
           "have_onnxruntime"]

#: Registry of constructable backends, keyed by CLI-facing name.
BACKENDS = {
    "numpy": NumpyBackend,
    "onnx": OnnxBackend,
}


def backend_names():
    """Registered backend names, CLI-choice ordered."""
    return sorted(BACKENDS)


def make_backend(kind, model, **kwargs):
    """Construct a registered backend around ``model``.

    ``model`` is whatever the backend adapts: a
    :class:`~repro.nn.network.Network` or payload dict for ``"numpy"``,
    a ``.onnx`` path for ``"onnx"``.  A model that is already a
    :class:`ComputeBackend` passes through unchanged (``kind`` must
    agree).
    """
    if isinstance(model, ComputeBackend):
        if model.kind != kind:
            raise ConfigError(
                f"model is already a {model.kind!r} backend; "
                f"cannot re-adapt it as {kind!r}")
        return model
    try:
        cls = BACKENDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown backend {kind!r}; known: {backend_names()}") from None
    return cls(model, **kwargs)


def unwrap_network(model):
    """The raw :class:`~repro.nn.network.Network` behind ``model``.

    Engines, trackers, and tapes key on the network object itself, so
    the seam normalizes here: networks pass through, numpy backends
    unwrap, anything else (inference-only backends included) refuses
    with the reason.
    """
    if isinstance(model, Network):
        return model
    if isinstance(model, NumpyBackend):
        return model.network
    if isinstance(model, ComputeBackend):
        raise ConfigError(
            f"backend {model.kind!r} wraps no differentiable network; "
            "gradient ascent needs the numpy backend")
    raise ConfigError(
        f"cannot unwrap {type(model).__name__} into a Network")
