"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layer import Layer
from repro.utils.rng import as_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Randomly zero activations during training; identity at inference.

    Uses inverted scaling (surviving units divided by the keep
    probability) so inference needs no rescaling — which matters here
    because DeepXplore runs entirely in inference mode and must see the
    same function the deployed model computes.
    """

    def __init__(self, rate, rng=None, name=None):
        super().__init__(name=name)
        rate = float(rate)
        if not 0.0 <= rate < 1.0:
            raise ConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_rng(rng)

    def forward(self, x, training=False, workspace=None):
        if not training or self.rate == 0.0:
            return x, None
        keep = 1.0 - self.rate
        # The rng emits float64; cast the mask so x's dtype is preserved
        # (a no-op copy=False passthrough when x is float64 already).
        mask = ((self._rng.random(x.shape) < keep) / keep).astype(
            x.dtype, copy=False)
        return x * mask, mask

    def backward(self, ctx, grad_out, accumulate=True):
        if ctx is None:
            return grad_out
        return grad_out * ctx

    def output_shape(self, input_shape):
        return tuple(input_shape)
