"""Farm throughput: jobs/second through the daemon, cold vs warm.

Boots an in-process :class:`~repro.farm.FarmDaemon` (one worker thread,
the deterministic warm path) and pushes generate jobs through it.  The
first job is *cold*: the worker thread's thread-local model cache is
empty, so the job pays model-payload deserialization.  The following
jobs are *warm*: same thread, cached models, pure campaign work.  Both
phases land in ``BENCH_fuzz.json`` with ``jobs_per_sec`` and
``seeds_per_sec`` so the farm's dispatch overhead has a perf trajectory
alongside the raw fuzz loop's.
"""

import time

from benchmarks.bench_records import record_bench
from benchmarks.conftest import SCALE, SEED
from repro.datasets import load_dataset
from repro.farm import FarmDaemon
from repro.models import get_trio

WARM_JOBS = 3
SEEDS_PER_JOB = 16


def _wait_done(daemon, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = daemon.status(job_id)
        if record["status"] == "done":
            return record
        if record["status"] == "failed":
            raise AssertionError(f"farm job failed: {record['error']}")
        time.sleep(0.02)
    raise AssertionError(f"farm job {job_id} timed out")


def test_farm_throughput(benchmark, tmp_path):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    daemon = FarmDaemon(
        str(tmp_path / "farm"), workers=1, capacity=WARM_JOBS + 2,
        model_source=lambda *_: (models, dataset)).start()

    def spec(index):
        return {"store": f"bench-{index}", "kind": "generate",
                "seeds": SEEDS_PER_JOB, "shard_size": 8, "seed": index}

    def run_both():
        cold_start = time.perf_counter()
        cold = _wait_done(daemon, daemon.submit(spec(0)).job_id)
        cold_elapsed = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        jobs = [daemon.submit(spec(i + 1)) for i in range(WARM_JOBS)]
        warm = [_wait_done(daemon, job.job_id) for job in jobs]
        warm_elapsed = time.perf_counter() - warm_start
        return (cold, cold_elapsed), (warm, warm_elapsed)

    try:
        (cold, cold_s), (warm, warm_s) = benchmark.pedantic(
            run_both, rounds=1, iterations=1)
    finally:
        assert daemon.drain(timeout=60)

    assert cold["result"]["seeds_processed"] == SEEDS_PER_JOB
    warm_seeds = sum(r["result"]["seeds_processed"] for r in warm)
    assert warm_seeds == WARM_JOBS * SEEDS_PER_JOB

    record_bench(cold_s, label="cold", jobs=1,
                 jobs_per_sec=1.0 / max(cold_s, 1e-9),
                 seeds_per_sec=SEEDS_PER_JOB / max(cold_s, 1e-9))
    record_bench(warm_s, label="warm", jobs=WARM_JOBS,
                 jobs_per_sec=WARM_JOBS / max(warm_s, 1e-9),
                 seeds_per_sec=warm_seeds / max(warm_s, 1e-9))

    print()
    print(f"cold: 1 job ({SEEDS_PER_JOB} seeds) in {cold_s:.2f}s "
          f"({1.0 / max(cold_s, 1e-9):.2f} jobs/s)")
    print(f"warm: {WARM_JOBS} jobs ({warm_seeds} seeds) in {warm_s:.2f}s "
          f"({WARM_JOBS / max(warm_s, 1e-9):.2f} jobs/s, "
          f"{warm_seeds / max(warm_s, 1e-9):.1f} seeds/s)")
    # The warm path must not be slower per job than the cold one — the
    # whole point of the thread-resident model cache.
    assert warm_s / WARM_JOBS <= cold_s * 1.5
