"""Ablation: vanilla gradient ascent vs momentum (heavy-ball) ascent.

Table 9 of the paper notes large step sizes oscillate; momentum is the
standard cure.  Measures differences found and mean iterations per
difference on MNIST at the paper's step size.
"""

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import (DeepXplore, LightingConstraint, MomentumRule,
                        PAPER_HYPERPARAMS)
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.utils.tables import render_table


@pytest.mark.parametrize("beta", [0.0, 0.5, 0.9])
def test_ablation_momentum(benchmark, beta):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(20, np.random.default_rng(31))
    hp = PAPER_HYPERPARAMS["mnist"]

    def run():
        engine = DeepXplore(models, hp, LightingConstraint(), rng=37,
                            rule=MomentumRule(beta))
        return engine.run(seeds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ascent = [t.iterations for t in result.tests if t.iterations > 0]
    mean_iters = float(np.mean(ascent)) if ascent else float("nan")
    print()
    print(render_table(
        ["beta", "# diffs", "mean iterations"],
        [[beta, result.difference_count,
          "-" if np.isnan(mean_iters) else round(mean_iters, 1)]],
        title="[ablation] momentum ascent"))
