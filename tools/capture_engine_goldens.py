#!/usr/bin/env python
"""Regenerate ``tests/data/golden_engines.json``.

The golden file pins the exact behaviour of the generation engines —
test inputs (content hashes), iteration counts, predictions, and final
coverage masks — for a fixed matrix of (rule, driver, dataset)
configurations under fixed RNG.  ``tests/core/test_engine.py`` replays
the matrix against the unified :class:`~repro.core.engine.AscentEngine`
and asserts bit-identical results.

The file committed in this repo was captured from the *pre-unification*
engines (the separate ``DeepXplore`` / ``BatchDeepXplore`` /
``MomentumDeepXplore`` loop bodies), so the pins prove the refactor
changed nothing.  Re-run this script only when the pinned behaviour is
*meant* to change (it overwrites the goldens with current behaviour):

    PYTHONPATH=src python tools/capture_engine_goldens.py

All capture runs disable the engine's exhausted-tape folding
(``absorb_exhausted=False`` where supported) because the pre-refactor
engines never folded exhausted seeds' tapes into coverage.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.core import PAPER_HYPERPARAMS, LightingConstraint, \
    constraint_for_dataset
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.nn.instrumentation import PassCounter

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "tests", "data",
                           "golden_engines.json")

#: The pinned matrix.  Each entry: (config name, dataset, task, driver,
#: rule spec, seed-draw rng, engine rng, seed count).
CONFIGS = [
    ("vanilla-sequential-mnist", "mnist", "classification", "sequential",
     ("vanilla", None), 3, 5, 10),
    ("vanilla-batch-mnist", "mnist", "classification", "batch",
     ("vanilla", None), 3, 5, 10),
    ("momentum-sequential-mnist", "mnist", "classification", "sequential",
     ("momentum", 0.8), 3, 5, 10),
    ("vanilla-batch-driving", "driving", "regression", "batch",
     ("vanilla", None), 3, 5, 8),
    # Rule-library rows (captured from the unified engine when each rule
    # landed; there is no pre-unification counterpart for these).
    ("nesterov-batch-mnist", "mnist", "classification", "batch",
     ("nesterov", 0.9), 3, 5, 10),
    ("adam-batch-mnist", "mnist", "classification", "batch",
     ("adam", None), 3, 5, 10),
    ("deepfool-batch-mnist", "mnist", "classification", "batch",
     ("deepfool", None), 3, 5, 10),
    ("adaptive-batch-mnist", "mnist", "classification", "batch",
     ("adaptive", None), 3, 5, 10),
]


def assert_matches_golden(name, actual, golden):
    """Field-by-field golden comparison that fails loudly.

    A mismatch names the rule configuration and the differing field
    (and, for per-test rows, which test), so a regression reads as
    "deepfool-batch-mnist: tests[3].iterations changed" instead of a
    bare nested-dict diff.
    """
    def fail(field, expected, got):
        raise AssertionError(
            f"golden mismatch for config {name!r}, field {field}:\n"
            f"  expected: {expected!r}\n"
            f"  actual:   {got!r}")

    for field in sorted(set(golden) | set(actual)):
        expected, got = golden.get(field), actual.get(field)
        if expected == got:
            continue
        if field == "tests" and isinstance(expected, list) \
                and isinstance(got, list):
            if len(expected) != len(got):
                fail("len(tests)", len(expected), len(got))
            for i, (erow, grow) in enumerate(zip(expected, got)):
                for key in sorted(set(erow) | set(grow)):
                    if erow.get(key) != grow.get(key):
                        fail(f"tests[{i}].{key}", erow.get(key),
                             grow.get(key))
        if field == "coverage" and isinstance(expected, dict) \
                and isinstance(got, dict):
            for model in sorted(set(expected) | set(got)):
                erow, grow = expected.get(model, {}), got.get(model, {})
                for key in sorted(set(erow) | set(grow)):
                    if erow.get(key) != grow.get(key):
                        fail(f"coverage[{model!r}].{key}", erow.get(key),
                             grow.get(key))
        fail(field, expected, got)


def _make_engine(models, hp, constraint, task, rng, driver, rule_spec):
    """Build the engine under capture.

    Against the seed tree this resolves to the legacy classes; against
    the unified tree it resolves to the AscentEngine facades — which is
    exactly the point: the same script validates both.
    """
    kind, beta = rule_spec
    try:
        from repro.core.engine import AscentEngine, make_rule
        kwargs = {"rule": make_rule(kind, beta=beta),
                  "absorb_exhausted": False}
        if driver == "sequential":
            from repro.core import DeepXplore
            return DeepXplore(models, hp, constraint, task=task, rng=rng,
                              **kwargs)
        return AscentEngine(models, hp, constraint, task=task, rng=rng,
                            **kwargs)
    except ImportError:
        if kind == "momentum":
            from repro.extensions import MomentumDeepXplore
            return MomentumDeepXplore(models, hp, constraint, task=task,
                                      rng=rng, beta=beta)
        if driver == "sequential":
            from repro.core import DeepXplore
            return DeepXplore(models, hp, constraint, task=task, rng=rng)
        from repro.core import BatchDeepXplore
        return BatchDeepXplore(models, hp, constraint, task=task, rng=rng)


def _constraint_for(dataset_name, dataset):
    if dataset_name == "mnist":
        return LightingConstraint()
    return constraint_for_dataset(dataset)


def digest_result(result, trackers):
    """The comparable fingerprint of one engine run."""
    tests = []
    for test in result.tests:
        tests.append({
            "seed_index": int(test.seed_index),
            "iterations": int(test.iterations),
            "x_sha256": hashlib.sha256(
                np.ascontiguousarray(test.x).tobytes()).hexdigest(),
            "predictions": np.asarray(test.predictions).tolist(),
        })
    coverage = {}
    for tracker in trackers:
        mask = tracker.state_dict()["covered"]
        coverage[tracker.network.name] = {
            "covered_count": int(mask.sum()),
            "mask_sha256": hashlib.sha256(
                np.ascontiguousarray(mask).tobytes()).hexdigest(),
        }
    return {
        "tests": tests,
        "seeds_disagreed": int(result.seeds_disagreed),
        "seeds_exhausted": int(result.seeds_exhausted),
        "coverage": coverage,
    }


def capture():
    goldens = {"configs": {}}
    for (name, dataset_name, task, driver, rule_spec, draw_seed,
         engine_rng, n_seeds) in CONFIGS:
        dataset = load_dataset(dataset_name, scale="smoke", seed=0)
        models = get_trio(dataset_name, scale="smoke", seed=0,
                          dataset=dataset)
        seeds, _ = dataset.sample_seeds(n_seeds,
                                        np.random.default_rng(draw_seed))
        hp = PAPER_HYPERPARAMS[dataset_name]
        engine = _make_engine(models, hp, _constraint_for(dataset_name,
                                                          dataset),
                              task, engine_rng, driver, rule_spec)
        with PassCounter() as passes:
            result = engine.run(seeds)
        golden = digest_result(result, engine.trackers)
        golden["forwards"] = int(passes.total_forwards())
        goldens["configs"][name] = golden
        print(f"{name}: {len(result.tests)} tests, "
              f"{result.seeds_exhausted} exhausted, "
              f"{golden['forwards']} forwards")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.normpath(GOLDEN_PATH)}")


if __name__ == "__main__":
    capture()
