"""Scaled-down ResNet for the mini-ImageNet dataset.

Keeps ResNet's defining structure — residual blocks with identity
shortcuts, stage-wise widening, global average pooling head — at a depth
and width trainable in numpy.  As in the paper's Table 1, this is the
widest model of the ImageNet trio.
"""

from __future__ import annotations

from repro.nn import (AvgPool2D, BatchNorm, Conv2D, Dense, GlobalAvgPool2D,
                      Network, Residual)
from repro.utils.rng import as_rng

__all__ = ["build_resnet"]

_INPUT_SHAPE = (3, 32, 32)


def _basic_block(channels, rng, tag):
    """Identity residual block: conv-BN-relu-conv-BN + skip, relu."""
    body = [
        Conv2D(channels, channels, 3, padding=1, rng=rng,
               name=f"{tag}_conv1"),
        Conv2D(channels, channels, 3, padding=1, activation="linear",
               rng=rng, name=f"{tag}_conv2"),
        BatchNorm(channels, name=f"{tag}_bn"),
    ]
    return Residual(body, name=tag)


def build_resnet(rng=None, name="resnet"):
    """Mini ResNet: stem + three residual stages + global-pool head."""
    rng = as_rng(rng)
    layers = [
        Conv2D(3, 16, 3, padding=1, rng=rng, name="stem"),       # 32x32
        _basic_block(16, rng, "stage1_block1"),
        _basic_block(16, rng, "stage1_block2"),
        AvgPool2D(2, name="down1"),                               # 16x16
        Conv2D(16, 32, 3, padding=1, rng=rng, name="widen1"),
        _basic_block(32, rng, "stage2_block1"),
        _basic_block(32, rng, "stage2_block2"),
        AvgPool2D(2, name="down2"),                               # 8x8
        Conv2D(32, 48, 3, padding=1, rng=rng, name="widen2"),
        _basic_block(48, rng, "stage3_block1"),
        GlobalAvgPool2D(name="gap"),
        Dense(48, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)
