"""Synthetic Drebin-style Android malware dataset.

Drebin describes each Android app as a sparse binary vector over 545,333
features in eight categories, split between those extracted from the
*manifest* (requested permissions, hardware features, app components,
intents) and those from *disassembled code* (restricted/suspicious API
calls, used permissions, network addresses).  The constraint DeepXplore
applies (§6.2) depends only on that split: **only manifest features may be
modified and only by adding them (0 -> 1)**, since adding a manifest entry
never removes app functionality.

This generator reproduces the structure at ~1,300 features: a named
vocabulary in the same eight categories, a class-conditional Bernoulli
model with informative features concentrated where the real dataset has
them (SMS permissions, restricted API calls, suspicious intents for
malware), and metadata exposing the manifest mask the constraint needs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, resolve_scale
from repro.utils.rng import as_rng

__all__ = ["generate_drebin", "build_vocabulary", "MANIFEST_CATEGORIES",
           "CODE_CATEGORIES"]

#: Feature categories extracted from AndroidManifest.xml (mutable).
MANIFEST_CATEGORIES = {
    "feature": 40,          # S1 hardware components
    "permission": 180,      # S2 requested permissions
    "activity": 220,        # S3 app components: activities
    "service_receiver": 120,  # S3 app components: services/receivers
    "provider": 60,         # S3 app components: providers
    "intent": 120,          # S4 filtered intents
}

#: Feature categories extracted from disassembled code (immutable).
CODE_CATEGORIES = {
    "api_call": 200,        # S5 restricted API calls
    "real_permission": 80,  # S6 used permissions
    "call": 120,            # S7 suspicious API calls
    "url": 160,             # S8 network addresses
}

_SYLLABLES = ["al", "an", "ar", "ba", "con", "de", "el", "en", "er", "es",
              "in", "la", "le", "ma", "ne", "on", "or", "ra", "re", "ro",
              "sa", "se", "si", "ta", "te", "ti", "to", "tra", "ver", "vi"]

# A sprinkle of real-looking names so rendered tables (paper Table 3) read
# naturally; the rest of the vocabulary is synthesized from syllables.
_SEED_NAMES = {
    "permission": ["SEND_SMS", "RECEIVE_SMS", "READ_CONTACTS", "CALL_PHONE",
                   "INTERNET", "ACCESS_FINE_LOCATION", "READ_PHONE_STATE",
                   "WRITE_EXTERNAL_STORAGE", "RECORD_AUDIO", "CAMERA"],
    "feature": ["bluetooth", "camera", "telephony", "wifi", "nfc",
                "location.gps", "touchscreen", "microphone"],
    "intent": ["BOOT_COMPLETED", "SMS_RECEIVED", "MAIN", "LAUNCHER",
               "PACKAGE_ADDED", "USER_PRESENT"],
    "api_call": ["sendTextMessage", "getDeviceId", "getSubscriberId",
                 "exec", "loadLibrary", "getSimSerialNumber"],
    "call": ["Cipher.getInstance", "DexClassLoader", "Runtime.exec",
             "HttpClient.execute", "TelephonyManager.getLine1Number"],
}


def _synth_word(rng, min_syl=2, max_syl=4):
    n = int(rng.integers(min_syl, max_syl + 1))
    return "".join(_SYLLABLES[int(rng.integers(0, len(_SYLLABLES)))]
                   for _ in range(n))


def build_vocabulary(rng):
    """Return ``(names, manifest_mask)`` for the full feature vocabulary."""
    names = []
    manifest_flags = []
    for categories, is_manifest in ((MANIFEST_CATEGORIES, True),
                                    (CODE_CATEGORIES, False)):
        for category, count in categories.items():
            seeds = _SEED_NAMES.get(category, [])
            for i in range(count):
                if i < len(seeds):
                    token = seeds[i]
                elif category in ("activity", "service_receiver", "provider"):
                    token = "." + _synth_word(rng).capitalize()
                elif category == "url":
                    token = _synth_word(rng) + ".com"
                elif category in ("permission", "intent"):
                    token = _synth_word(rng).upper()
                else:
                    token = _synth_word(rng)
                names.append(f"{category}::{token}")
                manifest_flags.append(is_manifest)
    return names, np.asarray(manifest_flags)


def _class_prevalence(rng, names):
    """Per-feature Bernoulli rates for (benign, malicious) classes."""
    n = len(names)
    base = rng.uniform(0.01, 0.10, size=n)
    benign = base.copy()
    malicious = base.copy()
    # Malware-signature features: suspicious permissions, intents, calls.
    suspicious_tokens = ("SEND_SMS", "RECEIVE_SMS", "BOOT_COMPLETED",
                         "SMS_RECEIVED", "sendTextMessage", "getDeviceId",
                         "getSubscriberId", "exec", "DexClassLoader",
                         "Runtime.exec", "getSimSerialNumber",
                         "READ_PHONE_STATE")
    benign_tokens = ("LAUNCHER", "MAIN", "touchscreen", "INTERNET",
                     "HttpClient.execute", "camera")
    informative = rng.choice(n, size=n // 8, replace=False)
    for idx in informative:
        if rng.random() < 0.5:
            malicious[idx] = rng.uniform(0.35, 0.8)
        else:
            benign[idx] = rng.uniform(0.3, 0.7)
    for i, name in enumerate(names):
        if any(tok in name for tok in suspicious_tokens):
            malicious[i] = rng.uniform(0.55, 0.95)
            benign[i] = rng.uniform(0.01, 0.12)
        elif any(tok in name for tok in benign_tokens):
            benign[i] = rng.uniform(0.6, 0.95)
            malicious[i] = rng.uniform(0.2, 0.6)
    return benign, malicious


_SCALE_SIZES = {
    # (benign_train, malicious_train, benign_test, malicious_test); the
    # real Drebin is heavily imbalanced (123k benign / 5.5k malicious) —
    # kept milder here so tiny models still see enough malware.
    "smoke": (220, 90, 80, 40),
    "small": (1400, 500, 450, 180),
    "full": (6000, 2200, 2000, 800),
}


def generate_drebin(scale="small", seed=0):
    """Generate the synthetic Drebin dataset at a named scale."""
    resolve_scale(scale)
    rng = as_rng(seed)
    names, manifest_mask = build_vocabulary(rng)
    benign_p, malicious_p = _class_prevalence(rng, names)
    b_tr, m_tr, b_te, m_te = _SCALE_SIZES[scale]

    def sample(count, rates):
        x = (rng.random((count, len(names))) < rates).astype(np.float64)
        # Real apps are messy: a few percent of features flip arbitrarily
        # (obfuscation, library reuse), which keeps trained models below
        # perfect accuracy and their margins realistic — the paper's
        # Drebin models sit at 92.66-98.6%, not 100%.
        noise = rng.random(x.shape) < 0.03
        return np.abs(x - noise.astype(np.float64))

    # "Grayware": aggressive adware and repackaged apps sit between the
    # two populations; drawing ~10% of each class from the mixture keeps
    # the decision boundary populated, which is where independently
    # trained models genuinely disagree.
    gray_p = 0.5 * benign_p + 0.5 * malicious_p

    def sample_class(count, rates):
        n_gray = count // 10
        return np.concatenate([sample(count - n_gray, rates),
                               sample(n_gray, gray_p)])

    x_train = np.concatenate([sample_class(b_tr, benign_p),
                              sample_class(m_tr, malicious_p)])
    y_train = np.concatenate([np.zeros(b_tr, int), np.ones(m_tr, int)])
    x_test = np.concatenate([sample_class(b_te, benign_p),
                             sample_class(m_te, malicious_p)])
    y_test = np.concatenate([np.zeros(b_te, int), np.ones(m_te, int)])
    order = rng.permutation(x_train.shape[0])
    x_train, y_train = x_train[order], y_train[order]
    order = rng.permutation(x_test.shape[0])
    x_test, y_test = x_test[order], y_test[order]
    return Dataset(
        name="drebin",
        x_train=x_train, y_train=y_train, x_test=x_test, y_test=y_test,
        task="classification", num_classes=2,
        feature_names=names,
        class_names=["benign", "malicious"],
        metadata={"scale": scale, "seed": seed, "domain": "features",
                  "manifest_mask": manifest_mask},
    )
