"""Hyperparameters of Algorithm 1.

The four knobs the paper studies (§4.2): ``lambda1`` balances suppressing
the chosen DNN's prediction vs. boosting the others'; ``lambda2`` balances
differential behaviour vs. neuron coverage; ``step`` is the gradient-ascent
step size ``s``; ``threshold`` is the neuron-activation threshold ``t``.

Note on step sizes: the paper's image experiments use ``s = 10`` on pixel
values in ``[0, 255]``; our images live in ``[0, 1]``, so the equivalent
default is ``10 / 255``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["Hyperparams", "PAPER_HYPERPARAMS"]


@dataclass(frozen=True)
class Hyperparams:
    """Hyperparameters for one DeepXplore run (paper Algorithm 1)."""

    lambda1: float = 1.0
    lambda2: float = 0.1
    step: float = 10.0 / 255.0
    threshold: float = 0.0
    max_iterations: int = 30

    def __post_init__(self):
        if self.lambda1 < 0 or self.lambda2 < 0:
            raise ConfigError("lambda1/lambda2 must be non-negative")
        if self.step <= 0:
            raise ConfigError(f"step must be positive, got {self.step}")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")

    def with_(self, **changes):
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)


#: Per-dataset hyperparameters from the paper's Table 2, with image step
#: sizes rescaled from [0, 255] to [0, 1] pixels.  Drebin's step is "N/A"
#: in the paper because its constraint sets bits directly.
PAPER_HYPERPARAMS = {
    "mnist": Hyperparams(lambda1=1.0, lambda2=0.1, step=10.0 / 255.0,
                         threshold=0.0),
    "imagenet": Hyperparams(lambda1=1.0, lambda2=0.1, step=10.0 / 255.0,
                            threshold=0.0),
    "driving": Hyperparams(lambda1=1.0, lambda2=0.1, step=10.0 / 255.0,
                           threshold=0.0),
    # The paper's s=0.1 applies to standardized PDF features; our models
    # take *raw counts*, so the equivalent step is a few counts per
    # iteration (updates are rounded to whole counts by the constraint).
    "pdf": Hyperparams(lambda1=2.0, lambda2=0.1, step=5.0, threshold=0.0,
                       max_iterations=60),
    "drebin": Hyperparams(lambda1=1.0, lambda2=0.5, step=1.0, threshold=0.0,
                          max_iterations=60),
}
