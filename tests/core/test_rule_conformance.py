"""The rule-conformance harness: one parametrized suite every ascent
rule must pass.

``RULE_FACTORIES`` below mirrors the rule registry
(:data:`repro.core.ASCENT_RULES`) — a meta-test enforces that every
registered rule has a factory here, so a future rule cannot land
without joining the harness.  The laws (documented in
docs/ARCHITECTURE.md):

1. **Compaction** — per-seed state slices bit-identically under
   retire-and-compact: a seed's update stream in a batch where *other*
   seeds retire at staggered iterations equals its solo stream,
   bit-for-bit.
2. **Identity** — ``identity()`` round-trips through JSON and
   :func:`~repro.core.rule_from_identity`.
3. **State round-trip** — ``state_dict()`` survives JSON and
   ``load_state_dict`` mid-ascent, continuing bit-identically.
4. **Clone** — ``clone()`` gives independent state and never carries a
   bound :class:`~repro.core.AscentContext`.
5. **Worker invariance** — float64 campaigns are bit-identical across
   ``workers`` in {1, 2} (kill/resume per rule is pinned in
   ``tests/corpus/test_session_resume.py``).
6. **Coverage folding** — an exhausted seed folds its final tape into
   coverage the same way under every driver, and not at all in
   paper-exact mode.

Context-driven rules (DeepFool) are exercised against fake tapes whose
backward is a broadcast-multiply + per-row sum — bit-reproducible
across batch sizes by construction — so the compaction law is checked
on the rule's own arithmetic, not on BLAS blocking behaviour.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (ASCENT_RULES, AdamRule, AdaptiveStepRule,
                        AscentContext, AscentEngine, Campaign, Constraint,
                        DeepFoolRule, DeepXplore, LightingConstraint,
                        MomentumRule, NesterovRule, PAPER_HYPERPARAMS,
                        VanillaRule, rule_from_identity)
from repro.errors import ConfigError

#: One representative (non-default where possible) instance per
#: registered rule.  Every harness test parametrizes over this table.
RULE_FACTORIES = {
    "vanilla": lambda: VanillaRule(),
    "momentum": lambda: MomentumRule(0.8),
    "nesterov": lambda: NesterovRule(0.8),
    "adam": lambda: AdamRule(beta1=0.9, beta2=0.99, eps=1e-8),
    "deepfool": lambda: DeepFoolRule(overshoot=0.05),
    "adaptive": lambda: AdaptiveStepRule(MomentumRule(0.7), gamma=0.5,
                                         max_scale=4.0),
}

RULE_NAMES = sorted(RULE_FACTORIES)

#: Per-seed step scales used wherever a rule accepts them (non-uniform
#: on purpose: uniform scales cannot catch mis-sliced scale rows).
SCALES = {i: 0.5 + 0.25 * i for i in range(16)}

X_SHAPE = (2, 3)      # per-seed input shape for the synthetic drives
N_CLASSES = 4
N_MODELS = 2


def test_every_registered_rule_is_harnessed():
    """A rule added to the registry must join this harness."""
    assert sorted(ASCENT_RULES) == RULE_NAMES


# -- synthetic per-seed world -------------------------------------------------
# Everything below is a pure function of (seed_id, iteration), never of
# the batch it runs in — which is exactly what the compaction law needs
# as its ground truth.

def _seed_x(seed_id):
    rng = np.random.default_rng(500 + seed_id)
    return rng.normal(size=X_SHAPE)


def _seed_grad(seed_id, iteration):
    rng = np.random.default_rng(1000 + 97 * seed_id + iteration)
    return rng.normal(size=X_SHAPE)


def _seed_outputs(seed_id, iteration, model):
    rng = np.random.default_rng(2000 + 89 * seed_id + 13 * iteration
                                + model)
    return rng.normal(size=(N_CLASSES,))


def _seed_class_grads(seed_id, iteration, model):
    rng = np.random.default_rng(3000 + 83 * seed_id + 17 * iteration
                                + model)
    return rng.normal(size=(N_CLASSES,) + X_SHAPE)


class FakeTape:
    """Stands in for :class:`repro.nn.tape.ForwardPass` in rule drives.

    ``gradient_of_output`` contracts the per-sample seed matrix against
    stored per-class gradients with a broadcast multiply and a per-row
    sum — each row's result depends only on that row, so batch
    composition cannot perturb any seed's arithmetic.
    """

    def __init__(self, outs, grads):
        self._outs = outs          # (batch, classes)
        self._grads = grads        # (batch, classes, *X_SHAPE)

    @property
    def batch_size(self):
        return self._outs.shape[0]

    @property
    def dtype(self):
        return self._outs.dtype

    def outputs(self):
        return self._outs

    def gradient_of_output(self, seed):
        seed = np.broadcast_to(np.asarray(seed, dtype=self.dtype),
                               self._outs.shape)
        extra = (1,) * len(X_SHAPE)
        return (seed.reshape(seed.shape + extra) * self._grads).sum(axis=1)


def _constrain(grad, x):
    """A nontrivial row-wise stand-in for a domain constraint."""
    out = grad.copy()
    out[:, 0, 0] = 0.0
    return out


def _make_context(active_ids, x, iteration, step=0.1):
    n = len(active_ids)
    tapes = []
    for model in range(N_MODELS):
        outs = np.stack([_seed_outputs(i, iteration, model)
                         for i in active_ids])
        grads = np.stack([_seed_class_grads(i, iteration, model)
                          for i in active_ids])
        tapes.append(FakeTape(outs, grads))
    st = {
        "tapes": tapes,
        "rows": np.arange(n),
        "targets": np.array([i % N_MODELS for i in active_ids]),
        "seed_classes": np.array([i % N_CLASSES for i in active_ids]),
        "x": x,
    }
    return AscentContext(st, step, _constrain, "classification")


def _drive(rule, ids, retire_at=None, iterations=6, scales=None,
           record=None):
    """Run ``rule`` over the synthetic world like ``run_ascent`` would.

    ``retire_at[i] = t`` retires seed ``i`` after its ``t``-th update
    (the compact happens exactly where the engine compacts: between the
    update and the next iteration's gradient).  Returns each seed's
    full update stream.
    """
    retire_at = retire_at or {}
    active = list(ids)
    x = np.stack([_seed_x(i) for i in active])
    if rule.accepts_seed_scales:
        rule.set_seed_scales(
            None if scales is None
            else np.array([scales[i] for i in active]))
    rule.reset(x)
    deltas = {i: [] for i in active}
    for iteration in range(1, iterations + 1):
        if not active:
            break
        rule.bind(_make_context(active, x, iteration))
        grad = _constrain(
            np.stack([_seed_grad(i, iteration) for i in active]), x)
        delta = rule.update(grad)
        for pos, i in enumerate(active):
            deltas[i].append(delta[pos].copy())
        x = x + (delta if rule.absolute_step else 0.1 * delta)
        if record is not None:
            record(rule, iteration, x)
        keep = np.array([retire_at.get(i, iterations + 1) > iteration
                         for i in active])
        if not keep.all():
            x = x[keep]
            rule.compact(keep)
            active = [i for i, k in zip(active, keep) if k]
    rule.bind(None)
    return deltas


# -- law 1: compaction --------------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_compaction_matches_solo_runs(name):
    """Surviving seeds' update streams are bit-identical whether their
    batch-mates retire around them or they ascend alone."""
    factory = RULE_FACTORIES[name]
    ids = list(range(5))
    retire_at = {0: 2, 1: 5, 2: 3, 4: 4}     # seed 3 never retires
    staggered = _drive(factory(), ids, retire_at=retire_at,
                       scales=SCALES)
    for i in ids:
        solo = _drive(factory(), [i], retire_at={i: retire_at.get(i, 99)},
                      scales=SCALES)
        assert len(staggered[i]) == len(solo[i]) > 0
        for got, want in zip(staggered[i], solo[i]):
            np.testing.assert_array_equal(
                got, want,
                err_msg=f"{name}: seed {i} diverged under compaction")


@pytest.mark.parametrize("name", RULE_NAMES)
def test_compact_slices_state_rows(name):
    """After a compact, the rule keeps exactly the surviving rows of
    every per-seed state array (shape check on the state dict)."""
    rule = RULE_FACTORIES[name]()
    ids = list(range(4))
    x = np.stack([_seed_x(i) for i in ids])
    if rule.accepts_seed_scales:
        rule.set_seed_scales(np.array([SCALES[i] for i in ids]))
    rule.reset(x)
    rule.bind(_make_context(ids, x, 1))
    rule.update(_constrain(
        np.stack([_seed_grad(i, 1) for i in ids]), x))
    rule.compact(np.array([True, False, True, False]))
    rule.bind(None)
    for key, value in rule.state_dict().items():
        if isinstance(value, list) and value \
                and not isinstance(value[0], (int, float)):
            assert len(value) == 2, \
                f"{name}: state {key!r} did not compact to 2 rows"


# -- law 2: identity ----------------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_identity_roundtrips_through_json(name):
    rule = RULE_FACTORIES[name]()
    identity = json.loads(json.dumps(rule.identity()))
    revived = rule_from_identity(identity)
    assert type(revived) is type(rule)
    assert revived.identity() == rule.identity()


def test_identity_rejects_garbage():
    for bad in ("rmsprop", "momentum(beta=high)", "momentum(beta=0.9"):
        with pytest.raises(ConfigError):
            rule_from_identity(bad)


# -- law 3: state round-trip --------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_state_dict_roundtrips_midascent(name):
    """Snapshot a rule mid-ascent through JSON, revive it from its
    identity string, and continue: both continuations are bit-identical.
    """
    factory = RULE_FACTORIES[name]
    ids = [0, 1, 2]

    snapshots = {}

    def record(rule, iteration, x):
        if iteration == 3:
            snapshots["blob"] = json.dumps(
                {"identity": rule.identity(), "state": rule.state_dict()})
            snapshots["x"] = x.copy()

    original = _drive(factory(), ids, iterations=6, scales=SCALES,
                      record=record)
    data = json.loads(snapshots["blob"])
    revived = rule_from_identity(data["identity"])
    revived.load_state_dict(data["state"])
    # Continue the revived rule over iterations 4..6 by hand.
    x = snapshots["x"]
    active = list(ids)
    for iteration in range(4, 7):
        revived.bind(_make_context(active, x, iteration))
        grad = _constrain(
            np.stack([_seed_grad(i, iteration) for i in active]), x)
        delta = revived.update(grad)
        for pos, i in enumerate(active):
            np.testing.assert_array_equal(
                delta[pos], original[i][iteration - 1],
                err_msg=f"{name}: seed {i} diverged after state reload "
                        f"at iteration {iteration}")
        x = x + (delta if revived.absolute_step else 0.1 * delta)
    revived.bind(None)


@pytest.mark.parametrize("name", RULE_NAMES)
def test_state_dict_is_json_serializable(name):
    rule = RULE_FACTORIES[name]()
    ids = [0, 1]
    x = np.stack([_seed_x(i) for i in ids])
    if rule.accepts_seed_scales:
        rule.set_seed_scales(np.array([SCALES[i] for i in ids]))
    rule.reset(x)
    rule.bind(_make_context(ids, x, 1))
    rule.update(_constrain(
        np.stack([_seed_grad(i, 1) for i in ids]), x))
    rule.bind(None)
    json.dumps(rule.state_dict())   # must not raise


# -- law 4: clone -------------------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_clone_is_independent_and_unbound(name):
    rule = RULE_FACTORIES[name]()
    ids = [0, 1]
    x = np.stack([_seed_x(i) for i in ids])
    if rule.accepts_seed_scales:
        rule.set_seed_scales(np.array([SCALES[i] for i in ids]))
    rule.reset(x)
    context = _make_context(ids, x, 1)
    rule.bind(context)
    grad = _constrain(np.stack([_seed_grad(i, 1) for i in ids]), x)
    rule.update(grad)
    before = json.dumps(rule.state_dict())

    clone = rule.clone()
    assert clone._context is None          # context never crosses clones
    assert rule._context is context        # ...and stays on the original
    assert clone.identity() == rule.identity()
    clone.bind(_make_context(ids, x, 2))
    clone.update(_constrain(
        np.stack([_seed_grad(i, 2) for i in ids]), x))
    assert json.dumps(rule.state_dict()) == before, \
        f"{name}: advancing a clone mutated the original's state"
    rule.bind(None)


# -- law 5: worker invariance -------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_campaign_worker_invariance(name, mnist_trio, mnist_smoke):
    """Float64 campaigns are bit-identical across workers in {1, 2} for
    every rule (tests, iteration counts, and coverage masks)."""
    seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(21))
    rule = RULE_FACTORIES[name]()
    scales = (np.array([SCALES[i] for i in range(12)])
              if rule.accepts_seed_scales else None)
    results, states = [], []
    for workers in (1, 2):
        campaign = Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), workers=workers,
                            shard_size=4, seed=9,
                            rule=RULE_FACTORIES[name]())
        results.append(campaign.run(seeds, seed_scales=scales))
        states.append([t.state_dict() for t in campaign.trackers])
    r1, r2 = results
    assert len(r1.tests) == len(r2.tests) > 0
    for ta, tb in zip(r1.tests, r2.tests):
        assert ta.seed_index == tb.seed_index
        assert ta.iterations == tb.iterations
        np.testing.assert_array_equal(
            ta.x, tb.x,
            err_msg=f"{name}: workers=2 diverged from workers=1")
    for sa, sb in zip(*states):
        np.testing.assert_array_equal(sa["covered"], sb["covered"])


# -- law 6: exhausted-seed coverage folding -----------------------------------
class _FrozenConstraint(Constraint):
    """Zeroes every gradient, so no rule can move a seed off its start.

    The rules this harness covers include ones (DeepFool) that resolve
    every natural mnist seed in a single iteration, so there is no seed
    that exhausts under a real constraint for all rules.  Freezing the
    ascent makes exhaustion deterministic for every rule while leaving
    the part under test — how the final tape folds into coverage —
    untouched.
    """

    name = "frozen"

    def apply(self, grad, x):
        return np.zeros_like(grad)


class TestExhaustedFolding:
    """Every rule folds an exhausted seed's final tape into coverage the
    same way under the batch-of-1 facade and the vectorized driver —
    and not at all in paper-exact mode."""

    @staticmethod
    def _agreeing_seed(trio, dataset):
        """A seed the trio agrees on: frozen ascent must exhaust it.

        Rule-independent — under the frozen constraint no rule moves the
        input, so exhaustion depends only on the seed itself.
        """
        seeds, _ = dataset.sample_seeds(30, np.random.default_rng(3))
        hp = PAPER_HYPERPARAMS["mnist"].with_(max_iterations=1)
        for i in range(seeds.shape[0]):
            engine = AscentEngine(trio, hp, _FrozenConstraint(), rng=5)
            if engine.run(seeds[i][None]).seeds_exhausted == 1:
                return seeds[i][None]
        pytest.fail("no seed the trio agrees on in the smoke sample")

    @pytest.mark.parametrize("name", RULE_NAMES)
    def test_folding_matches_across_drivers(self, name, mnist_trio,
                                            mnist_smoke):
        seed = self._agreeing_seed(mnist_trio, mnist_smoke)
        hp = PAPER_HYPERPARAMS["mnist"].with_(max_iterations=2)
        masks = {}
        for driver in (DeepXplore, AscentEngine):
            engine = driver(mnist_trio, hp, _FrozenConstraint(), rng=5,
                            rule=RULE_FACTORIES[name]())
            result = engine.run(seed)
            assert result.seeds_exhausted == 1 and not result.tests
            masks[driver.__name__] = [t.state_dict()["covered"]
                                      for t in engine.trackers]
        folded = 0
        for a, b in zip(masks["DeepXplore"], masks["AscentEngine"]):
            np.testing.assert_array_equal(
                a, b, err_msg=f"{name}: drivers folded different tapes")
            folded += int(np.asarray(a).sum())
        assert folded > 0

        exact = AscentEngine(mnist_trio, hp, _FrozenConstraint(), rng=5,
                             rule=RULE_FACTORIES[name](),
                             absorb_exhausted=False)
        assert exact.run(seed).seeds_exhausted == 1
        assert sum(int(np.asarray(t.state_dict()["covered"]).sum())
                   for t in exact.trackers) == 0


# -- capability flags ---------------------------------------------------------
@pytest.mark.parametrize("name", RULE_NAMES)
def test_seed_scales_refused_unless_accepted(name, mnist_trio,
                                             mnist_smoke):
    rule = RULE_FACTORIES[name]()
    seeds, _ = mnist_smoke.sample_seeds(4, np.random.default_rng(3))
    engine = AscentEngine(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                          LightingConstraint(), rng=5, rule=rule)
    scales = np.full(4, 2.0)
    if rule.accepts_seed_scales:
        engine.run(seeds, seed_scales=scales)
        with pytest.raises(ConfigError):    # one scale per seed, always
            engine.run(seeds, seed_scales=scales[:2])
    else:
        with pytest.raises(ConfigError):
            engine.run(seeds, seed_scales=scales)
        with pytest.raises(ConfigError):
            Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                     LightingConstraint(), seed=9,
                     rule=RULE_FACTORIES[name]()).run(
                         seeds, seed_scales=scales)


@pytest.mark.parametrize("name", RULE_NAMES)
def test_regression_support_is_enforced(name, driving_trio):
    """Rules that declare themselves classification-only are refused at
    engine construction for regression tasks; the rest construct."""
    rule = RULE_FACTORIES[name]()
    if rule.supports_regression:
        AscentEngine(driving_trio, PAPER_HYPERPARAMS["driving"],
                     task="regression", rng=5,
                     rule=RULE_FACTORIES[name]())
    else:
        with pytest.raises(ConfigError):
            AscentEngine(driving_trio, PAPER_HYPERPARAMS["driving"],
                         task="regression", rng=5,
                         rule=RULE_FACTORIES[name]())


def test_adaptive_rejects_bad_compositions():
    with pytest.raises(ConfigError):
        AdaptiveStepRule(AdaptiveStepRule())        # no nesting
    with pytest.raises(ConfigError):
        AdaptiveStepRule(DeepFoolRule())            # absolute-step inner
    with pytest.raises(ConfigError):
        AdaptiveStepRule(gamma=-1.0)
    with pytest.raises(ConfigError):
        AdaptiveStepRule(max_scale=0.5)


def test_adaptive_identity_scale_is_vanilla(mnist_trio, mnist_smoke):
    """adaptive(vanilla) with all-ones scales (or none) is bit-identical
    to the vanilla rule — the decorator adds nothing at scale 1."""
    seeds, _ = mnist_smoke.sample_seeds(8, np.random.default_rng(3))

    def run(rule, **kwargs):
        engine = AscentEngine(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              LightingConstraint(), rng=5, rule=rule)
        return engine.run(seeds, **kwargs)

    vanilla = run(VanillaRule())
    adaptive = run(AdaptiveStepRule(VanillaRule()))
    scaled = run(AdaptiveStepRule(VanillaRule()),
                 seed_scales=np.ones(seeds.shape[0]))
    assert len(vanilla.tests) == len(adaptive.tests) == len(scaled.tests)
    for tv, ta, ts in zip(vanilla.tests, adaptive.tests, scaled.tests):
        np.testing.assert_array_equal(tv.x, ta.x)
        np.testing.assert_array_equal(tv.x, ts.x)


def test_deepfool_needs_context():
    rule = DeepFoolRule()
    with pytest.raises(ConfigError):
        rule.update(np.zeros((2, 2, 2)))


def test_scales_from_energy_mapping():
    rule = AdaptiveStepRule(gamma=0.5, max_scale=4.0)
    scales = rule.scales_from_energy([1.0, 4.0, 0.25, 1e-9])
    assert scales[0] == 1.0          # fresh seed: base step exactly
    assert scales[1] == 0.5          # hot seed steps more carefully
    assert scales[2] == 2.0          # decayed seed escalates
    assert scales[3] == 4.0          # floor clamps at max_scale
