"""Layer protocol for the numpy NN framework.

A :class:`Layer` caches whatever it needs during :meth:`forward` so that a
subsequent :meth:`backward` can compute gradients.  The framework is
deliberately *define-by-run over a fixed sequence*: DeepXplore only needs
sequential (optionally residual) models, whole-layer activation recording,
and gradients of arbitrary internal neurons with respect to the input —
all of which a layer list supports without a general autograd graph.

Neuron semantics (used by :mod:`repro.coverage`): layers advertise how many
*neurons* they expose via :meth:`neuron_count` and map a raw layer output to
per-neuron scalars via :meth:`neuron_outputs`.  Following the original
DeepXplore implementation, a convolutional feature-map channel is a single
neuron whose output is the spatial mean; a dense unit is one neuron.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base class for all layers."""

    #: whether this layer's outputs participate in neuron coverage
    exposes_neurons = False

    def __init__(self, name=None):
        self.name = name or type(self).__name__.lower()
        self._cache = None

    # -- core protocol -----------------------------------------------------
    def forward(self, x, training=False):
        """Compute the layer output for ``x`` and cache for backward."""
        raise NotImplementedError

    def backward(self, grad_out):
        """Propagate ``grad_out`` to the layer input, accumulating
        parameter gradients along the way."""
        raise NotImplementedError

    def parameters(self):
        """Trainable :class:`~repro.nn.parameter.Parameter` objects."""
        return []

    def buffers(self):
        """Non-trainable state to serialize (e.g. batch-norm running stats).

        Returns a dict mapping buffer name to the array itself; mutating
        the returned arrays in place updates the layer.
        """
        return {}

    def output_shape(self, input_shape):
        """Shape (without batch axis) produced for ``input_shape``."""
        raise NotImplementedError

    # -- neuron bookkeeping --------------------------------------------------
    def neuron_count(self, input_shape):
        """Number of coverage neurons this layer exposes."""
        return 0

    def neuron_outputs(self, output):
        """Map a raw batched ``output`` to shape ``(batch, neuron_count)``.

        Default: flatten feature axes for dense-style outputs; conv layers
        override with a spatial mean per channel.
        """
        return output.reshape(output.shape[0], -1)

    def neuron_seed(self, output_shape, neuron_index):
        """Gradient seed selecting ``neuron_index``'s scalar output.

        Returns an array shaped like one unbatched output whose inner
        product with the layer output equals the neuron's scalar value (as
        defined by :meth:`neuron_outputs`).  Used to start backpropagation
        from an arbitrary hidden neuron.
        """
        seed = np.zeros(output_shape, dtype=np.float64)
        seed.reshape(-1)[neuron_index] = 1.0
        return seed

    # -- misc ---------------------------------------------------------------
    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"
