"""Small timing helper used by the experiment harness."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Measure wall-clock durations, usable as a context manager.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0
    True
    """

    def __init__(self):
        self._start = None
        self.elapsed = 0.0

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def start(self):
        self._start = time.perf_counter()

    def stop(self):
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed
