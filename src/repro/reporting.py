"""Markdown report generation — the machinery behind EXPERIMENTS.md.

``write_report`` runs the requested experiments and renders a markdown
document with, per experiment, the paper's reported result next to ours.
The checked-in EXPERIMENTS.md is a captured run of this module.
"""

from __future__ import annotations

import datetime
import platform

from repro.experiments import EXPERIMENTS
from repro.utils.plots import ascii_plot

__all__ = ["result_to_markdown", "build_report", "write_report"]


def result_to_markdown(result):
    """Render one :class:`ExperimentResult` as a markdown section."""
    lines = [f"## {result.experiment_id}: {result.title}", ""]
    if result.paper_reference:
        lines.append(f"**Paper reports:** {result.paper_reference}")
        lines.append("")
    if result.rows:
        header = "| " + " | ".join(str(h) for h in result.headers) + " |"
        rule = "|" + "|".join("---" for _ in result.headers) + "|"
        lines.extend([header, rule])
        for row in result.rows:
            cells = []
            for cell in row:
                if isinstance(cell, float):
                    cells.append(f"{cell:.4g}")
                else:
                    cells.append(str(cell))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    if result.series:
        lines.append("```")
        lines.append(ascii_plot(result.series, width=56, height=14,
                                title=result.title))
        lines.append("```")
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def build_report(scale="smoke", seed=0, experiment_ids=None, verbose=False):
    """Run experiments and return the full markdown document."""
    chosen = experiment_ids or list(EXPERIMENTS)
    sections = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated {datetime.date.today().isoformat()} at scale "
        f"`{scale}` (seed {seed}) on {platform.machine()} "
        f"{platform.system()}, pure numpy on CPU.",
        "",
        "Absolute numbers are not comparable to the paper's (synthetic "
        "datasets, scaled-down models, no GPU); the *shape* of each "
        "result — orderings, trends, crossovers — is the reproduction "
        "target.  See DESIGN.md for the substitution table.",
        "",
    ]
    for experiment_id in chosen:
        if verbose:
            print(f"running {experiment_id}...", flush=True)
        result = EXPERIMENTS[experiment_id](scale=scale, seed=seed)
        sections.append(result_to_markdown(result))
    return "\n".join(sections)


def write_report(path, scale="smoke", seed=0, experiment_ids=None,
                 verbose=False):
    """Run experiments and write the markdown report to ``path``."""
    document = build_report(scale=scale, seed=seed,
                            experiment_ids=experiment_ids, verbose=verbose)
    with open(path, "w") as fh:
        fh.write(document)
    return path
