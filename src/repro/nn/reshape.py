"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layer import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Collapse all feature axes: (N, ...) -> (N, prod(...))."""

    def forward(self, x, training=False):
        self._cache = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out):
        return grad_out.reshape(self._cache)

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)
