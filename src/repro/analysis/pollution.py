"""Training-data pollution detection (paper §7.3).

Setup: a clean model and a model trained on polluted data (some samples of
``source_class`` mislabelled ``target_class``) are differentially tested.
DeepXplore generates inputs the clean model calls ``source_class`` but the
polluted model calls ``target_class`` — these inputs concentrate exactly
where the pollution warped the boundary.  Searching the polluted training
set for the samples most SSIM-similar to those generated inputs recovers
the polluted samples (95.6% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ssim import ssim
from repro.errors import ConfigError

__all__ = ["PollutionReport", "detect_polluted"]


@dataclass
class PollutionReport:
    """Detection outcome against the known ground truth."""

    flagged: np.ndarray        # indices flagged as polluted
    truth: np.ndarray          # ground-truth polluted indices
    detected: int              # |flagged ∩ truth|
    detection_rate: float      # detected / |truth|
    precision: float           # detected / |flagged|


def detect_polluted(generated_inputs, dataset, truth_indices,
                    suspect_label, flag_count=None):
    """Flag training samples most similar to DeepXplore's generated inputs.

    ``suspect_label`` is the label the pollution *introduced* (the paper's
    digit 1): only training samples carrying that label are candidates.
    ``flag_count`` defaults to the ground-truth pollution size, giving the
    paper's detection-rate framing; pass an explicit budget otherwise.
    """
    generated = np.asarray(generated_inputs, dtype=np.float64)
    if generated.ndim < 3:
        raise ConfigError("generated_inputs must be a batch of images")
    truth = np.asarray(truth_indices)
    candidates = np.flatnonzero(np.asarray(dataset.y_train) == suspect_label)
    if candidates.size == 0:
        raise ConfigError(f"no training samples labelled {suspect_label}")
    if flag_count is None:
        flag_count = truth.size
    # Score each candidate by its best structural match to any generated
    # error-inducing input.
    scores = np.empty(candidates.size)
    for pos, idx in enumerate(candidates):
        sample = dataset.x_train[idx]
        scores[pos] = max(ssim(sample, g) for g in generated)
    ranked = candidates[np.argsort(scores)[::-1]]
    flagged = np.sort(ranked[:flag_count])
    truth_set = set(int(i) for i in truth)
    detected = sum(1 for i in flagged if int(i) in truth_set)
    return PollutionReport(
        flagged=flagged,
        truth=np.sort(truth),
        detected=detected,
        detection_rate=detected / truth.size if truth.size else 0.0,
        precision=detected / flagged.size if flagged.size else 0.0,
    )
