"""Merge laws of the coverage criteria (the campaign's correctness core).

Coverage merging must be a semilattice join: commutative, associative,
idempotent, and equal to one tracker that saw the union of all inputs.
These laws are what make sharded campaigns equivalent to serial runs.
"""

import numpy as np
import pytest

from repro.coverage import (BoundaryCoverage, KMultisectionCoverage,
                            NeuronCoverageTracker, NeuronProfile,
                            TopKNeuronCoverage)
from repro.errors import CoverageError
from repro.nn import Dense, Network


@pytest.fixture
def net():
    rng = np.random.default_rng(0)
    return Network([
        Dense(4, 6, rng=rng, name="h1"),
        Dense(6, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(4,), name="mergenet")


@pytest.fixture
def batches(rng):
    return [rng.random((5, 4)) for _ in range(3)]


def _tracker_fed(net, inputs, threshold=0.5):
    tracker = NeuronCoverageTracker(net, threshold=threshold)
    for x in inputs:
        tracker.update(x)
    return tracker


def test_merge_equals_union_of_inputs(net, batches):
    """N trackers fed one batch each, merged == one tracker fed all."""
    parts = [_tracker_fed(net, [x]) for x in batches]
    merged = NeuronCoverageTracker(net, threshold=0.5)
    for part in parts:
        merged.merge(part)
    whole = _tracker_fed(net, batches)
    np.testing.assert_array_equal(merged.covered, whole.covered)
    assert merged.coverage() == whole.coverage()


def test_merge_is_order_independent(net, batches):
    parts = [_tracker_fed(net, [x]) for x in batches]
    forward = NeuronCoverageTracker(net, threshold=0.5)
    for part in parts:
        forward.merge(part)
    backward = NeuronCoverageTracker(net, threshold=0.5)
    for part in reversed(parts):
        backward.merge(part)
    np.testing.assert_array_equal(forward.covered, backward.covered)


def test_merge_is_idempotent(net, batches):
    a = _tracker_fed(net, batches[:1])
    before = a.covered.copy()
    a.merge(a.state_dict())
    np.testing.assert_array_equal(a.covered, before)


def test_merge_accepts_state_dict(net, batches):
    """State dicts cross process boundaries; merging one == merging the
    tracker it came from."""
    a = _tracker_fed(net, batches[:1])
    b = _tracker_fed(net, batches[1:])
    via_tracker = a.clone().merge(b)
    via_state = a.clone().merge(b.state_dict())
    np.testing.assert_array_equal(via_tracker.covered, via_state.covered)


def test_state_dict_roundtrip(net, batches):
    a = _tracker_fed(net, batches)
    twin = NeuronCoverageTracker(net, threshold=0.5)
    twin.load_state_dict(a.state_dict())
    np.testing.assert_array_equal(twin.covered, a.covered)
    assert twin.coverage() == a.coverage()


def test_state_dict_is_a_copy(net, batches):
    a = _tracker_fed(net, batches[:1])
    state = a.state_dict()
    state["covered"][:] = True
    assert not a.covered.all()


def test_from_state_fresh_starts_empty(net, batches):
    a = _tracker_fed(net, batches)
    fresh = NeuronCoverageTracker.from_state(net, a.state_dict(), fresh=True)
    assert fresh.covered_count() == 0
    assert fresh.threshold == a.threshold
    assert fresh.tracked_count == a.tracked_count


def test_from_state_restores_layer_filter(net, batches):
    filtered = NeuronCoverageTracker(net, threshold=0.5,
                                     layer_filter=lambda l: l.name == "h1")
    filtered.update(batches[0])
    rebuilt = NeuronCoverageTracker.from_state(net, filtered.state_dict())
    assert rebuilt.tracked_count == filtered.tracked_count
    np.testing.assert_array_equal(rebuilt.covered, filtered.covered)


def test_merge_rejects_threshold_mismatch(net):
    a = NeuronCoverageTracker(net, threshold=0.5)
    b = NeuronCoverageTracker(net, threshold=0.25)
    with pytest.raises(CoverageError):
        a.merge(b)


def test_merge_rejects_layer_filter_mismatch(net):
    a = NeuronCoverageTracker(net, threshold=0.5)
    b = NeuronCoverageTracker(net, threshold=0.5,
                              layer_filter=lambda l: l.name == "h1")
    with pytest.raises(CoverageError):
        a.merge(b)


# -- extended criteria --------------------------------------------------------
def test_profile_merge_widens_bounds(net, batches):
    whole = NeuronProfile.from_data(net, np.concatenate(batches))
    merged = NeuronProfile.from_data(net, batches[0])
    for x in batches[1:]:
        merged.merge(NeuronProfile.from_data(net, x))
    np.testing.assert_allclose(merged.low, whole.low)
    np.testing.assert_allclose(merged.high, whole.high)


def test_profile_merge_rejects_shape_mismatch(net, rng):
    """Same zoo name at a different scale means a different neuron
    count — merging must raise, not broadcast."""
    other = Network([
        Dense(4, 9, rng=rng, name="h1"),
        Dense(9, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(4,), name="mergenet")
    a = NeuronProfile.from_data(net, rng.random((5, 4)))
    b = NeuronProfile.from_data(other, rng.random((5, 4)))
    with pytest.raises(CoverageError):
        a.merge(b)


def test_kmultisection_merge_equals_union(net, batches, rng):
    profile = NeuronProfile.from_data(net, rng.random((30, 4)))
    parts = []
    for x in batches:
        cov = KMultisectionCoverage(profile, k=5)
        cov.update(x)
        parts.append(cov)
    merged = KMultisectionCoverage(profile, k=5)
    for part in parts:
        merged.merge(part)
    whole = KMultisectionCoverage(profile, k=5)
    for x in batches:
        whole.update(x)
    np.testing.assert_array_equal(merged.covered, whole.covered)


def test_kmultisection_merge_rejects_k_mismatch(net, rng):
    profile = NeuronProfile.from_data(net, rng.random((10, 4)))
    a = KMultisectionCoverage(profile, k=5)
    b = KMultisectionCoverage(profile, k=10)
    with pytest.raises(CoverageError):
        a.merge(b)


def test_boundary_merge_equals_union(net, batches, rng):
    profile = NeuronProfile.from_data(net, rng.random((10, 4)) * 0.3)
    parts = []
    for x in batches:
        cov = BoundaryCoverage(profile)
        cov.update(x)
        parts.append(cov)
    merged = BoundaryCoverage(profile)
    for part in reversed(parts):
        merged.merge(part.state_dict())
    whole = BoundaryCoverage(profile)
    for x in batches:
        whole.update(x)
    np.testing.assert_array_equal(merged.below, whole.below)
    np.testing.assert_array_equal(merged.above, whole.above)


def test_topk_merge_equals_union(net, batches):
    parts = []
    for x in batches:
        cov = TopKNeuronCoverage(net, k=2)
        cov.update(x)
        parts.append(cov)
    merged = TopKNeuronCoverage(net, k=2)
    for part in parts:
        merged.merge(part)
    whole = TopKNeuronCoverage(net, k=2)
    for x in batches:
        whole.update(x)
    np.testing.assert_array_equal(merged.hot, whole.hot)
    assert merged.coverage() == whole.coverage()


def test_topk_state_roundtrip(net, batches):
    cov = TopKNeuronCoverage(net, k=2)
    cov.update(batches[0])
    twin = TopKNeuronCoverage(net, k=2)
    twin.load_state_dict(cov.state_dict())
    np.testing.assert_array_equal(twin.hot, cov.hot)
