"""Ablation: plain neuron coverage vs the finer-grained criteria.

Profiles LeNet-5 on training data, then measures how DeepXplore-generated
inputs score under neuron coverage, k-multisection coverage, boundary
coverage, and top-k neuron coverage — compared with the same number of
random test inputs.  Generated corner-case inputs should shine exactly on
the boundary metric.
"""

import numpy as np

from benchmarks.conftest import SCALE, SEED
from repro.core import DeepXplore, LightingConstraint, PAPER_HYPERPARAMS
from repro.coverage import (BoundaryCoverage, KMultisectionCoverage,
                            NeuronCoverageTracker, NeuronProfile,
                            TopKNeuronCoverage)
from repro.datasets import load_dataset
from repro.models import get_model, get_trio
from repro.utils.tables import render_table


def _score(network, profile, inputs):
    ncov = NeuronCoverageTracker(network, threshold=0.5)
    ncov.update(inputs)
    kmn = KMultisectionCoverage(profile, k=10)
    kmn.update(inputs)
    boundary = BoundaryCoverage(profile)
    boundary.update(inputs)
    topk = TopKNeuronCoverage(network, k=2)
    topk.update(inputs)
    return [f"{ncov.coverage():.1%}", f"{kmn.coverage():.1%}",
            f"{boundary.coverage():.1%}", f"{topk.coverage():.1%}"]


def test_ablation_coverage_metrics(benchmark):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    network = get_model("MNI_C3", scale=SCALE, seed=SEED, dataset=dataset)
    profile = NeuronProfile.from_data(network, dataset.x_train)
    rng = np.random.default_rng(81)

    def run():
        engine = DeepXplore(models, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=83)
        seeds, _ = dataset.sample_seeds(40, rng)
        result = engine.run(seeds)
        generated = np.stack([t.x for t in result.tests
                              if t.iterations > 0]) \
            if any(t.iterations > 0 for t in result.tests) else None
        return generated

    generated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert generated is not None, "no generated inputs to score"
    random_inputs, _ = dataset.sample_seeds(generated.shape[0],
                                            np.random.default_rng(85))
    rows = [["deepxplore"] + _score(network, profile, generated),
            ["random"] + _score(network, profile, random_inputs)]
    print()
    print(render_table(
        ["inputs", "NCov(t=0.5)", "k-multisection", "boundary", "top-2"],
        rows, title="[ablation] coverage criteria (LeNet-5)"))
    # Generated corner cases must reach activation regions the training
    # distribution never did, at least as often as random test inputs.
    dx_boundary = float(rows[0][3].rstrip("%"))
    rand_boundary = float(rows[1][3].rstrip("%"))
    assert dx_boundary >= rand_boundary
