"""Soft (Lagrangian) constraint embedding (paper §4.2 alternative).

§4.2 observes that *some* domain constraints "can be efficiently embedded
into the joint optimization process using Lagrange Multipliers", before
settling on rule-based gradient rewriting.  This extension implements
the Lagrangian route for box constraints so the two can be compared: a
penalty term ``-mu * violation(x)`` is added to the objective, whose
gradient discourages leaving the valid region instead of clipping after
the step.

In practice (see the ablation bench) the rule-based projection converges
faster — which is presumably why the paper chose it — but the soft
variant never produces the clipping artefacts hard projection can.
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import Constraint
from repro.errors import ConstraintError

__all__ = ["SoftBoxConstraint"]


class SoftBoxConstraint(Constraint):
    """Penalty-gradient box constraint for images in ``[low, high]``.

    ``apply`` adds the penalty gradient ``-mu * d/dx sum(relu(x - high) +
    relu(low - x))`` to the objective gradient; ``project`` performs only
    a final safety clip (violations shrink as ``mu`` grows).
    """

    name = "softbox"

    def __init__(self, mu=10.0, low=0.0, high=1.0):
        if mu <= 0:
            raise ConstraintError(f"mu must be positive, got {mu}")
        if low >= high:
            raise ConstraintError(f"low {low} must be < high {high}")
        self.mu = float(mu)
        self.low = float(low)
        self.high = float(high)

    def violation(self, x):
        """Total box violation (0 when x is inside the box)."""
        over = np.maximum(x - self.high, 0.0)
        under = np.maximum(self.low - x, 0.0)
        return float((over + under).sum())

    def apply(self, grad, x):
        penalty = np.where(x > self.high, 1.0, 0.0)
        penalty -= np.where(x < self.low, 1.0, 0.0)
        return grad - self.mu * penalty

    def project(self, x_new, x_prev):
        # Safety net only; with adequate mu the penalty keeps x inside.
        return np.clip(x_new, self.low - 0.05, self.high + 0.05)
