"""Differential oracles and majority-vote labelling."""

import numpy as np
import pytest

from repro.core import (ClassificationOracle, RegressionOracle,
                        majority_label, make_oracle)
from repro.errors import ConfigError
from repro.nn import Dense, Network


class _Stub:
    """Fixed-prediction stand-in for a trained network."""

    def __init__(self, outputs, name="stub"):
        self._outputs = np.asarray(outputs, dtype=np.float64)
        self.name = name
        self.output_shape = (self._outputs.shape[1],)

    def predict(self, x, batch_size=None):
        return np.tile(self._outputs, (np.asarray(x).shape[0], 1))


def test_classification_differs():
    a = _Stub([[0.9, 0.1]])
    b = _Stub([[0.2, 0.8]])
    oracle = ClassificationOracle([a, b])
    x = np.zeros((3, 4))
    assert oracle.differs(x).all()
    preds = oracle.predictions(x)
    assert preds.shape == (2, 3)


def test_classification_agrees():
    a = _Stub([[0.9, 0.1]])
    b = _Stub([[0.6, 0.4]])
    oracle = ClassificationOracle([a, b])
    assert not oracle.differs(np.zeros((2, 4))).any()


def test_needs_two_models():
    with pytest.raises(ConfigError):
        ClassificationOracle([_Stub([[1.0]])])
    with pytest.raises(ConfigError):
        RegressionOracle([_Stub([[1.0]])])


class _RegStub:
    def __init__(self, angle):
        self.angle = angle
        self.output_shape = (1,)

    def predict(self, x, batch_size=None):
        return np.full((np.asarray(x).shape[0], 1), self.angle)


def test_regression_direction_bins():
    assert RegressionOracle.direction(np.array([-0.3, 0.01, 0.3])).tolist() \
        == [-1, 0, 1]


def test_regression_differs_on_direction():
    left = _RegStub(-0.3)
    right = _RegStub(0.3)
    oracle = RegressionOracle([left, right])
    assert oracle.differs(np.zeros((1, 2))).all()


def test_regression_agrees_same_direction():
    oracle = RegressionOracle([_RegStub(0.2), _RegStub(0.35)])
    assert not oracle.differs(np.zeros((1, 2))).any()


def test_regression_spread_triggers():
    oracle = RegressionOracle([_RegStub(0.2), _RegStub(0.9)],
                              angle_spread=0.6)
    assert oracle.differs(np.zeros((1, 2))).all()


def test_make_oracle_dispatch():
    models = [_Stub([[0.5, 0.5]]), _Stub([[0.5, 0.5]])]
    assert isinstance(make_oracle(models, "classification"),
                      ClassificationOracle)
    assert isinstance(make_oracle(models, "regression"), RegressionOracle)
    with pytest.raises(ConfigError):
        make_oracle(models, "clustering")


def test_majority_label_simple():
    models = [_Stub([[0.9, 0.1]]), _Stub([[0.8, 0.2]]), _Stub([[0.1, 0.9]])]
    labels = majority_label(models, np.zeros((4, 3)))
    assert labels.tolist() == [0, 0, 0, 0]


def test_majority_label_tie_prefers_first_model():
    models = [_Stub([[0.9, 0.1]]), _Stub([[0.1, 0.9]])]
    labels = majority_label(models, np.zeros((2, 3)))
    assert labels.tolist() == [0, 0]


def test_oracle_on_real_models(mnist_trio, mnist_smoke):
    oracle = ClassificationOracle(mnist_trio)
    differs = oracle.differs(mnist_smoke.x_test[:40])
    # Well-trained trios agree on the (large) majority of test inputs.
    assert differs.mean() < 0.5
