"""Residual block: identity/projection paths, gradients, neuron exposure."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import BatchNorm, Conv2D, Residual

from tests.nn.gradcheck import check_layer_gradients


def _block(rng, channels=3):
    body = [
        Conv2D(channels, channels, 3, padding=1, rng=rng, name="b1"),
        Conv2D(channels, channels, 3, padding=1, activation="linear",
               rng=rng, name="b2"),
    ]
    return Residual(body, name="res")


def test_identity_shortcut_addition():
    rng = np.random.default_rng(0)
    block = _block(rng)
    # Zero the body weights: output must be relu(x).
    for param in block.parameters():
        param.value[:] = 0.0
    x = rng.normal(size=(2, 3, 4, 4))
    np.testing.assert_allclose(block.apply(x), np.maximum(x, 0.0))


def test_projection_shortcut():
    rng = np.random.default_rng(1)
    body = [Conv2D(2, 4, 3, padding=1, activation="linear", rng=rng)]
    projection = [Conv2D(2, 4, 1, activation="linear", rng=rng)]
    block = Residual(body, shortcut=projection)
    x = rng.normal(size=(1, 2, 4, 4))
    assert block.apply(x).shape == (1, 4, 4, 4)
    assert block.output_shape((2, 4, 4)) == (4, 4, 4)


def test_shape_mismatch_raises():
    rng = np.random.default_rng(2)
    body = [Conv2D(2, 4, 3, padding=1, rng=rng)]
    block = Residual(body)
    with pytest.raises(ShapeError):
        block.apply(np.zeros((1, 2, 4, 4)))
    with pytest.raises(ShapeError):
        block.output_shape((2, 4, 4))


def test_gradients_through_block():
    rng = np.random.default_rng(3)
    block = _block(rng)
    check_layer_gradients(block, rng.normal(size=(2, 3, 5, 5)), rng,
                          atol=1e-6)


def test_gradients_with_batchnorm_inference():
    rng = np.random.default_rng(4)
    body = [Conv2D(2, 2, 3, padding=1, rng=rng),
            BatchNorm(2, name="bn"),
            Conv2D(2, 2, 3, padding=1, activation="linear", rng=rng)]
    block = Residual(body)
    block.body[1].running_mean[:] = rng.normal(size=2)
    block.body[1].running_var[:] = rng.uniform(0.5, 2.0, size=2)
    check_layer_gradients(block, rng.normal(size=(2, 2, 4, 4)), rng,
                          atol=1e-6, training=False)


def test_parameters_and_buffers_collected():
    rng = np.random.default_rng(5)
    body = [Conv2D(2, 2, 3, padding=1, rng=rng), BatchNorm(2, name="bn")]
    projection = [Conv2D(2, 2, 1, rng=rng, name="proj")]
    block = Residual(body, shortcut=projection)
    assert len(block.parameters()) == 2 + 2 + 2  # conv w/b, bn g/b, proj w/b
    assert "bn.running_mean" in block.buffers()


def test_neuron_exposure_spatial_mean():
    rng = np.random.default_rng(6)
    block = _block(rng)
    assert block.neuron_count((3, 4, 4)) == 3
    x = rng.normal(size=(2, 3, 4, 4))
    out = block.apply(x)
    np.testing.assert_allclose(block.neuron_outputs(out),
                               out.mean(axis=(2, 3)))
    seed = block.neuron_seed((3, 4, 4), 2)
    np.testing.assert_allclose((seed[None] * out).sum(axis=(1, 2, 3)),
                               out.mean(axis=(2, 3))[:, 2])
