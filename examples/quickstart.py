#!/usr/bin/env python
"""Quickstart: differential-test three MNIST models with DeepXplore.

Loads the synthetic MNIST dataset, trains (or loads cached) LeNet-1/4/5,
then runs DeepXplore's gradient-ascent joint optimization under the
lighting constraint.  Prints the difference-inducing inputs found, the
neuron coverage achieved, and writes one seed/generated image pair next
to this script.

The engine comes from ``make_engine`` — the same selector behind the
CLI's ``--engine``/``--ascent`` flags: try ``ENGINE = "batch"`` for the
vectorized driver or ``ASCENT = "momentum"`` for heavy-ball ascent.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro import (PAPER_HYPERPARAMS, constraint_for_dataset, get_trio,
                   load_dataset, make_engine)
from repro.utils.imageops import save_pgm

SCALE = "smoke"    # bump to "small"/"full" for bigger runs
ENGINE = "sequential"   # or "batch" / "campaign"
ASCENT = "vanilla"      # or "momentum"


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)
    for model in models:
        print(f"  {model.name}: {model.total_neurons} neurons, "
              f"{model.parameter_count()} parameters")

    seeds, _ = dataset.sample_seeds(40, rng=np.random.default_rng(7))
    engine = make_engine(ENGINE, models, PAPER_HYPERPARAMS["mnist"],
                         constraint_for_dataset(dataset),
                         dataset.task, 11, ascent=ASCENT)
    result = engine.run(seeds)

    print(f"\nProcessed {result.seeds_processed} seeds in "
          f"{result.elapsed:.1f}s:")
    print(f"  difference-inducing inputs : {result.difference_count}")
    print(f"  seeds already disagreeing  : {result.seeds_disagreed}")
    print(f"  mean neuron coverage       : {engine.mean_coverage():.1%}")

    ascent = [t for t in result.tests if t.iterations > 0]
    if ascent:
        test = ascent[0]
        names = [m.name for m in models]
        verdicts = ", ".join(f"{n}={p}" for n, p in
                             zip(names, test.predictions))
        print(f"\nExample: seed #{test.seed_index} "
              f"(agreed class {test.seed_class}) now predicts: {verdicts}")
        out_dir = os.path.dirname(os.path.abspath(__file__))
        save_pgm(os.path.join(out_dir, "quickstart-seed.pgm"),
                 seeds[test.seed_index])
        save_pgm(os.path.join(out_dir, "quickstart-generated.pgm"), test.x)
        print(f"Wrote quickstart-seed.pgm / quickstart-generated.pgm "
              f"to {out_dir}")


if __name__ == "__main__":
    main()
