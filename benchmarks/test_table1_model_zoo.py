"""Benchmark: Table 1 — model zoo summary (training cached)."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_model_zoo


def test_table1_model_zoo(benchmark):
    result = run_once(benchmark, run_model_zoo, scale=SCALE, seed=SEED)
    assert len(result.rows) == 15
