"""Dataset container and split helpers."""

import numpy as np
import pytest

from repro.datasets import Dataset, train_test_split
from repro.datasets.base import resolve_scale
from repro.errors import DatasetError


def _tiny_dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="tiny",
        x_train=rng.random((20, 3)), y_train=np.arange(20) % 2,
        x_test=rng.random((8, 3)), y_test=np.arange(8) % 2,
        task="classification", num_classes=2)


def test_input_shape_and_describe():
    ds = _tiny_dataset()
    assert ds.input_shape == (3,)
    assert "tiny" in ds.describe()


def test_sample_seeds_no_replacement():
    ds = _tiny_dataset()
    x, y = ds.sample_seeds(8, np.random.default_rng(1))
    assert x.shape == (8, 3) and y.shape == (8,)
    # Copies, not views.
    x[0, 0] = 99.0
    assert not np.any(ds.x_test == 99.0)


def test_sample_seeds_from_train():
    ds = _tiny_dataset()
    x, _ = ds.sample_seeds(20, np.random.default_rng(2), from_train=True)
    assert x.shape == (20, 3)


def test_sample_seeds_too_many():
    with pytest.raises(DatasetError):
        _tiny_dataset().sample_seeds(9, np.random.default_rng(0))


def test_mismatched_counts_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(DatasetError):
        Dataset(name="bad", x_train=rng.random((5, 2)), y_train=np.zeros(4),
                x_test=rng.random((2, 2)), y_test=np.zeros(2))


def test_unknown_task_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(DatasetError):
        Dataset(name="bad", x_train=rng.random((2, 2)), y_train=np.zeros(2),
                x_test=rng.random((2, 2)), y_test=np.zeros(2),
                task="ranking")


def test_train_test_split_partitions():
    rng = np.random.default_rng(3)
    x = np.arange(40).reshape(20, 2).astype(float)
    y = np.arange(20)
    xtr, ytr, xte, yte = train_test_split(x, y, 0.25, rng)
    assert xtr.shape[0] == 15 and xte.shape[0] == 5
    combined = np.sort(np.concatenate([ytr, yte]))
    np.testing.assert_array_equal(combined, np.arange(20))


def test_train_test_split_bad_fraction():
    rng = np.random.default_rng(0)
    with pytest.raises(DatasetError):
        train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5, rng)


def test_resolve_scale():
    assert resolve_scale("smoke") == "smoke"
    with pytest.raises(DatasetError):
        resolve_scale("enormous")
