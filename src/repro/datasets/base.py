"""Dataset container and common helpers for the synthetic datasets.

The paper evaluates on five datasets (MNIST, ImageNet, Udacity Driving,
Contagio/VirusTotal, Drebin) totalling ~162 GB.  This environment is
offline, so each dataset is replaced by a procedural generator that
preserves the properties DeepXplore exercises: learnable structure (so
independently trained models agree on most inputs), the input domain
(images in [0,1], count features, binary features) and the constraint
semantics of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError

__all__ = ["Dataset", "train_test_split", "SCALES", "resolve_scale"]

#: Named experiment scales.  ``smoke`` keeps CI fast; ``small`` is the
#: default for benchmarks; ``full`` approaches the paper's set-ups as far
#: as a CPU-only numpy stack allows.
SCALES = ("smoke", "small", "full")


def resolve_scale(scale):
    """Validate a scale name."""
    if scale not in SCALES:
        raise DatasetError(f"unknown scale {scale!r}; choose from {SCALES}")
    return scale


@dataclass
class Dataset:
    """A train/test split plus task metadata.

    ``task`` is ``"classification"`` or ``"regression"``.  For feature
    datasets (PDF, Drebin), ``feature_names`` labels each input column so
    experiments can report human-readable mutations (paper Tables 3-4).
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    task: str = "classification"
    num_classes: int | None = None
    feature_names: list[str] | None = None
    class_names: list[str] | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.task not in ("classification", "regression"):
            raise DatasetError(f"unknown task {self.task!r}")
        if self.x_train.shape[0] != np.asarray(self.y_train).shape[0]:
            raise DatasetError("x_train/y_train sample counts differ")
        if self.x_test.shape[0] != np.asarray(self.y_test).shape[0]:
            raise DatasetError("x_test/y_test sample counts differ")

    @property
    def input_shape(self):
        """Shape of a single sample (no batch axis)."""
        return self.x_train.shape[1:]

    def sample_seeds(self, count, rng, from_train=False):
        """Randomly pick ``count`` seed inputs (with labels) from a split.

        Used by every experiment that starts from "N randomly selected
        seeds from the test set".
        """
        x = self.x_train if from_train else self.x_test
        y = self.y_train if from_train else self.y_test
        if count > x.shape[0]:
            raise DatasetError(
                f"requested {count} seeds but split has {x.shape[0]}")
        idx = rng.choice(x.shape[0], size=count, replace=False)
        return x[idx].copy(), np.asarray(y)[idx].copy()

    def describe(self):
        """One-line summary used in reports."""
        return (f"{self.name}: train={self.x_train.shape[0]} "
                f"test={self.x_test.shape[0]} input={self.input_shape} "
                f"task={self.task}")


def train_test_split(x, y, test_fraction, rng):
    """Shuffle and split arrays into train/test portions."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(
            f"test_fraction must be in (0, 1), got {test_fraction}")
    n = x.shape[0]
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]
