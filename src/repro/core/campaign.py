"""Sharded generation campaigns: multi-process seed-corpus fan-out.

A :class:`Campaign` splits a seed corpus into fixed-size shards, runs
the vectorized :class:`~repro.core.engine.AscentEngine` on each shard —
in worker processes when ``workers > 1``, under any
:class:`~repro.core.engine.AscentRule` — and merges the per-shard
results into one :class:`~repro.core.engine.GenerationResult` plus one
merged
coverage tracker per model.  This is the scale-out layer the stateless
``Network``/``ForwardPass`` substrate was built for: workers share
nothing, so a campaign is embarrassingly parallel across shards.

Determinism (see docs/ARCHITECTURE.md for the full rules):

* **Sharding** depends only on the corpus and ``shard_size`` —
  contiguous chunks in seed order — never on ``workers``.
* **Randomness** per shard comes from
  :func:`repro.utils.rng.spawn_seed_sequences`: shard *i* draws the same
  stream whether it runs first on one worker or last on eight.
* **Merging** is order-independent: tests carry global seed indices and
  are re-ordered by them, coverage masks OR-combine.

Together these make ``workers=N`` produce bit-identical tests and
coverage to ``workers=1`` under the same seed, which
``tests/core/test_campaign.py`` pins and
``benchmarks/test_campaign_throughput.py`` times.

Worker processes never retrain or touch the weight cache: models travel
as architecture+weights payloads
(:func:`repro.nn.config.network_to_payload`) and coverage comes back as
plain ``state_dict()`` masks, so the only things crossing process
boundaries are picklable dicts of numpy arrays.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Constraint, Unconstrained
from repro.core.engine import (AscentEngine, AscentRule, GenerationResult,
                               VanillaRule)
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.nn.config import network_from_payload, network_to_payload
from repro.utils.rng import rng_from_seed_sequence, spawn_seed_sequences

__all__ = ["Campaign", "CampaignShard", "shard_corpus",
           "DEFAULT_SHARD_SIZE"]

#: Default seeds per shard.  Independent of ``workers`` on purpose: the
#: shard layout (and therefore every random draw) must not change when a
#: campaign is re-run with a different degree of parallelism.
DEFAULT_SHARD_SIZE = 16


@dataclass(frozen=True)
class CampaignShard:
    """One unit of campaign work: a seed slice plus its random stream."""

    shard_index: int
    indices: np.ndarray          # global seed indices of this slice
    seeds: np.ndarray            # the seed inputs themselves
    seed_seq: np.random.SeedSequence
    scales: np.ndarray = None    # per-seed step scales (None: all 1)


def shard_corpus(seeds, shard_size=DEFAULT_SHARD_SIZE, seed=0,
                 seed_scales=None):
    """Split a seed corpus into deterministic contiguous shards.

    Shard boundaries depend only on the corpus length and ``shard_size``;
    each shard gets a spawned child of ``seed``'s SeedSequence.  The
    returned shards are self-contained (they carry their global indices
    and, when given, their slice of the per-seed step scales), so any
    subset can be executed anywhere and merged later.

    Edge cases are part of the contract (pinned in
    ``tests/core/test_campaign.py``): an empty corpus yields zero shards
    (and a campaign over it a clean empty result), and
    ``shard_size > len(corpus)`` yields exactly one shard holding the
    whole corpus.
    """
    seeds = np.asarray(seeds, dtype=np.float64)
    if shard_size < 1:
        raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
    n = seeds.shape[0]
    if seed_scales is not None:
        seed_scales = np.asarray(seed_scales, dtype=np.float64)
        if seed_scales.shape != (n,):
            raise ConfigError(
                f"need one seed scale per seed; got shape "
                f"{seed_scales.shape} for {n} seed(s)")
    bounds = list(range(0, n, int(shard_size)))
    seqs = spawn_seed_sequences(seed, len(bounds))
    shards = []
    for shard_index, start in enumerate(bounds):
        stop = min(start + int(shard_size), n)
        shards.append(CampaignShard(
            shard_index=shard_index,
            indices=np.arange(start, stop),
            seeds=seeds[start:stop].copy(),
            seed_seq=seqs[shard_index],
            scales=(None if seed_scales is None
                    else seed_scales[start:stop].copy())))
    return shards


# -- worker side ----------------------------------------------------------------
# Pool workers unpack the campaign spec once per process (initializer),
# then process any number of shards against the cached models.  The
# in-process path (workers=1) calls the very same two functions, so a
# serial campaign exercises the identical code a parallel one does.

_WORKER_STATE = {}


def _init_worker(spec):
    """Per-process setup: rebuild models from payloads, cache the spec."""
    _WORKER_STATE["models"] = [network_from_payload(p)
                               for p in spec["models"]]
    _WORKER_STATE["spec"] = spec


def _run_shard(shard):
    """Run one shard through BatchDeepXplore; returns a picklable dict.

    Worker trackers start from the driver's coverage state, so the
    coverage objective steers ascent toward neurons *genuinely* still
    uncovered — a campaign resumed over persisted coverage (``generate
    --resume``, fuzz waves) must not chase neurons earlier runs already
    lit up.  The merge back into the driver is an OR, so seeding every
    shard with the same prior loses nothing and double-counts nothing.
    Generated tests are rewritten to carry their *global* seed index
    before leaving the worker.
    """
    spec = _WORKER_STATE["spec"]
    models = _WORKER_STATE["models"]
    trackers = [NeuronCoverageTracker.from_state(m, s)
                for m, s in zip(models, spec["tracker_states"])]
    engine = AscentEngine(
        models, spec["hp"], spec["constraint"].clone(), task=spec["task"],
        trackers=trackers, rng=rng_from_seed_sequence(shard.seed_seq),
        rule=spec["rule"].clone(),
        absorb_exhausted=spec["absorb_exhausted"])
    result = engine.run(shard.seeds, seed_scales=shard.scales)
    for test in result.tests:
        test.seed_index = int(shard.indices[test.seed_index])
    return {"shard_index": shard.shard_index,
            "result": result,
            "coverage": [t.state_dict() for t in trackers]}


# -- driver side ----------------------------------------------------------------
class Campaign:
    """Sharded, optionally multi-process DeepXplore campaign runner.

    Parameters
    ----------
    models:
        Two or more trained networks (as for the other engines).
    hyperparams, constraint, task, trackers:
        As in :class:`~repro.core.DeepXplore`.  Trackers passed in keep
        any coverage they already hold; shard workers *start from* that
        coverage (so the coverage objective targets genuinely uncovered
        neurons) and shard results merge back into them.
    workers:
        Worker processes.  ``1`` runs shards in-process (still through
        the worker code path); ``N > 1`` fans out over a process pool.
    shard_size:
        Seeds per shard.  Part of the campaign's deterministic identity —
        changing it changes the random streams; changing ``workers``
        does not.
    seed:
        Root of the campaign's SeedSequence tree.
    rule:
        The :class:`~repro.core.engine.AscentRule` every shard ascends
        under (each shard gets its own clone, so per-seed rule state
        never crosses shard boundaries); defaults to the vanilla rule.
        Like ``shard_size``, part of the deterministic identity.
    absorb_exhausted:
        Engine coverage accounting per shard (see
        :class:`~repro.core.engine.AscentEngine`); ``False`` is the
        paper-exact mode.  Also part of the deterministic identity —
        it changes what later waves' coverage objectives chase.
    mp_start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``);
        defaults to the platform default.
    """

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, workers=1,
                 shard_size=DEFAULT_SHARD_SIZE, seed=0, rule=None,
                 absorb_exhausted=True, mp_start_method=None):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        if not isinstance(self.constraint, Constraint):
            raise ConfigError("constraint must be a Constraint instance")
        self.task = task
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        self.shard_size = int(shard_size)
        self.seed = seed
        self.rule = rule if rule is not None else VanillaRule()
        if not isinstance(self.rule, AscentRule):
            raise ConfigError("rule must be an AscentRule instance")
        self.absorb_exhausted = bool(absorb_exhausted)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)
        self.mp_start_method = mp_start_method

    def _spec(self):
        """The per-process campaign spec shipped to every worker."""
        return {
            "models": [network_to_payload(m) for m in self.models],
            "hp": self.hp,
            "constraint": self.constraint,
            "task": self.task,
            "rule": self.rule,
            "absorb_exhausted": self.absorb_exhausted,
            "tracker_states": [t.state_dict() for t in self.trackers],
        }

    def run(self, seeds, seed_scales=None):
        """Shard ``seeds``, fan out, merge; returns a GenerationResult.

        ``result.elapsed`` is the campaign's wall-clock (not the sum of
        per-shard compute); each test's own ``elapsed`` is relative to
        its shard's start.  ``seed_scales`` (one float per seed, for
        rules that honour per-seed step scaling) shards contiguously
        alongside the seeds, so scaling is worker-count invariant.
        """
        if seed_scales is not None and not self.rule.accepts_seed_scales:
            raise ConfigError(
                f"the {self.rule.name} rule does not accept per-seed "
                "step scales")
        start = time.perf_counter()
        shards = shard_corpus(seeds, self.shard_size, seed=self.seed,
                              seed_scales=seed_scales)
        spec = self._spec()
        if self.workers == 1 or len(shards) <= 1:
            try:
                _init_worker(spec)
                outcomes = [_run_shard(shard) for shard in shards]
            finally:
                # Don't keep payload-rebuilt model copies alive in the
                # module global after an in-process run.
                _WORKER_STATE.clear()
        else:
            ctx = multiprocessing.get_context(self.mp_start_method)
            with ctx.Pool(min(self.workers, len(shards)),
                          initializer=_init_worker,
                          initargs=(spec,)) as pool:
                outcomes = pool.map(_run_shard, shards)
        merged = GenerationResult()
        for outcome in sorted(outcomes, key=lambda o: o["shard_index"]):
            merged.merge(outcome["result"])
            for tracker, state in zip(self.trackers, outcome["coverage"]):
                tracker.merge(state)
        merged.elapsed = time.perf_counter() - start
        merged.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return merged

    def mean_coverage(self):
        """Mean neuron coverage across the tested models."""
        return float(np.mean([t.coverage() for t in self.trackers]))
