"""RMSProp, LR schedules, gradient clipping, early stopping, new
activations."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (Adam, CosineDecay, EarlyStopping, Elu, Parameter,
                      RMSProp, Softplus, StepDecay, Trainer, clip_gradients,
                      Dense, Network, accuracy)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([4.0, -2.0]), "w")
        opt = RMSProp(lr=0.05)
        for _ in range(400):
            param.zero_grad()
            param.grad += 2.0 * param.value
            opt.step([param])
        # RMSProp's effective step stays ~lr near the optimum, so it
        # oscillates within an lr-sized band rather than collapsing to 0.
        assert np.abs(param.value).max() < 2 * opt.lr

    def test_validation(self):
        with pytest.raises(ConfigError):
            RMSProp(lr=0.0)
        with pytest.raises(ConfigError):
            RMSProp(rho=1.0)


class TestSchedules:
    def test_step_decay(self):
        opt = Adam(lr=1.0)
        schedule = StepDecay(gamma=0.5, every=2)
        lrs = []
        for epoch in range(1, 7):
            schedule(opt, epoch)
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]

    def test_cosine_decay_endpoints(self):
        opt = Adam(lr=1.0)
        schedule = CosineDecay(total=10, min_lr=0.1)
        schedule(opt, 0)
        assert opt.lr == pytest.approx(1.0)
        schedule(opt, 10)
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone(self):
        opt = Adam(lr=1.0)
        schedule = CosineDecay(total=8)
        values = []
        for epoch in range(9):
            schedule(opt, epoch)
            values.append(opt.lr)
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            StepDecay(gamma=0.0)
        with pytest.raises(ConfigError):
            CosineDecay(total=0)


class TestClipping:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4), "w")
        param.grad += 10.0
        norm = clip_gradients([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(4), "w")
        param.grad += 0.01
        clip_gradients([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, 0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            clip_gradients([], max_norm=0.0)


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.should_stop(0.5)
        assert not stopper.should_stop(0.6)
        assert not stopper.should_stop(0.6)   # stale 1
        assert stopper.should_stop(0.6)       # stale 2 -> stop

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(0.5)
        assert stopper.should_stop(0.6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigError):
            EarlyStopping(mode="sideways")

    def test_trainer_integration(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 4))
        y = (x[:, 0] > 0).astype(int)
        net = Network([Dense(4, 8, rng=rng),
                       Dense(8, 2, activation="softmax", rng=rng)], (4,))
        trainer = Trainer(net, rng=1, lr=0.05)
        history = trainer.fit(
            x, y, epochs=50, batch_size=32, validation=(x, y),
            metric=accuracy, early_stopping=EarlyStopping(patience=2))
        assert len(history["loss"]) < 50  # stopped early

    def test_trainer_requires_validation(self):
        rng = np.random.default_rng(2)
        net = Network([Dense(4, 2, activation="softmax", rng=rng)], (4,))
        with pytest.raises(ConfigError):
            Trainer(net).fit(np.zeros((4, 4)), np.zeros(4, dtype=int),
                             early_stopping=EarlyStopping())


class TestNewActivations:
    def test_elu_values(self):
        act = Elu(alpha=1.0)
        out = act.forward(np.array([[-30.0, 0.0, 2.0]]))
        assert out[0, 0] == pytest.approx(-1.0, abs=1e-9)
        assert out[0, 1] == 0.0
        assert out[0, 2] == 2.0

    def test_softplus_positive_and_smooth(self):
        act = Softplus()
        z = np.linspace(-5, 5, 11).reshape(1, -1)
        out = act.forward(z)
        assert np.all(out > 0.0)
        assert np.all(np.diff(out[0]) > 0.0)

    @pytest.mark.parametrize("act", [Elu(0.7), Softplus()])
    def test_backward_numeric(self, act):
        rng = np.random.default_rng(3)
        z = rng.normal(size=(2, 5))
        z[np.abs(z) < 1e-3] = 0.3
        grad = rng.normal(size=z.shape)
        a = act.forward(z)
        analytic = act.backward(grad, z, a)
        eps = 1e-6
        for idx in np.ndindex(z.shape):
            zp = z.copy(); zp[idx] += eps
            zm = z.copy(); zm[idx] -= eps
            numeric = ((act.forward(zp) - act.forward(zm)) * grad).sum() \
                / (2 * eps)
            assert abs(analytic[idx] - numeric) < 1e-6


def test_trainer_with_schedule_and_clipping():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(120, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    net = Network([Dense(4, 8, rng=rng),
                   Dense(8, 2, activation="softmax", rng=rng)], (4,))
    trainer = Trainer(net, optimizer="rmsprop", lr=0.01, rng=5)
    history = trainer.fit(x, y, epochs=6, batch_size=32,
                          schedule=StepDecay(gamma=0.5, every=2),
                          clip_norm=5.0)
    assert history["lr"][-1] < history["lr"][0]
    assert history["loss"][-1] < history["loss"][0]
