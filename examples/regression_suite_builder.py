#!/usr/bin/env python
"""Build a minimal regression test suite from DeepXplore's output.

Workflow a team shipping a DNN would actually run:

1. generate difference-inducing inputs for the model trio (batched
   generator for throughput);
2. minimize the suite to the smallest subset preserving joint neuron
   coverage (greedy set cover);
3. archive the kept tests plus a self-contained model file
   (architecture + weights) for the CI regression job.

Run:  python examples/regression_suite_builder.py
"""

import os

import numpy as np

from repro import (PAPER_HYPERPARAMS, constraint_for_dataset, get_trio,
                   load_dataset)
from repro.analysis import minimize_suite
from repro.core import BatchDeepXplore
from repro.coverage import coverage_of_inputs
from repro.nn import save_network

SCALE = "smoke"
THRESHOLD = 0.25


def main():
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)

    print("Generating difference-inducing inputs (batched)...")
    seeds, _ = dataset.sample_seeds(50, np.random.default_rng(47))
    engine = BatchDeepXplore(models, PAPER_HYPERPARAMS["mnist"],
                             constraint_for_dataset(dataset), rng=53)
    result = engine.run(seeds)
    tests = result.test_inputs()
    if tests.shape[0] == 0:
        print("no tests generated; try scale='small'")
        return
    print(f"  {tests.shape[0]} tests in {result.elapsed:.1f}s")

    print("\nMinimizing the suite (greedy coverage set-cover)...")
    chosen, covered = minimize_suite(models, tests, threshold=THRESHOLD)
    kept = tests[chosen]
    print(f"  kept {kept.shape[0]}/{tests.shape[0]} tests "
          f"({covered:.1%} of jointly reachable neurons)")
    for model in models:
        full = coverage_of_inputs(model, tests, threshold=THRESHOLD)
        mini = coverage_of_inputs(model, kept, threshold=THRESHOLD)
        print(f"  {model.name}: full-suite NCov {full:.1%} -> "
              f"minimized {mini:.1%}")

    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "regression-suite")
    os.makedirs(out_dir, exist_ok=True)
    np.savez_compressed(os.path.join(out_dir, "suite.npz"), tests=kept)
    for model in models:
        save_network(model, os.path.join(out_dir, f"{model.name}.npz"))
    print(f"\nArchived minimized suite + self-contained models in "
          f"{out_dir}")
    print("A CI job can now `load_network(...)` each model and assert "
          "its predictions on suite.npz stay unchanged.")


if __name__ == "__main__":
    main()
