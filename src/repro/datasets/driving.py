"""Synthetic Udacity-style driving dataset.

Renders forward-facing grayscale road scenes with a curved lane and pairs
each frame with the steering angle a centred car should apply.  This is
the regression task of the paper: the DAVE models predict a continuous
steering angle, the differential oracle is a left/right disagreement, and
the image constraints (lighting, occlusion) apply unchanged.

Geometry: the road is drawn in a crude perspective — its centreline drifts
with lateral ``offset`` near the camera and bends with ``curvature``
toward the horizon; width shrinks linearly with distance.  The ground
truth steering angle steers back toward the lane centre and into the
curve, matching how the Udacity frames pair camera images with the human
driver's simultaneous wheel angle.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, resolve_scale
from repro.utils.rng import as_rng

__all__ = ["generate_driving", "render_road", "steering_for"]

HEIGHT = 16
WIDTH = 32

#: Gains mapping scene geometry to the ground-truth steering angle.
CURVATURE_GAIN = 1.6
OFFSET_GAIN = 0.9


def steering_for(curvature, offset):
    """Ground-truth steering angle (radians) for a scene geometry."""
    return float(np.clip(CURVATURE_GAIN * curvature + OFFSET_GAIN * offset,
                         -1.2, 1.2))


def render_road(curvature, offset, rng, brightness=None):
    """Render one ``(1, 16, 32)`` road scene.

    ``curvature`` in [-0.5, 0.5] bends the road; ``offset`` in [-0.3, 0.3]
    shifts the car off the lane centre.
    """
    rng = as_rng(rng)
    if brightness is None:
        brightness = rng.uniform(0.85, 1.15)
    img = np.zeros((HEIGHT, WIDTH))
    horizon = 4
    sky = np.linspace(0.75, 0.55, horizon)
    img[:horizon, :] = sky[:, None]
    img[horizon:, :] = 0.18  # ground

    cols = np.arange(WIDTH)
    for row in range(horizon, HEIGHT):
        depth = (row - horizon) / (HEIGHT - 1 - horizon)  # 0 far -> 1 near
        far = 1.0 - depth
        centre = (WIDTH / 2.0
                  + offset * depth * WIDTH * 0.5
                  + curvature * far * far * WIDTH * 0.9)
        half_width = 2.0 + depth * (WIDTH * 0.28)
        on_road = np.abs(cols - centre) <= half_width
        img[row, on_road] = 0.45
        edges = (np.abs(np.abs(cols - centre) - half_width) <= 0.7)
        img[row, edges] = 0.85
        # Dashed centre line.
        if row % 2 == 0:
            mid = np.abs(cols - centre) <= max(half_width * 0.08, 0.4)
            img[row, mid] = 0.95
    img = img * brightness + rng.normal(0.0, 0.015, size=img.shape)
    return np.clip(img, 0.0, 1.0)[None, :, :]


_SCALE_SIZES = {
    "smoke": (300, 90),
    "small": (1200, 350),
    "full": (5000, 1400),
}


def generate_driving(scale="small", seed=0):
    """Generate the synthetic driving dataset at a named scale."""
    resolve_scale(scale)
    rng = as_rng(seed)
    n_train, n_test = _SCALE_SIZES[scale]
    total = n_train + n_test
    curvature = rng.uniform(-0.5, 0.5, size=total)
    offset = rng.uniform(-0.3, 0.3, size=total)
    frames = np.stack([
        render_road(c, o, rng) for c, o in zip(curvature, offset)])
    angles = np.array([steering_for(c, o)
                       for c, o in zip(curvature, offset)])
    angles += rng.normal(0.0, 0.01, size=total)  # sensor noise
    return Dataset(
        name="driving",
        x_train=frames[:n_train], y_train=angles[:n_train],
        x_test=frames[n_train:], y_test=angles[n_train:],
        task="regression", num_classes=None,
        metadata={"scale": scale, "seed": seed, "domain": "image",
                  "curvature": curvature, "offset": offset},
    )
