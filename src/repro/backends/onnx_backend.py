"""Optional ONNX Runtime backend (inference-only).

Adapts an exported ``.onnx`` graph to the
:class:`~repro.backends.base.ComputeBackend` surface so differential
*prediction* — the oracle half of DeepXplore — can run against an
external runtime.  ONNX Runtime exposes no input gradients, so
:meth:`OnnxBackend.forward` refuses with a pointed error instead of
silently degrading; gradient ascent needs a differentiable backend
(today: ``numpy``).

The dependency is import-gated: constructing the backend without
``onnxruntime`` installed raises :class:`~repro.errors.ConfigError`, and
``tests/backends`` skips rather than fails in that environment.  Nothing
is ever installed on demand.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ComputeBackend
from repro.errors import ConfigError

__all__ = ["OnnxBackend", "have_onnxruntime"]


def _load_onnxruntime():
    try:
        import onnxruntime
    except ImportError:
        return None
    return onnxruntime


def have_onnxruntime():
    """True when the optional ``onnxruntime`` dependency is importable."""
    return _load_onnxruntime() is not None


class OnnxBackend(ComputeBackend):
    """Inference-only adapter over an ONNX Runtime ``InferenceSession``."""

    kind = "onnx"

    def __init__(self, model_path, name=None, bounds=(0.0, 1.0),
                 preprocessing=(0.0, 1.0), session_options=None):
        onnxruntime = _load_onnxruntime()
        if onnxruntime is None:
            raise ConfigError(
                "the onnx backend needs the optional 'onnxruntime' "
                "package, which is not installed in this environment")
        self.session = onnxruntime.InferenceSession(
            str(model_path), sess_options=session_options,
            providers=["CPUExecutionProvider"])
        inputs = self.session.get_inputs()
        outputs = self.session.get_outputs()
        if len(inputs) != 1 or len(outputs) != 1:
            raise ConfigError(
                f"onnx backend expects a single-input/single-output "
                f"graph; got {len(inputs)} inputs, {len(outputs)} outputs")
        self._input = inputs[0]
        self._output = outputs[0]
        self._name = name or str(model_path)
        self._bounds = tuple(bounds)
        self._preprocessing = tuple(preprocessing)
        self._dtype = np.dtype(
            np.float32 if "float16" not in self._input.type
            and "double" not in self._input.type else
            np.float16 if "float16" in self._input.type else np.float64)

    @property
    def name(self):
        return self._name

    @property
    def dtype(self):
        return self._dtype

    @property
    def output_shape(self):
        # Drop the (symbolic or fixed) batch axis.
        return tuple(int(d) for d in self._output.shape[1:])

    @property
    def bounds(self):
        return self._bounds

    @property
    def preprocessing(self):
        return self._preprocessing

    def forward(self, x, training=False, workspace=None):
        raise ConfigError(
            "the onnx backend is inference-only: ONNX Runtime exposes no "
            "input gradients, so it cannot record a differentiable tape. "
            "Use the numpy backend for gradient ascent")

    def predict(self, x, batch_size=256):
        mean, std = self._preprocessing
        x = (np.asarray(x, dtype=self._dtype) - mean) / std
        chunks = [
            self.session.run([self._output.name],
                             {self._input.name: x[i:i + batch_size]})[0]
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)
