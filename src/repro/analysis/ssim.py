"""Structural similarity (SSIM, Wang et al. 2004).

Used by the pollution-detection experiment (§7.3) to match DeepXplore's
error-inducing digits against the most structurally similar training
samples.  Implemented with a uniform local window over single-channel
images; multi-channel images average the per-channel index.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.errors import ShapeError

__all__ = ["ssim"]

_C1 = (0.01) ** 2
_C2 = (0.03) ** 2


def _ssim_single(a, b, window):
    mu_a = uniform_filter(a, size=window)
    mu_b = uniform_filter(b, size=window)
    mu_aa = uniform_filter(a * a, size=window)
    mu_bb = uniform_filter(b * b, size=window)
    mu_ab = uniform_filter(a * b, size=window)
    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov = mu_ab - mu_a * mu_b
    numerator = (2 * mu_a * mu_b + _C1) * (2 * cov + _C2)
    denominator = (mu_a ** 2 + mu_b ** 2 + _C1) * (var_a + var_b + _C2)
    return float((numerator / denominator).mean())


def ssim(image_a, image_b, window=7):
    """Mean SSIM between two ``(C, H, W)`` or ``(H, W)`` images in [0, 1]."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim == 2:
        return _ssim_single(a, b, window)
    if a.ndim == 3:
        return float(np.mean([_ssim_single(a[c], b[c], window)
                              for c in range(a.shape[0])]))
    raise ShapeError(f"expected 2-D or 3-D image, got shape {a.shape}")
