"""Algorithm 1: gradient-ascent test generation via joint optimization.

The :class:`DeepXplore` driver cycles through unlabeled seed inputs; for
each seed it repeatedly (1) builds the joint objective's input-gradient,
(2) rewrites it through the domain constraint, (3) takes an ascent step,
and (4) asks the differential oracle whether the models now disagree.
Difference-inducing inputs are collected and folded into each model's
neuron-coverage tracker.

Execution model: every ascent iteration records exactly one
:class:`~repro.nn.tape.ForwardPass` per model (``Network.run``).  The
same tape feeds the differential objective, the coverage objective, the
oracle check, and — when a difference is found — the tracker update, so
no model is ever run twice for the same input.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Constraint, Unconstrained
from repro.core.objectives import (CoverageObjective, DifferentialObjective,
                                   JointObjective,
                                   RegressionDifferentialObjective)
from repro.core.oracle import make_oracle
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["DeepXplore", "GeneratedTest", "GenerationResult",
           "normalize_gradient"]


def normalize_gradient(grad):
    """RMS-normalize a batched gradient (per sample).

    The original DeepXplore implementation divides every gradient by its
    root-mean-square before stepping (``normalize`` in the released
    code), which makes the step size ``s`` meaningful across models and
    objectives whose raw gradient magnitudes differ by orders of
    magnitude.
    """
    batch = grad.shape[0]
    flat = grad.reshape(batch, -1)
    rms = np.sqrt((flat ** 2).mean(axis=1, keepdims=True))
    shape = (batch,) + (1,) * (grad.ndim - 1)
    return grad / (rms.reshape(shape) + 1e-8)


@dataclass
class GeneratedTest:
    """One difference-inducing input found by the generator."""

    x: np.ndarray               # the generated input (no batch axis)
    seed_index: int             # which seed it came from
    iterations: int             # ascent iterations used (0 = seed differed)
    predictions: np.ndarray     # per-model predictions on x
    seed_class: object          # seed's agreed class (None for regression)
    elapsed: float              # seconds from seed start to difference


@dataclass
class GenerationResult:
    """Outcome of a generation run over a seed set."""

    tests: list = field(default_factory=list)
    seeds_processed: int = 0
    seeds_disagreed: int = 0     # seeds the models already disagreed on
    seeds_exhausted: int = 0     # seeds that hit max_iterations
    elapsed: float = 0.0
    coverage: dict = field(default_factory=dict)  # model name -> NCov

    @property
    def difference_count(self):
        return len(self.tests)

    def test_inputs(self):
        """Stack all generated inputs into one array."""
        if not self.tests:
            return np.empty((0,))
        return np.stack([t.x for t in self.tests])

    def merge(self, other):
        """Fold another result (e.g. a campaign shard's) into this one.

        Tests keep the (globally unique) ``seed_index`` they were found
        for, and the merged list is re-ordered by it, so merging shard
        results in any order yields the same ``GenerationResult``.
        Counters add; ``elapsed`` adds too and therefore means *total
        compute seconds* after a merge — a parallel driver overwrites it
        with its own wall-clock.  Coverage fractions cannot be combined
        after the fact (a fraction forgets *which* neurons fired), so
        ``coverage`` is cleared; the campaign recomputes it from the
        merged trackers.  Returns ``self`` for chaining.
        """
        self.tests.extend(other.tests)
        self.tests.sort(key=lambda t: t.seed_index)
        self.seeds_processed += other.seeds_processed
        self.seeds_disagreed += other.seeds_disagreed
        self.seeds_exhausted += other.seeds_exhausted
        self.elapsed += other.elapsed
        self.coverage = {}
        return self


class DeepXplore:
    """Whitebox differential test generator (paper Algorithm 1).

    Parameters
    ----------
    models:
        Two or more trained networks with identical input domains.
    hyperparams:
        :class:`~repro.core.config.Hyperparams`; paper defaults per
        dataset live in ``PAPER_HYPERPARAMS``.
    constraint:
        A :class:`~repro.core.constraints.Constraint`; defaults to
        pixel clipping only.
    task:
        ``"classification"`` or ``"regression"``.
    trackers:
        Optional pre-existing coverage trackers (one per model); created
        fresh otherwise.  Sharing trackers across runs accumulates
        coverage, which is how Table 8 measures time-to-full-coverage.
    """

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, rng=None,
                 update_coverage_with_tests=True, coverage_factory=None):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        if not isinstance(self.constraint, Constraint):
            raise ConfigError("constraint must be a Constraint instance")
        self.task = task
        self.oracle = make_oracle(self.models, task)
        self.rng = as_rng(rng)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)
        self.update_coverage_with_tests = bool(update_coverage_with_tests)
        # Pluggable obj2: callable(trackers, rng) -> coverage objective
        # implementing pick()/value()/gradient().  Default = Algorithm 1's
        # one-neuron-per-model rule; extensions supply variants.
        self.coverage_factory = coverage_factory or (
            lambda trackers, rng: CoverageObjective(trackers, rng=rng))

    # -- single-seed ascent -------------------------------------------------------
    def _differential_objective(self, x, target_index, seed_class):
        if self.task == "regression":
            return RegressionDifferentialObjective(
                self.models, target_index, self.hp.lambda1)
        return DifferentialObjective(
            self.models, target_index, seed_class, self.hp.lambda1)

    def _run_models(self, x):
        """One recorded forward pass per model (the iteration's tapes)."""
        return [model.run(x) for model in self.models]

    def generate_from_seed(self, seed_x, seed_index=0):
        """Run gradient ascent from one seed; returns a test or ``None``.

        ``seed_x`` is a single input without batch axis.
        """
        start = time.perf_counter()
        x = np.asarray(seed_x, dtype=np.float64)[None, ...]
        # Line 4-5: the seed's agreed class (skip ascent if models already
        # disagree — the seed itself is difference-inducing).
        tapes = self._run_models(x)
        outputs = [tape.outputs() for tape in tapes]
        if bool(self.oracle.differs_from_outputs(outputs)[0]):
            test = GeneratedTest(
                x=x[0].copy(), seed_index=seed_index, iterations=0,
                predictions=self.oracle.predictions_from_outputs(
                    outputs)[:, 0],
                seed_class=None, elapsed=time.perf_counter() - start)
            self._absorb_tapes(tapes)
            return test
        seed_class = None
        if self.task == "classification":
            seed_class = int(outputs[0].argmax(axis=1)[0])
        # Line 6: randomly pick the model to push away from the rest.
        target_index = int(self.rng.integers(0, len(self.models)))
        objective = JointObjective(
            self._differential_objective(x, target_index, seed_class),
            self.coverage_factory(self.trackers, self.rng),
            self.hp.lambda2)
        self.constraint.setup(x[0], self.rng)

        for iteration in range(1, self.hp.max_iterations + 1):
            grad = objective.step_gradient_from_tapes(tapes)  # line 11
            grad = self.constraint.apply(grad, x)      # line 13
            # Normalizing after the constraint keeps the effective step
            # size s meaningful regardless of how much of the gradient
            # the constraint masked away.
            grad = normalize_gradient(grad)
            x = self.constraint.project(x + self.hp.step * grad, x)  # line 14
            # The stepped input's tapes serve the oracle check now and, if
            # the models still agree, the next iteration's gradients.
            tapes = self._run_models(x)
            outputs = [tape.outputs() for tape in tapes]
            if bool(self.oracle.differs_from_outputs(outputs)[0]):  # line 15
                test = GeneratedTest(
                    x=x[0].copy(), seed_index=seed_index,
                    iterations=iteration,
                    predictions=self.oracle.predictions_from_outputs(
                        outputs)[:, 0],
                    seed_class=seed_class,
                    elapsed=time.perf_counter() - start)
                self._absorb_tapes(tapes)
                return test
        return None

    def _absorb_tapes(self, tapes):
        """Line 18: fold a new difference-inducing input into coverage,
        reusing the tapes that already exist for it.

        ``update`` accepts tapes directly, so custom trackers only need
        the classic ``update`` protocol.
        """
        if not self.update_coverage_with_tests:
            return
        for tracker, tape in zip(self.trackers, tapes):
            tracker.update(tape)

    # -- seed-set driver ----------------------------------------------------------
    def run(self, seeds, desired_coverage=None, max_tests=None,
            cycle=False, max_seed_visits=None):
        """Process a seed set (the paper's main loop, lines 3-21).

        Stops when seeds are exhausted (or, with ``cycle=True``, keeps
        cycling through them as Algorithm 1's ``cycle(x in seed_set)``
        does) until ``desired_coverage`` (mean NCov across models),
        ``max_tests``, or the ``max_seed_visits`` budget is reached.
        """
        seeds = np.asarray(seeds, dtype=np.float64)
        result = GenerationResult()
        start = time.perf_counter()
        indices = range(seeds.shape[0])
        while True:
            for i in indices:
                if self._done(result, desired_coverage, max_tests):
                    break
                if (max_seed_visits is not None
                        and result.seeds_processed >= max_seed_visits):
                    break
                test = self.generate_from_seed(seeds[i], seed_index=i)
                result.seeds_processed += 1
                if test is None:
                    result.seeds_exhausted += 1
                elif test.iterations == 0:
                    result.seeds_disagreed += 1
                    result.tests.append(test)
                else:
                    result.tests.append(test)
            budget_hit = (max_seed_visits is not None
                          and result.seeds_processed >= max_seed_visits)
            if (not cycle or budget_hit
                    or self._done(result, desired_coverage, max_tests)):
                break
        result.elapsed = time.perf_counter() - start
        result.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return result

    def _done(self, result, desired_coverage, max_tests):
        if max_tests is not None and len(result.tests) >= max_tests:
            return True
        if desired_coverage is not None:
            mean_cov = float(np.mean([t.coverage() for t in self.trackers]))
            if mean_cov >= desired_coverage:
                return True
        return False

    def mean_coverage(self):
        """Mean neuron coverage across the tested models."""
        return float(np.mean([t.coverage() for t in self.trackers]))
