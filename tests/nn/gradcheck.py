"""Finite-difference gradient checking helpers shared by the nn tests."""

from __future__ import annotations

import numpy as np

__all__ = ["numeric_input_gradient", "check_layer_gradients"]


def numeric_input_gradient(func, x, indices, eps=1e-6):
    """Central-difference derivative of scalar ``func(x)`` at ``indices``."""
    grads = {}
    for idx in indices:
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grads[idx] = (func(xp) - func(xm)) / (2.0 * eps)
    return grads


def check_layer_gradients(layer, x, rng, atol=1e-7, n_probe=6,
                          training=False):
    """Verify a layer's input and parameter gradients against numerics.

    Uses a random linear functional of the layer output as the scalar
    loss: ``L = sum(W * layer(x))``.  Probes ``n_probe`` random input
    coordinates and parameter coordinates.
    """
    out, _ = layer.forward(x, training=training)
    weights = rng.normal(size=out.shape)

    def loss_of_input(x_probe):
        return float((layer.apply(x_probe, training=training)
                      * weights).sum())

    # Analytic pass: forward (returning ctx) then backward with
    # dL/dout = weights.
    for param in layer.parameters():
        param.zero_grad()
    _, ctx = layer.forward(x, training=training)
    grad_in = layer.backward(ctx, weights)

    flat_indices = [tuple(rng.integers(0, s) for s in x.shape)
                    for _ in range(n_probe)]
    numeric = numeric_input_gradient(loss_of_input, x, flat_indices)
    for idx, num in numeric.items():
        assert abs(grad_in[idx] - num) < atol, (
            f"input grad mismatch at {idx}: {grad_in[idx]} vs {num}")

    for param in layer.parameters():
        value = param.value

        def loss_of_param(probe, param=param, original=value.copy()):
            param.value[...] = probe
            try:
                return loss_of_input(x)
            finally:
                param.value[...] = original

        probes = [tuple(rng.integers(0, s) for s in value.shape)
                  for _ in range(min(n_probe, value.size))]
        numeric = numeric_input_gradient(loss_of_param, value.copy(), probes)
        for idx, num in numeric.items():
            assert abs(param.grad[idx] - num) < atol, (
                f"{param.name} grad mismatch at {idx}: "
                f"{param.grad[idx]} vs {num}")
