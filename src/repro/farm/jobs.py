"""Farm job specs: what a tenant asks the daemon to do.

A job is a JSON-safe dict all the way down — it crosses the submit
socket, lives in the queue journal, and comes back from ``repro
status`` without ever holding a live object.  Two kinds:

``fuzz``
    Advance the named corpus store to ``rounds`` total completed waves
    (a :class:`~repro.corpus.session.FuzzSession` target, not an
    increment), drawing an initial ``seeds``-sized pool when the store
    is fresh.  Resumable at wave granularity: a killed daemon re-runs
    the job and the session continues from the store's checkpoint.

``generate``
    One deterministic DeepXplore generation pass: ``seeds`` inputs
    sampled from the dataset, ascended by a campaign, results absorbed
    into the store.  Trackers start empty on purpose — the pass is a
    pure function of its spec, never of the store's current state, so
    re-running a half-applied job converges (content-addressed entries
    dedup, coverage OR-merges the same masks).

``federate``
    A ``fuzz`` job whose waves execute through a shared shard ledger
    (``campaign`` names the campaign directory, reachable by every
    participating host — see :mod:`repro.dist.shards`).  Submit the
    same federate spec to several daemons and they split each wave's
    shards between them, stealing from hosts that die (``lease``
    seconds after the claim, default 60 — a throughput knob, like
    ``workers``); each host's store converges bit-identically to a
    solo run.

``compact-merge``
    Background compaction, step 1: fold the ``sources`` tenant stores
    into this job's (archive) store via the snapshot-safe
    :meth:`CorpusStore.merge` — sources may be mid-fuzz.

``compact-distill``
    Background compaction, step 2: shrink the store to a
    coverage-preserving regression suite (:meth:`CorpusStore.distill`)
    and prune the fuzz scheduler of dropped entries.  Scheduled
    automatically by a daemon started with ``--compact-every``.

The identity fields (``wave_size``, ``shard_size``, ``seed``,
``ascent``, ``constraint``) mean exactly what they mean on the ``repro
fuzz`` command line; ``workers`` is campaign fan-out inside the job and
is throughput-only as everywhere else.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field

from repro.errors import FarmError

__all__ = ["Job", "JOB_KINDS", "JOB_STATUSES", "normalize_spec"]

JOB_KINDS = ("fuzz", "generate", "federate", "compact-merge",
             "compact-distill")

JOB_STATUSES = ("queued", "running", "done", "failed")

#: Store names become directories under ``<root>/stores/``; keep them
#: path-safe and unsurprising.
_STORE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Spec fields a submitter may set, with their defaults.  ``None``
#: means required.
_SPEC_FIELDS = {
    "kind": "fuzz",
    "store": None,
    "dataset": "mnist",
    "rounds": 2,
    "seeds": 16,
    "wave_size": 8,
    "shard_size": 8,
    "seed": 0,
    "ascent": "vanilla",
    "beta": None,
    "overshoot": None,
    "constraint": "default",
    "workers": 1,
    "campaign": None,     # federate: shared campaign directory
    "lease": None,        # federate: seconds before a claim is stealable
    "sources": None,      # compact-merge: store names to fold in
}


def normalize_spec(spec):
    """Validate + default a submitted job spec; returns a clean dict.

    Raises :class:`~repro.errors.FarmError` — which the server maps to
    a one-line submit rejection — rather than letting a bad spec crash
    a worker thread three retries deep.
    """
    if not isinstance(spec, dict):
        raise FarmError(f"job spec must be a mapping, got {type(spec).__name__}")
    unknown = set(spec) - set(_SPEC_FIELDS)
    if unknown:
        raise FarmError(f"unknown job spec field(s): {sorted(unknown)}")
    clean = dict(_SPEC_FIELDS)
    clean.update({k: v for k, v in spec.items() if v is not None})
    if clean["store"] is None:
        raise FarmError("job spec needs a store name")
    if not _STORE_NAME.match(str(clean["store"])):
        raise FarmError(
            f"bad store name {clean['store']!r}; use letters, digits, "
            "dot, dash, underscore")
    if clean["kind"] not in JOB_KINDS:
        raise FarmError(
            f"unknown job kind {clean['kind']!r}; want one of {JOB_KINDS}")
    if clean["kind"] == "federate":
        if clean["campaign"] is None:
            raise FarmError(
                "federate jobs need a campaign directory (the shared "
                "shard-ledger root every participating host can reach)")
        clean["campaign"] = str(clean["campaign"])
        if clean["lease"] is not None:
            try:
                clean["lease"] = float(clean["lease"])
            except (TypeError, ValueError):
                raise FarmError(f"job lease must be a number, "
                                f"got {clean['lease']!r}") from None
            if clean["lease"] <= 0:
                raise FarmError(
                    f"job lease must be > 0 seconds, got {clean['lease']}")
    elif clean["campaign"] is not None:
        raise FarmError(
            f"campaign only applies to federate jobs, not "
            f"{clean['kind']!r}")
    elif clean["lease"] is not None:
        raise FarmError(
            f"lease only applies to federate jobs, not {clean['kind']!r}")
    if clean["kind"] == "compact-merge":
        sources = clean["sources"]
        if not isinstance(sources, (list, tuple)) or not sources:
            raise FarmError(
                "compact-merge jobs need a non-empty list of source "
                "store names")
        for name in sources:
            if not _STORE_NAME.match(str(name)):
                raise FarmError(
                    f"bad source store name {name!r}; use letters, "
                    "digits, dot, dash, underscore")
            if str(name) == str(clean["store"]):
                raise FarmError(
                    f"compact-merge source {name!r} is the destination "
                    "store itself")
        clean["sources"] = [str(name) for name in sources]
    elif clean["sources"] is not None:
        raise FarmError(
            f"sources only applies to compact-merge jobs, not "
            f"{clean['kind']!r}")
    for key in ("rounds", "seeds", "wave_size", "shard_size", "workers"):
        try:
            clean[key] = int(clean[key])
        except (TypeError, ValueError):
            raise FarmError(f"job {key} must be an integer, "
                            f"got {clean[key]!r}") from None
        if clean[key] < 1:
            raise FarmError(f"job {key} must be >= 1, got {clean[key]}")
    clean["seed"] = int(clean["seed"])
    return clean


@dataclass
class Job:
    """One queued/running/finished unit of farm work."""

    job_id: str
    spec: dict
    status: str = "queued"
    attempts: int = 0
    not_before: float = 0.0     # wall-clock gate for retry backoff
    submitted: float = 0.0
    error: str = None
    result: dict = field(default_factory=dict)

    @property
    def store(self):
        return self.spec["store"]

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, record):
        return cls(**record)

    def describe(self):
        """One status line (the ``repro status`` table row)."""
        extra = ""
        if self.status == "failed" and self.error:
            extra = f"  error: {self.error}"
        elif self.status == "queued" and self.attempts:
            extra = f"  retry #{self.attempts}"
        elif self.status == "done" and self.result:
            parts = [f"{k}={self.result[k]}" for k in
                     ("completed_rounds", "new_tests", "entries")
                     if k in self.result]
            extra = "  " + " ".join(parts)
        return (f"{self.job_id:<12} {self.spec['kind']:<9} "
                f"{self.store:<16} {self.status:<8}{extra}")
