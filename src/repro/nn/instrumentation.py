"""Forward/backward pass counting.

:meth:`repro.nn.network.Network.run` notifies every active counter once
per executed forward pass, and :class:`repro.nn.tape.ForwardPass` does
the same for each backward derived from a tape.  Counters are installed
with a context manager rather than as state on the :class:`Network`, so
instrumentation never adds mutable per-network state — the tape refactor
exists precisely to keep networks stateless between calls.

>>> with PassCounter() as counter:
...     net.predict(x)
>>> counter.forwards[net.name]
1

``benchmarks/test_forward_reuse.py`` uses this to assert the generation
engines execute exactly one forward pass per model per ascent iteration.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["PassCounter", "PayloadCounter", "record_forward",
           "record_backward", "record_deserialization"]

#: Currently installed counters (innermost last).  Module-level on
#: purpose: counting must work without threading a counter object through
#: every engine API.
_ACTIVE = []

#: Installed payload counters (see :class:`PayloadCounter`).
_ACTIVE_PAYLOAD = []


def record_forward(network, batch_size):
    """Notify active counters that ``network`` ran one forward pass."""
    for counter in _ACTIVE:
        counter._record(counter.forwards, counter.forward_samples,
                        network.name, batch_size)


def record_backward(network, batch_size):
    """Notify active counters that one backward was derived on ``network``."""
    for counter in _ACTIVE:
        counter._record(counter.backwards, counter.backward_samples,
                        network.name, batch_size)


def record_deserialization(name):
    """Notify payload counters that one model payload was rebuilt.

    Called by :func:`repro.nn.config.network_from_payload` — the
    weights-and-all reconstruction campaign/farm workers pay when their
    per-worker cache misses.
    """
    for counter in _ACTIVE_PAYLOAD:
        counter.deserializations[name] += 1


class PassCounter:
    """Counts forward/backward passes per network name while installed.

    Attributes
    ----------
    forwards / backwards:
        ``Counter`` mapping network name to number of passes.
    forward_samples / backward_samples:
        Same keys, but summing the batch sizes of those passes.
    """

    def __init__(self):
        self.forwards = Counter()
        self.backwards = Counter()
        self.forward_samples = Counter()
        self.backward_samples = Counter()

    def _record(self, passes, samples, name, batch_size):
        passes[name] += 1
        samples[name] += int(batch_size)

    def reset(self):
        self.forwards.clear()
        self.backwards.clear()
        self.forward_samples.clear()
        self.backward_samples.clear()

    def total_forwards(self):
        return int(sum(self.forwards.values()))

    def total_backwards(self):
        return int(sum(self.backwards.values()))

    def __enter__(self):
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE.remove(self)
        return False

    def __repr__(self):
        return (f"PassCounter(forwards={dict(self.forwards)}, "
                f"backwards={dict(self.backwards)})")


class PayloadCounter:
    """Counts model-payload deserializations per network name.

    The per-worker model caches (``repro.core.campaign``) exist so a
    long-lived worker rebuilds each model from its pickled payload
    exactly once; this counter is how tests pin that contract:

    >>> with PayloadCounter() as counter:
    ...     session.run(rounds)
    >>> counter.total()            # == len(models), not waves * models
    """

    def __init__(self):
        self.deserializations = Counter()

    def total(self):
        return int(sum(self.deserializations.values()))

    def reset(self):
        self.deserializations.clear()

    def __enter__(self):
        _ACTIVE_PAYLOAD.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_PAYLOAD.remove(self)
        return False

    def __repr__(self):
        return f"PayloadCounter({dict(self.deserializations)})"
