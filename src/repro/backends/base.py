"""The compute-backend contract the generation stack runs against.

Everything above the forward/backward substrate — engines, coverage
trackers, oracles, campaigns — consumes models through a small implicit
contract: run a batch and get a tape, ask for predictions, ask for
metadata (dtype, output shape, neuron layout).  :class:`ComputeBackend`
makes that contract explicit, in the shape popularized by foolbox's
``DifferentiableModel`` adapters: a ``forward`` that records the pass,
plus ``bounds``/``preprocessing``/``num_classes`` so external runtimes
can describe their input domain.

Two kinds of backends exist:

* **Differentiable** backends (the NumPy reference implementation)
  return a :class:`~repro.nn.tape.ForwardPass` from :meth:`forward` and
  can drive the joint-optimization ascent end to end.
* **Inference-only** backends (e.g. ONNX Runtime) implement
  :meth:`predict` but raise :class:`~repro.errors.ConfigError` from
  :meth:`forward`; they serve differential prediction and evaluation,
  not gradient ascent.

The engine layer accepts either a raw :class:`~repro.nn.network.Network`
or a backend wrapping one — :func:`repro.backends.unwrap_network`
normalizes at the seam.
"""

from __future__ import annotations

import abc

__all__ = ["ComputeBackend"]


class ComputeBackend(abc.ABC):
    """Adapter ABC between a model runtime and the generation stack.

    Concrete backends wrap one model.  The properties mirror what the
    engines and trackers actually read today, so wrapping the NumPy
    network is zero-cost delegation and an external runtime only has to
    fill in the same surface.
    """

    #: Registry key, e.g. ``"numpy"`` — set by each subclass.
    kind = None

    # -- identity and input domain ---------------------------------------
    @property
    @abc.abstractmethod
    def name(self):
        """Model name (coverage snapshots and corpus stores key on it)."""

    @property
    @abc.abstractmethod
    def dtype(self):
        """The parameter/compute dtype as a :class:`numpy.dtype`."""

    @property
    @abc.abstractmethod
    def output_shape(self):
        """Per-sample output shape tuple (no batch axis)."""

    @property
    def bounds(self):
        """(lo, hi) of the valid input domain; pixels default to [0, 1]."""
        return (0.0, 1.0)

    @property
    def preprocessing(self):
        """(mean, std) applied to raw inputs before the wrapped runtime.

        The NumPy networks bake normalization into a ``FixedScale``
        layer, so the reference backend reports the identity; adapters
        for runtimes that expect externally-normalized inputs report
        their own.
        """
        return (0.0, 1.0)

    @property
    def num_classes(self):
        """Number of classes, or ``None`` for regression heads."""
        shape = self.output_shape
        if len(shape) == 1 and shape[0] > 1:
            return int(shape[0])
        return None

    # -- execution --------------------------------------------------------
    @abc.abstractmethod
    def forward(self, x, training=False, workspace=None):
        """Run a batch and return a recorded, differentiable tape.

        Inference-only backends raise
        :class:`~repro.errors.ConfigError` here instead.
        """

    @abc.abstractmethod
    def predict(self, x, batch_size=256):
        """Model outputs for a batch of raw inputs (no tape)."""

    def __repr__(self):
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"dtype={self.dtype}, output_shape={self.output_shape})")
