"""Ablation: seed-selection strategies.

Low-confidence seeds sit near decision boundaries and should convert to
difference-inducing inputs in fewer ascent iterations than uniform
random seeds.
"""

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import DeepXplore, PAPER_HYPERPARAMS, LightingConstraint
from repro.datasets import load_dataset
from repro.extensions import select_seeds
from repro.models import get_trio
from repro.utils.tables import render_table


@pytest.mark.parametrize("strategy", ["random", "balanced",
                                      "low-confidence"])
def test_ablation_seed_selection(benchmark, strategy):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = select_seeds(strategy, dataset, 20, rng=51, models=models)
    hp = PAPER_HYPERPARAMS["mnist"]

    def run():
        engine = DeepXplore(models, hp, LightingConstraint(), rng=53)
        return engine.run(seeds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ascent = [t.iterations for t in result.tests if t.iterations > 0]
    print()
    print(render_table(
        ["strategy", "# diffs", "pre-disagreed", "mean iterations"],
        [[strategy, result.difference_count, result.seeds_disagreed,
          round(float(np.mean(ascent)), 1) if ascent else "-"]],
        title="[ablation] seed selection"))
