"""Campaign scaling: wall-clock vs worker count on one seed corpus.

Runs the same sharded campaign with 1, 2, and 4 workers and records the
wall-clock for each.  Two properties are asserted:

* **Determinism** — every worker count finds the identical test set and
  merged coverage (the campaign contract; changing ``workers`` may only
  change speed).
* **Scaling** — on a multi-core machine the best parallel run beats the
  serial one (with slack for pool startup); on a single-core machine
  only a generous overhead bound is enforced, since no speedup is
  physically possible there.
"""

import os
import time

import numpy as np

from benchmarks.conftest import SCALE, SEED
from repro.core import Campaign, LightingConstraint, PAPER_HYPERPARAMS
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.utils.tables import render_table

WORKER_COUNTS = (1, 2, 4)
N_SEEDS = 120
SHARD_SIZE = 12


def test_campaign_throughput(benchmark):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    # Tile the smoke test set up to N_SEEDS so every worker count chews
    # the same, large-enough corpus.
    x = dataset.x_test
    seeds = np.concatenate([x] * -(-N_SEEDS // x.shape[0]))[:N_SEEDS]
    hp = PAPER_HYPERPARAMS["mnist"]

    def run_all():
        outcomes = {}
        for workers in WORKER_COUNTS:
            campaign = Campaign(models, hp, LightingConstraint(),
                                workers=workers, shard_size=SHARD_SIZE,
                                seed=SEED + 29)
            start = time.perf_counter()
            result = campaign.run(seeds)
            outcomes[workers] = (result, time.perf_counter() - start)
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    serial_result, serial_elapsed = outcomes[1]
    rows = []
    for workers in WORKER_COUNTS:
        result, elapsed = outcomes[workers]
        rows.append([workers, -(-len(seeds) // SHARD_SIZE),
                     result.difference_count, round(elapsed, 2),
                     round(serial_elapsed / elapsed, 2)])
    print()
    print(render_table(
        ["workers", "shards", "# diffs", "seconds", "speedup vs 1"],
        rows, title="[campaign] wall-clock vs worker count"))

    # Determinism: worker count changes speed only.
    for workers in WORKER_COUNTS[1:]:
        result, _ = outcomes[workers]
        assert result.difference_count == serial_result.difference_count
        assert [t.seed_index for t in result.tests] == \
            [t.seed_index for t in serial_result.tests]
        assert result.coverage == serial_result.coverage
    assert serial_result.difference_count > 0

    # Scaling: parallel must not lose to serial where the hardware
    # allows a win.  The bound is deliberately loose — this runs in
    # tier-1 CI on shared runners, so it guards against pathological
    # fan-out overhead, not against scheduler noise.
    best_parallel = min(outcomes[w][1] for w in WORKER_COUNTS[1:])
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert best_parallel < serial_elapsed * 1.25, (
            f"no parallel speedup on {cores} cores: best {best_parallel:.2f}s"
            f" vs serial {serial_elapsed:.2f}s")
    else:
        # Single core: no speedup is possible; only bound the overhead.
        assert best_parallel < serial_elapsed * 2.0
