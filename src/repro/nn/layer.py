"""Layer protocol for the numpy NN framework.

A :class:`Layer` is *stateless between calls*: :meth:`forward` returns
``(output, ctx)`` where ``ctx`` carries everything a subsequent
:meth:`backward` needs, and :meth:`backward` takes that context
explicitly.  Nothing about an execution is stored on the layer, so any
number of forward passes can be in flight at once and any number of
backwards can be taken from one recorded forward (see
:class:`repro.nn.tape.ForwardPass`).  The framework is deliberately
*define-by-run over a fixed sequence*: DeepXplore only needs sequential
(optionally residual) models, whole-layer activation recording, and
gradients of arbitrary internal neurons with respect to the input — all
of which a layer list supports without a general autograd graph.

Neuron semantics (used by :mod:`repro.coverage`): layers advertise how many
*neurons* they expose via :meth:`neuron_count` and map a raw layer output to
per-neuron scalars via :meth:`neuron_outputs`.  Following the original
DeepXplore implementation, a convolutional feature-map channel is a single
neuron whose output is the spatial mean; a dense unit is one neuron.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base class for all layers."""

    #: whether this layer's outputs participate in neuron coverage
    exposes_neurons = False

    def __init__(self, name=None):
        self.name = name or type(self).__name__.lower()

    # -- core protocol -----------------------------------------------------
    def forward(self, x, training=False, workspace=None):
        """Compute the layer output for ``x``.

        Returns ``(output, ctx)`` where ``ctx`` is an opaque backward
        context (``None`` when the backward needs nothing).  The context
        must be treated as immutable by :meth:`backward`.

        ``workspace`` is an optional :class:`repro.nn.workspace.Workspace`
        the layer may draw scratch/output buffers from.  Workspace-backed
        outputs and contexts are only valid until the next pass that
        shares the workspace; callers that keep tapes alive across
        forwards must not pass one.  Layers never store the workspace.
        """
        raise NotImplementedError

    def backward(self, ctx, grad_out, accumulate=True):
        """Propagate ``grad_out`` to the layer input.

        ``ctx`` is the context returned by the :meth:`forward` call being
        differentiated.  Parameter gradients are accumulated into
        ``Parameter.grad`` only when ``accumulate`` is true — input-only
        gradients (the DeepXplore hot path) skip that work entirely.
        Must not mutate ``ctx`` or any other layer state.
        """
        raise NotImplementedError

    def apply(self, x, training=False):
        """Inference convenience: :meth:`forward` without the context."""
        out, _ = self.forward(x, training=training)
        return out

    def parameters(self):
        """Trainable :class:`~repro.nn.parameter.Parameter` objects."""
        return []

    def buffers(self):
        """Non-trainable state to serialize (e.g. batch-norm running stats).

        Returns a dict mapping buffer name to the array itself; mutating
        the returned arrays in place updates the layer.
        """
        return {}

    def cast(self, dtype):
        """Convert parameters (and any floating buffers) to ``dtype``.

        In-place on the layer.  Layers that own non-parameter arrays
        (batch-norm running stats, fixed scaling vectors) or child
        layers override this and call ``super().cast(dtype)``.
        """
        for param in self.parameters():
            param.cast(dtype)
        return self

    def output_shape(self, input_shape):
        """Shape (without batch axis) produced for ``input_shape``."""
        raise NotImplementedError

    # -- neuron bookkeeping --------------------------------------------------
    def neuron_count(self, input_shape):
        """Number of coverage neurons this layer exposes."""
        return 0

    def neuron_outputs(self, output):
        """Map a raw batched ``output`` to shape ``(batch, neuron_count)``.

        Default: flatten feature axes for dense-style outputs; conv layers
        override with a spatial mean per channel.
        """
        return output.reshape(output.shape[0], -1)

    def neuron_seed(self, output_shape, neuron_index, dtype=np.float64):
        """Gradient seed selecting ``neuron_index``'s scalar output.

        Returns an array shaped like one unbatched output whose inner
        product with the layer output equals the neuron's scalar value (as
        defined by :meth:`neuron_outputs`).  Used to start backpropagation
        from an arbitrary hidden neuron.  ``dtype`` should match the tape
        being differentiated so backward never silently upcasts.
        """
        seed = np.zeros(output_shape, dtype=dtype)
        seed.reshape(-1)[neuron_index] = 1.0
        return seed

    # -- misc ---------------------------------------------------------------
    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"
