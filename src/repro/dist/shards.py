"""Work-stealing shard ledger: who runs which shard, on which host.

A federated campaign round is a set of shards (the same contiguous
slices :func:`repro.core.campaign.shard_corpus` produces) plus a shared
**ledger** — one JSON file in a campaign directory every participating
host can reach (shared filesystem; on one box, any common path).  Hosts
claim shards from the ledger via lock-protected compare-and-swap, run
them through :meth:`Campaign.execute_shard`, and publish the outcome as
an ``.npz`` result file next to the ledger.  The scheme is
coordinator-less and work-stealing by construction: an idle host claims
whatever is unclaimed, and a claim whose owner died (dead pid on the
same host, expired lease otherwise) is stolen by the next claimer.

Why this preserves bit-identity with a solo run (docs/DISTRIBUTED.md
has the full argument):

* Shard identity is ``(campaign seed, shard index)``.  The campaign
  seed pins every shard's spawned random stream
  (:func:`repro.utils.rng.spawn_seed_sequences` children depend only on
  the root identity and position), so a shard's outcome is a pure
  function of the shard — not of the host, the claim order, or the
  wall-clock.
* Every host loads **all** result files and merges them in shard-index
  order, the same order-independent merge a local campaign does.
* Double execution is harmless: a stolen shard re-run elsewhere writes
  a result with identical logical content (only timing floats differ,
  and those never reach the corpus), and result files land via atomic
  replace.

Ledger keys are derived from the campaign's seed via :func:`round_key`,
so one campaign directory serves every round of a multi-round fuzz
session without collisions.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import socket
import time
from contextlib import contextmanager

import numpy as np

from repro.core.engine import GeneratedTest, GenerationResult
from repro.corpus.store import input_hash
from repro.errors import FarmError
from repro.farm.locks import _pid_alive
from repro.utils.atomicio import atomic_write_bytes, atomic_write_json
from repro.utils.faults import fault_point

__all__ = ["ShardLedger", "LedgerShardRunner", "round_key", "shard_id",
           "shard_digest", "shard_hashes", "encode_outcome",
           "decode_outcome", "DEFAULT_LEASE"]

LEDGER_VERSION = 1

#: Seconds after which another host's claim may be stolen.  Claims by a
#: *local* dead pid are stolen immediately (pid liveness is checkable on
#: the same machine); the lease is the cross-host fallback.
DEFAULT_LEASE = 60.0


def round_key(seed):
    """Filesystem-safe ledger key for one campaign's seed identity.

    For a plain int seed: ``seed<N>``.  For a ``SeedSequence`` (what a
    :class:`~repro.corpus.session.FuzzSession` hands each round's
    campaign): the spawn-key path plus a digest of the full
    ``(entropy, spawn_key)`` identity — readable *and* collision-safe,
    and identical on every host because SeedSequence identity is pure
    data.
    """
    if isinstance(seed, np.random.SeedSequence):
        ident = repr((seed.entropy, tuple(int(k) for k in seed.spawn_key)))
        digest = hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]
        path = ".".join(str(int(k)) for k in seed.spawn_key) or "root"
        return f"r{path}-{digest}"
    return f"seed{int(seed)}"


def shard_id(shard_index):
    """Ledger id of one shard (sortable, fixed-width)."""
    return f"s{int(shard_index):05d}"


def shard_hashes(shard):
    """The shard's seeds' content hashes, in shard order.

    These are exactly the corpus entry hashes of the seeds (entry
    hashes *are* ``input_hash`` of the seed arrays), which is what lets
    the ledger score a shard's locality against a host's store
    manifest without touching the arrays.
    """
    return [input_hash(x) for x in shard.seeds]


def shard_digest(shard):
    """Content digest of a shard: SHA-256 over its seeds' content hashes.

    Chunk-for-chunk identical to what
    :meth:`repro.corpus.scheduler.SeedScheduler.shard_plan` computes
    from entry hashes, because entry hashes *are* ``input_hash`` of the
    seed arrays.  Two hosts only agree to share a shard when they agree
    on its exact content.
    """
    hashes = shard_hashes(shard)
    return hashlib.sha256("|".join(hashes).encode("utf-8")).hexdigest()


# -- outcome serialization --------------------------------------------------
def encode_outcome(outcome):
    """Serialize one ``_run_shard`` outcome dict to ``.npz`` bytes.

    Test input arrays keep their exact dtype/bytes; everything scalar
    rides in a JSON header.  ``decode_outcome`` is the exact inverse of
    everything the corpus absorb path reads — timing floats round-trip
    too, but nothing downstream persists them.
    """
    result = outcome["result"]
    header = {
        "version": LEDGER_VERSION,
        "shard_index": int(outcome["shard_index"]),
        "seeds_processed": int(result.seeds_processed),
        "seeds_disagreed": int(result.seeds_disagreed),
        "seeds_exhausted": int(result.seeds_exhausted),
        "elapsed": float(result.elapsed),
        "tests": [{
            "seed_index": int(test.seed_index),
            "iterations": int(test.iterations),
            "predictions": np.asarray(test.predictions).tolist(),
            "seed_class": (None if test.seed_class is None
                           else json.loads(json.dumps(test.seed_class))),
            "elapsed": float(test.elapsed),
        } for test in result.tests],
        "coverage_configs": [{
            "network": state["network"],
            "total_neurons": int(state["total_neurons"]),
            "threshold": float(state["threshold"]),
            "scaled": bool(state["scaled"]),
        } for state in outcome["coverage"]],
    }
    arrays = {"header": np.array(json.dumps(header, sort_keys=True))}
    for i, test in enumerate(result.tests):
        arrays[f"test{i}_x"] = np.asarray(test.x)
    for i, state in enumerate(outcome["coverage"]):
        arrays[f"cov{i}_tracked"] = np.asarray(state["tracked"], dtype=bool)
        arrays[f"cov{i}_covered"] = np.asarray(state["covered"], dtype=bool)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def decode_outcome(source):
    """Inverse of :func:`encode_outcome` (``source``: path or bytes)."""
    if isinstance(source, (bytes, bytearray)):
        source = io.BytesIO(bytes(source))
    with np.load(source, allow_pickle=False) as data:
        header = json.loads(str(data["header"][()]))
        tests = []
        for i, spec in enumerate(header["tests"]):
            tests.append(GeneratedTest(
                x=np.asarray(data[f"test{i}_x"]),
                seed_index=int(spec["seed_index"]),
                iterations=int(spec["iterations"]),
                predictions=np.asarray(spec["predictions"]),
                seed_class=spec["seed_class"],
                elapsed=float(spec["elapsed"])))
        coverage = []
        for i, config in enumerate(header["coverage_configs"]):
            state = dict(config)
            state["tracked"] = np.asarray(data[f"cov{i}_tracked"],
                                          dtype=bool)
            state["covered"] = np.asarray(data[f"cov{i}_covered"],
                                          dtype=bool)
            coverage.append(state)
    result = GenerationResult(
        tests=tests,
        seeds_processed=int(header["seeds_processed"]),
        seeds_disagreed=int(header["seeds_disagreed"]),
        seeds_exhausted=int(header["seeds_exhausted"]),
        elapsed=float(header["elapsed"]))
    return {"shard_index": int(header["shard_index"]),
            "result": result,
            "coverage": coverage}


# -- the ledger -------------------------------------------------------------
class ShardLedger:
    """Lock-protected CAS ledger over one round's shards.

    State machine per shard: ``pending`` → ``claimed`` (host, pid,
    claimed_at) → ``done``.  A ``claimed`` entry is *stale* — and thus
    claimable again — when its pid is dead (only checkable for claims
    made on this host) or its lease has expired.  Every mutation happens
    under a token-holding lock file, so two claimers — whether separate
    processes or two threads of one daemon — can never both win the
    same shard while the owner is healthy.

    ``host``/``pid``/``clock``/``lease`` are injectable for tests; the
    defaults identify the calling process.
    """

    def __init__(self, campaign_dir, round_key, host=None, pid=None,
                 lease=DEFAULT_LEASE, clock=time.time):
        self.dir = os.path.join(os.path.abspath(campaign_dir), "rounds",
                                str(round_key))
        self.results_dir = os.path.join(self.dir, "results")
        self.ledger_path = os.path.join(self.dir, "ledger.json")
        self._lock_path = os.path.join(self.dir, "LEDGER_LOCK")
        self.round_key = str(round_key)
        self.host = host if host is not None else socket.gethostname()
        self.pid = int(pid if pid is not None else os.getpid())
        self.lease = float(lease)
        self.clock = clock
        # The lock token must distinguish two threads of one process:
        # a daemon can host several federated jobs at once, and pid
        # alone (StoreLock's identity) would let them break each
        # other's lock mid-CAS.
        self._token = f"{self.host}:{self.pid}:{id(self)}"
        os.makedirs(self.results_dir, exist_ok=True)

    # -- CAS lock ------------------------------------------------------
    @contextmanager
    def _locked(self):
        payload = (json.dumps({"host": self.host, "pid": self.pid,
                               "token": self._token,
                               "time": float(self.clock())},
                              sort_keys=True) + "\n").encode("utf-8")
        while True:
            try:
                fd = os.open(self._lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if self._lock_stale():
                    try:
                        os.unlink(self._lock_path)
                    except FileNotFoundError:
                        pass
                    continue
                time.sleep(0.005)
                continue
            # No fsync: the lock is transient, and a torn holder record
            # after a crash reads as stale and is broken (see
            # _lock_stale) — durability would buy nothing, and a disk
            # flush per CAS is the hot ledger path's whole cost.
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            break
        try:
            yield
        finally:
            try:
                os.unlink(self._lock_path)
            except FileNotFoundError:
                pass

    def _lock_stale(self):
        try:
            with open(self._lock_path, "r", encoding="utf-8") as handle:
                holder = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return True     # torn or already gone: race for it
        if holder.get("host") == self.host \
                and not _pid_alive(holder.get("pid")):
            return True     # local dead pid: the kill -9 aftermath
        return float(self.clock()) - float(holder.get("time", 0)) \
            > self.lease

    # -- ledger state --------------------------------------------------
    def _load(self):
        try:
            with open(self.ledger_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return {"version": LEDGER_VERSION, "round": self.round_key,
                    "shards": {}}

    def _save(self, state):
        atomic_write_json(self.ledger_path, state)

    def ensure(self, units):
        """Register this round's shards (idempotent, digest-validated).

        ``units`` is ``[{"shard_id", "digest"}]``, each optionally
        carrying ``"hashes"`` — the shard's seed content hashes, which
        :meth:`claim` scores locality against.  Every participating
        host calls this with the plan *it* computed; the first writer
        creates the entries, later hosts validate against them (and
        backfill hashes an earlier writer omitted).  A digest mismatch
        means a host's scheduler diverged — that host must not run
        anything, so it is an error, not a merge.
        """
        with self._locked():
            state = self._load()
            shards = state["shards"]
            changed = False
            for unit in units:
                sid, digest = unit["shard_id"], unit["digest"]
                hashes = unit.get("hashes")
                existing = shards.get(sid)
                if existing is None:
                    entry = {"digest": digest, "status": "pending"}
                    if hashes:
                        entry["hashes"] = [str(h) for h in hashes]
                    shards[sid] = entry
                    changed = True
                elif existing["digest"] != digest:
                    raise FarmError(
                        f"shard {sid} of round {self.round_key} is "
                        f"registered with digest "
                        f"{existing['digest'][:12]}… but this host "
                        f"computed {digest[:12]}… — its campaign state "
                        f"has diverged from the federation")
                elif hashes and not existing.get("hashes"):
                    # Same digest ⇒ same content; adopt the hashes so
                    # later claimers can score affinity.
                    existing["hashes"] = [str(h) for h in hashes]
                    changed = True
            if changed:
                self._save(state)

    def _stale(self, entry):
        if entry.get("host") == self.host \
                and not _pid_alive(entry.get("pid")):
            return True
        return float(self.clock()) - float(entry.get("claimed_at", 0)) \
            > self.lease

    def claim(self, have=None):
        """CAS-claim the best available shard; returns its id or None.

        Available: ``pending``, or ``claimed`` with a stale owner (work
        stealing).  With no ``have`` hint the scan is sorted shard-id
        order, so claim behavior is deterministic given the ledger
        state.  ``have`` — the set of corpus entry hashes this host's
        store already holds — turns the scan locality-aware: shards are
        ranked by how many of their seed hashes the claimer holds
        (affinity score, descending), ties broken by shard id
        (ascending), so the ordering is still a pure function of
        ``(ledger state, have)`` and the bit-identity argument above is
        untouched — affinity only permutes *who* runs a shard, never
        what the shard computes.
        """
        have = frozenset(str(h) for h in have) if have else frozenset()
        with self._locked():
            state = self._load()
            candidates = sorted(state["shards"])
            if have:
                def score(sid):
                    hashes = state["shards"][sid].get("hashes") or []
                    return sum(h in have for h in hashes)
                candidates.sort(key=lambda sid: (-score(sid), sid))
            for sid in candidates:
                entry = state["shards"][sid]
                if entry["status"] == "done":
                    continue
                if entry["status"] == "claimed" and not self._stale(entry):
                    continue
                entry.update(status="claimed", host=self.host,
                             pid=self.pid,
                             claimed_at=float(self.clock()))
                self._save(state)
                return sid
        return None

    def mark_done(self, sid):
        """Flip one claimed shard to ``done`` (its result file exists)."""
        if not os.path.exists(self.result_path(sid)):
            raise FarmError(
                f"refusing to mark {sid} done: no result file at "
                f"{self.result_path(sid)}")
        with self._locked():
            state = self._load()
            entry = state["shards"].get(sid)
            if entry is None:
                raise FarmError(f"unknown shard {sid} in round "
                                f"{self.round_key}")
            if entry["status"] != "done":
                entry["status"] = "done"
                self._save(state)

    # -- results -------------------------------------------------------
    def result_path(self, sid):
        return os.path.join(self.results_dir, f"{sid}.npz")

    def write_result(self, sid, outcome):
        atomic_write_bytes(self.result_path(sid), encode_outcome(outcome))

    def load_result(self, sid):
        return decode_outcome(self.result_path(sid))

    def counts(self):
        """``{"pending": n, "claimed": n, "done": n}`` right now."""
        state = self._load()
        counts = {"pending": 0, "claimed": 0, "done": 0}
        for entry in state["shards"].values():
            counts[entry["status"]] += 1
        return counts

    def all_done(self):
        state = self._load()
        shards = state["shards"]
        return bool(shards) and all(e["status"] == "done"
                                    for e in shards.values())

    def load_results(self):
        """All done shards' outcomes, ``{shard_id: outcome}``."""
        state = self._load()
        return {sid: self.load_result(sid)
                for sid, entry in state["shards"].items()
                if entry["status"] == "done"}


class LedgerShardRunner:
    """A :meth:`Campaign.run` ``shard_runner`` backed by a shared ledger.

    Construct one per host with a common ``campaign_dir``, hand it to
    ``FuzzSession.run(rounds, shard_runner=runner)`` on every host, and
    the hosts split each wave's shards between them: claim → execute →
    publish → repeat, then wait for (or steal) the rest.  Every host
    returns the complete outcome set — decoded from the shared result
    files, its own shards included — so every host's merge, absorb, and
    checkpoint are bit-identical, and a host that joined late or
    restarted simply finds finished rounds fully ``done`` and replays
    the merge without recomputing anything.
    """

    def __init__(self, campaign_dir, host=None, pid=None,
                 lease=DEFAULT_LEASE, poll=0.005, clock=time.time,
                 have=None):
        self.campaign_dir = os.path.abspath(campaign_dir)
        self.host = host
        self.pid = pid
        self.lease = float(lease)
        self.poll = float(poll)
        self.clock = clock
        #: Locality hint for claims: the entry hashes this host's store
        #: holds.  Accepts a set of hashes, a :class:`CorpusStore`, a
        #: store path (re-read each wave, tolerantly — a store that is
        #: not there yet just means no affinity), a zero-arg callable
        #: returning any of those, or None (plain sorted claims).
        self.have = have
        os.makedirs(self.campaign_dir, exist_ok=True)

    def ledger_for(self, seed):
        return ShardLedger(self.campaign_dir, round_key(seed),
                           host=self.host, pid=self.pid, lease=self.lease,
                           clock=self.clock)

    def _affinity(self):
        have = self.have
        if callable(have):
            have = have()
        if have is None:
            return frozenset()
        if isinstance(have, (str, os.PathLike)):
            try:
                from repro.corpus.store import CorpusStore
                have = CorpusStore(str(have), create=False)
            except Exception:
                return frozenset()
        if hasattr(have, "entries"):
            try:
                return frozenset(e["hash"] for e in have.entries())
            except Exception:
                return frozenset()
        return frozenset(str(h) for h in have)

    def __call__(self, campaign, tracker_states, shards):
        if not shards:
            return []
        ledger = self.ledger_for(campaign.seed)
        by_id = {shard_id(s.shard_index): s for s in shards}
        ledger.ensure([{"shard_id": sid, "digest": shard_digest(s),
                        "hashes": shard_hashes(s)}
                       for sid, s in sorted(by_id.items())])
        # Affinity is resolved once per wave: the claim preference of
        # one host over one ledger should not wobble mid-wave as its
        # own absorbs land.
        have = self._affinity()
        while True:
            sid = ledger.claim(have=have)
            if sid is not None:
                # The canonical mid-wave crash address: this host owns a
                # claimed, unfinished shard.  A kill here is exactly the
                # state work stealing exists for.
                fault_point("dist.shard.claim")
                outcome = campaign.execute_shard(tracker_states,
                                                 by_id[sid])
                ledger.write_result(sid, outcome)
                fault_point("dist.shard.done")
                ledger.mark_done(sid)
                continue
            if ledger.all_done():
                break
            # Wave barrier: another host owns the remaining shards.  The
            # poll is tight on purpose — its tail latency is pure
            # wall-clock cost at every wave boundary, while a wakeup is
            # just two ledger reads (~0.1 ms).
            time.sleep(self.poll)
        outcomes = ledger.load_results()
        missing = sorted(set(by_id) - set(outcomes))
        if missing:
            raise FarmError(
                f"round {ledger.round_key} finished without results for "
                f"{missing} — ledger and shard plan disagree")
        return [outcomes[sid] for sid in sorted(outcomes)]
