"""Joint-optimization objectives (paper §4.2, Equations 2-3).

``obj_joint(x) = (sum_{k != j} F_k(x)[c] - lambda1 * F_j(x)[c])
                 + lambda2 * f_n(x)``

The first term pushes one randomly chosen DNN ``F_j`` away from the seed
class ``c`` while holding the others on it; the second pushes a currently
inactivated neuron ``n`` (one per model, re-picked every iteration) above
the activation threshold.  Every term is differentiable, so the whole
objective's input-gradient is the sum of per-term input-gradients.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["DifferentialObjective", "RegressionDifferentialObjective",
           "CoverageObjective", "JointObjective"]


class DifferentialObjective:
    """Equation 2 for classifiers: suppress F_j's class-c score."""

    def __init__(self, models, target_index, seed_class, lambda1):
        if not 0 <= target_index < len(models):
            raise ConfigError(
                f"target_index {target_index} out of range for "
                f"{len(models)} models")
        self.models = list(models)
        self.target_index = int(target_index)
        self.seed_class = int(seed_class)
        self.lambda1 = float(lambda1)

    def value(self, x):
        total = 0.0
        for k, model in enumerate(self.models):
            score = float(model.predict(x)[:, self.seed_class].sum())
            total += -self.lambda1 * score if k == self.target_index else score
        return total

    def gradient(self, x):
        grad = np.zeros_like(x)
        for k, model in enumerate(self.models):
            g = model.input_gradient_of_class(x, self.seed_class)
            grad += -self.lambda1 * g if k == self.target_index else g
        return grad


class RegressionDifferentialObjective:
    """Equation 2's analogue for the steering regressors.

    Pushes the chosen model's angle down while pushing the others' angles
    up, driving the predictions apart until the steering directions
    disagree.
    """

    def __init__(self, models, target_index, lambda1):
        if not 0 <= target_index < len(models):
            raise ConfigError(
                f"target_index {target_index} out of range for "
                f"{len(models)} models")
        self.models = list(models)
        self.target_index = int(target_index)
        self.lambda1 = float(lambda1)

    def value(self, x):
        total = 0.0
        for k, model in enumerate(self.models):
            angle = float(model.predict(x).sum())
            total += -self.lambda1 * angle if k == self.target_index else angle
        return total

    def gradient(self, x):
        grad = np.zeros_like(x)
        seed = np.ones(self.models[0].output_shape)
        for k, model in enumerate(self.models):
            g = model.input_gradient_of_output(x, seed)
            grad += -self.lambda1 * g if k == self.target_index else g
        return grad


class CoverageObjective:
    """obj2: the summed output of one inactivated neuron per model.

    Algorithm 1 line 33 re-picks the neurons each iteration; call
    :meth:`pick` per iteration and then :meth:`gradient`.
    """

    def __init__(self, trackers, rng=None):
        self.trackers = list(trackers)
        self.rng = as_rng(rng)
        self._targets = [None] * len(self.trackers)

    def pick(self):
        """Choose an uncovered neuron per model; returns the choices."""
        self._targets = [t.pick_uncovered(self.rng) for t in self.trackers]
        return list(self._targets)

    def value(self, x):
        total = 0.0
        for tracker, neuron in zip(self.trackers, self._targets):
            if neuron is None:
                continue
            total += float(tracker.network.neuron_value(x, neuron).sum())
        return total

    def gradient(self, x):
        grad = np.zeros_like(x)
        for tracker, neuron in zip(self.trackers, self._targets):
            if neuron is None:
                continue
            grad += tracker.network.input_gradient_of_neuron(x, neuron)
        return grad


class JointObjective:
    """obj1 + lambda2 * obj2 (Equation 3)."""

    def __init__(self, differential, coverage, lambda2):
        self.differential = differential
        self.coverage = coverage
        self.lambda2 = float(lambda2)

    def step_gradient(self, x):
        """Gradient for one ascent iteration (re-picks coverage neurons)."""
        grad = self.differential.gradient(x)
        if self.lambda2 > 0.0 and self.coverage is not None:
            self.coverage.pick()
            grad = grad + self.lambda2 * self.coverage.gradient(x)
        return grad

    def value(self, x):
        total = self.differential.value(x)
        if self.lambda2 > 0.0 and self.coverage is not None:
            total += self.lambda2 * self.coverage.value(x)
        return total
