"""Floating-point dtype policy for the numpy substrate.

Every array the framework allocates — parameters, buffers, layer
outputs, gradient seeds — resolves its dtype through this module instead
of hard-coding ``np.float64``.  The library default is ``float32``: the
ascent loop is memory-bandwidth-bound and BLAS sgemm is roughly twice
dgemm, so single precision is the right default for generation
workloads.  ``float64`` remains a first-class opt-in for the places
that need it:

* gradient checking (finite differences at ``eps=1e-6`` drown in
  float32 rounding noise),
* the golden-equivalence matrix (captured at float64 and pinned
  bit-identical), and
* model-zoo training (:data:`repro.models.registry.TRAINING_DTYPE`),
  so cached weights and every downstream golden stay stable.

Usage::

    from repro.nn import dtypes

    dtypes.get_default_dtype()          # np.dtype('float32')
    with dtypes.default_dtype("float64"):
        net = build_lenet1()            # float64 parameters
    net32 = network_from_payload(network_to_payload(net), dtype="float32")

The policy is a thread-local-free stack (the repo is single-threaded
per process; worker processes re-import and get a fresh stack), so
nested scopes compose and an exception unwinds cleanly.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import ConfigError

__all__ = ["DEFAULT_DTYPE", "GOLDEN_DTYPE", "SUPPORTED_DTYPES",
           "get_default_dtype", "set_default_dtype", "default_dtype",
           "resolve"]

#: The library-wide default compute dtype.
DEFAULT_DTYPE = np.dtype(np.float32)

#: The opt-in high-precision dtype: gradchecks, goldens, zoo training.
GOLDEN_DTYPE = np.dtype(np.float64)

#: The only dtypes the substrate supports.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_stack = [DEFAULT_DTYPE]


def resolve(dtype=None):
    """Resolve ``dtype`` (name, numpy dtype, or ``None``) to a dtype.

    ``None`` yields the current policy default.  Anything outside
    :data:`SUPPORTED_DTYPES` is a :class:`~repro.errors.ConfigError` —
    the kernels assume IEEE binary32/binary64 and nothing else.
    """
    if dtype is None:
        return _stack[-1]
    try:
        dt = np.dtype(dtype)
    except TypeError:
        raise ConfigError(f"not a dtype: {dtype!r}") from None
    if dt not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ConfigError(
            f"unsupported dtype {dt.name!r}; supported: {names}")
    return dt


def get_default_dtype():
    """The dtype fresh parameters/buffers are created with."""
    return _stack[-1]


def set_default_dtype(dtype):
    """Replace the current default (top of the scope stack) in place.

    Prefer the :func:`default_dtype` context manager; this imperative
    form exists for process-wide configuration (e.g. a CLI entry point).
    Returns the previous default.
    """
    previous = _stack[-1]
    _stack[-1] = resolve(dtype)
    return previous


@contextmanager
def default_dtype(dtype):
    """Scope the default dtype: ``with default_dtype("float64"): ...``."""
    _stack.append(resolve(dtype))
    try:
        yield _stack[-1]
    finally:
        _stack.pop()
