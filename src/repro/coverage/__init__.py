"""Coverage metrics: neuron coverage (the paper's contribution) and the
traditional code coverage it is contrasted against."""

from repro.coverage.code import CodeCoverage
from repro.coverage.extended import (BoundaryCoverage, KMultisectionCoverage,
                                     NeuronProfile, TopKNeuronCoverage)
from repro.coverage.neuron import (NeuronCoverageTracker,
                                   check_states_compatible,
                                   coverage_of_inputs, merge_state_dicts,
                                   scale_layerwise)

__all__ = ["CodeCoverage", "NeuronCoverageTracker", "coverage_of_inputs",
           "scale_layerwise", "BoundaryCoverage", "KMultisectionCoverage",
           "NeuronProfile", "TopKNeuronCoverage", "check_states_compatible",
           "merge_state_dicts"]
