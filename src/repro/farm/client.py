"""Clients for a running farm daemon.

Two addressing modes over the same JSON-lines protocol (see
:mod:`repro.farm.server`):

* :class:`FarmClient` — addressed by *farm root*: reads the published
  ``daemon.json`` endpoint, so local tooling never touches port
  numbers.  The submit/status half of the control protocol.
* :class:`PeerClient` — addressed by *host:port*: what federation
  peers use for gossip, corpus sync, and remote shard execution, where
  the other daemon's root directory is on a different machine.

Both keep one pooled connection per client: requests reuse the channel
(and its negotiated binary-framing mode — :mod:`repro.farm.wire`)
instead of paying a TCP dial per call.  A failure on a *reused* socket
— the peer restarted, or an idle connection timed out — reconnects
once and retries transparently; a failure on a fresh connection still
surfaces as :class:`~repro.errors.FarmError`, exactly as a one-shot
client would see it.  ``requests`` / ``bytes_sent`` /
``bytes_received`` / ``reconnects`` counters make the round-trip and
bytes-on-wire cost observable (``tools/dist_smoke.py`` asserts on
them).

Typed rejections come back as the same exceptions the daemon raised
locally — saturation as
:class:`~repro.farm.queue.QueueSaturatedError` with its ``retry_after``
hint intact, a locked store as
:class:`~repro.farm.locks.StoreLockedError`-shaped
:class:`~repro.errors.FarmError`, an unknown job id as
:class:`~repro.farm.queue.UnknownJobError` — so the CLI's one-line
error reporting needs no special cases for remote vs local.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import FarmError
from repro.farm import server as farm_server
from repro.farm import wire
from repro.farm.queue import QueueSaturatedError, UnknownJobError

__all__ = ["FarmClient", "PeerClient"]


class _ChannelClosed(ConnectionError):
    """The peer closed the channel at a message boundary (clean EOF)."""


def _raise_typed(response):
    """Return an ok response, or re-raise the daemon's typed rejection
    with its original message (the wire carries the text, not the
    constructor args)."""
    if response.get("ok"):
        return response
    kind = response.get("kind")
    message = response.get("error", "farm request failed")
    if kind == "saturated":
        error = QueueSaturatedError.__new__(QueueSaturatedError)
        error.retry_after = float(response.get("retry_after", 1.0))
        error.capacity = 0
        FarmError.__init__(error, message)
        raise error
    if kind == "unknown-job":
        error = UnknownJobError.__new__(UnknownJobError)
        FarmError.__init__(error, message)
        raise error
    raise FarmError(message)


class _ChannelClient:
    """Shared pooled-connection machinery (dialing is the subclass's)."""

    def __init__(self):
        self._sock = None
        self._rfile = None
        self._binary = False
        self._channel_lock = threading.Lock()
        #: Wire accounting, cumulative over the client's lifetime.
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reconnects = 0

    # Subclasses: _dial() -> connected socket (FarmError on failure),
    # _where() -> address string for error messages.

    def close(self):
        """Drop the pooled connection (the next request redials)."""
        sock, self._sock = self._sock, None
        rfile, self._rfile = self._rfile, None
        self._binary = False
        for handle in (rfile, sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass

    def _connect(self):
        self._sock = self._dial()
        self._rfile = self._sock.makefile("rb")
        self._binary = False

    def _exchange(self, payload):
        message = dict(payload)
        message["bin"] = 1              # advertise binary framing
        data = wire.dump_message(message, binary=self._binary)
        self._sock.sendall(data)
        response, received = wire.read_message(self._rfile)
        if response is None:
            raise _ChannelClosed("connection closed before the reply")
        self.requests += 1
        self.bytes_sent += len(data)
        self.bytes_received += received
        if response.get("bin"):
            # The server answers in frames; our next request on this
            # channel may use them too.
            self._binary = True
        return response

    def _request(self, payload):
        with self._channel_lock:
            fresh = self._sock is None
            if fresh:
                self._connect()
            try:
                response = self._exchange(payload)
            except OSError as error:
                self.close()
                if fresh:
                    raise self._exchange_error(error) from None
                # A pooled socket can go stale between requests (peer
                # restarted, idle timeout): reconnect once and retry.
                # A failure on the fresh retry is a real mid-request
                # failure and surfaces like any other.
                self.reconnects += 1
                self._connect()
                try:
                    response = self._exchange(payload)
                except OSError as retry_error:
                    self.close()
                    raise self._exchange_error(retry_error) from None
        return _raise_typed(response)

    def _exchange_error(self, error):
        if isinstance(error, _ChannelClosed):
            return FarmError(
                f"farm daemon at {self._where()} closed the connection "
                "without answering")
        return FarmError(
            f"{self._describe()} dropped the connection "
            f"mid-request ({error})")


class FarmClient(_ChannelClient):
    """Farm-root-addressed client (endpoint discovered via daemon.json).

    The pooled connection re-reads the endpoint file on reconnect, so a
    daemon restart — new pid, new port — is transparent to a long-lived
    client as long as the new daemon publishes before the next request.
    """

    def __init__(self, root, timeout=10.0):
        super().__init__()
        self.root = root
        self.timeout = timeout

    def _dial(self):
        return farm_server.connect(self.root, timeout=self.timeout)

    def _where(self):
        return self.root

    def _describe(self):
        return f"farm daemon at {self.root}"

    def ping(self):
        return self._request({"cmd": "ping"})

    def submit(self, spec):
        """Submit a job spec; returns the created job record (dict)."""
        return self._request({"cmd": "submit", "spec": spec})["job"]

    def status(self, job_id=None):
        if job_id is not None:
            return self._request({"cmd": "status", "job_id": job_id})["job"]
        return self._request({"cmd": "status"})["jobs"]

    def counts(self):
        return self._request({"cmd": "counts"})["counts"]

    def drain(self):
        return self._request({"cmd": "drain"})

    def peers(self):
        """This daemon's own gossip plus its cached view of its peers."""
        return self._request({"cmd": "peers"})

    def wait(self, job_id, timeout=120.0, poll=0.2):
        """Block until a job finishes; returns its final record.

        Raises :class:`FarmError` if the job ends ``failed`` or the
        timeout expires — a stuck farm should fail loudly in scripts.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise FarmError(
                    f"job {job_id} failed: {job.get('error')}")
            if time.monotonic() >= deadline:
                raise FarmError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (status: {job['status']})")
            time.sleep(poll)


class PeerClient(_ChannelClient):
    """Host:port-addressed client for the federation verbs.

    The transport behind :class:`~repro.dist.sync.RemoteSource`,
    ``repro.dist.sync.push``, daemon gossip, and
    :class:`~repro.dist.coordinator.PeerShardRunner`.  Same pooled
    channel and typed errors as :class:`FarmClient`; only the
    addressing differs.
    """

    def __init__(self, host, port, timeout=10.0):
        super().__init__()
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)

    def _dial(self):
        # A reset/timeout mid-request must surface as the same typed
        # error as a refused connection: every consumer (peer gossip,
        # sync, shard fan-out) treats FarmError as "this peer failed",
        # and a raw OSError would crash them instead.
        try:
            return socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as error:
            raise FarmError(
                f"peer {self._where()} is not answering "
                f"({error})") from None

    def _where(self):
        return f"{self.host}:{self.port}"

    def _describe(self):
        return f"peer {self._where()}"

    def ping(self):
        return self._request({"cmd": "ping"})

    def peers(self):
        return self._request({"cmd": "peers"})

    def store_manifest(self, store, have=None):
        payload = {"cmd": "store-manifest", "store": store}
        if have is not None:
            # Sorted for a deterministic wire image (and so the request
            # bytes are reproducible in tests and traces).
            payload["have"] = sorted(str(h) for h in have)
        return self._request(payload)

    def store_entry(self, store, entry_hash):
        return self._request({"cmd": "store-entry", "store": store,
                              "hash": entry_hash})

    def store_entries(self, store, hashes):
        """Fetch a batch of content-addressed inputs in one round-trip."""
        return self._request({"cmd": "store-entries", "store": store,
                              "hashes": [str(h) for h in hashes]})

    def store_push(self, store, entry, data, config=None):
        return self._request({"cmd": "store-push", "store": store,
                              "entry": entry, "data": data,
                              "config": config})

    def store_push_many(self, store, records, config=None):
        """Push a batch of ``{"entry", "data"}`` records in one
        round-trip (the write half of the ``store-entries`` verb)."""
        return self._request({"cmd": "store-entries", "store": store,
                              "entries": list(records),
                              "config": config})

    def store_merge_coverage(self, store, coverage, config=None):
        return self._request({"cmd": "store-merge-coverage",
                              "store": store, "coverage": coverage,
                              "config": config})

    def run_shard(self, request):
        return self._request({"cmd": "run-shard", **request})
