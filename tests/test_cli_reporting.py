"""CLI and markdown reporting."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.common import ExperimentResult
from repro.reporting import result_to_markdown, write_report
from repro.utils.ascii_art import ascii_image, side_by_side
from repro.errors import ShapeError


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["datasets"], ["zoo"], ["generate", "mnist"],
                     ["experiment", "table7"], ["report"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "datasets"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_engine_choices(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "mnist", "--engine",
                                  "campaign", "--workers", "4",
                                  "--shard-size", "8"])
        assert args.engine == "campaign"
        assert args.workers == 4
        assert args.shard_size == 8
        with pytest.raises(SystemExit):
            parser.parse_args(["generate", "mnist", "--engine", "warp"])

    def test_fuzz_and_corpus_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz", "mnist", "--corpus", "/tmp/c",
                                  "--rounds", "3", "--wave-size", "8"])
        assert (args.command, args.rounds, args.wave_size) == ("fuzz", 3, 8)
        with pytest.raises(SystemExit):
            parser.parse_args(["fuzz", "mnist"])   # --corpus is required
        args = parser.parse_args(["corpus", "merge", "dst", "a", "b"])
        assert args.corpus_command == "merge"
        assert args.sources == ["a", "b"]


class TestCliCommands:
    def test_datasets(self, capsys):
        assert main(["--scale", "smoke", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out and "drebin" in out

    def test_generate(self, capsys):
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "8"]) == 0
        out = capsys.readouterr().out
        assert "differences found" in out

    @pytest.mark.parametrize("engine", ["batch", "campaign"])
    def test_generate_engines(self, capsys, engine):
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "8", "--engine", engine,
                     "--workers", "2", "--shard-size", "4"]) == 0
        out = capsys.readouterr().out
        assert f"engine               : {engine}" in out
        assert "differences found" in out

    @pytest.mark.parametrize("extra", [
        ["--ascent", "deepfool"],
        ["--ascent", "deepfool", "--overshoot", "0.05"],
        ["--ascent", "nesterov", "--beta", "0.8"],
        ["--ascent", "adam"],
        ["--ascent", "adaptive"],
    ])
    def test_generate_rule_library(self, capsys, extra):
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "8"] + extra) == 0
        assert "differences found" in capsys.readouterr().out

    def test_unknown_ascent_rule_is_one_line_error(self, capsys):
        """An unknown --ascent name fails before any dataset or model
        loads: exit 1 and a single error line naming the known rules."""
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--ascent", "rmsprop"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1
        assert "rmsprop" in err and "deepfool" in err

    def test_fuzz_rejects_unknown_ascent_rule(self, tmp_path, capsys):
        assert main(["--scale", "smoke", "fuzz", "mnist", "--corpus",
                     str(tmp_path / "c"), "--ascent", "rmsprop"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "rmsprop" in err
        assert not (tmp_path / "c").exists()   # failed before touching disk

    @pytest.mark.parametrize("argv", [
        ["--ascent", "adam", "--beta", "0.5"],
        ["--ascent", "deepfool", "--beta", "0.5"],
        ["--ascent", "vanilla", "--beta", "0.5"],
        ["--ascent", "momentum", "--overshoot", "0.1"],
        ["--ascent", "adam", "--overshoot", "0.1"],
    ])
    def test_rule_specific_flags_rejected_elsewhere(self, capsys, argv):
        """--beta is momentum/nesterov-only and --overshoot is
        deepfool-only; other combinations fail with the rule named."""
        assert main(["--scale", "smoke", "generate", "mnist"] + argv) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert argv[1] in err                  # names the offending rule

    def test_fuzz_resumes_and_reports(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        argv = ["--scale", "smoke", "fuzz", "mnist", "--corpus", corpus,
                "--wave-size", "6", "--shard-size", "4",
                "--initial-seeds", "8"]
        assert main(argv + ["--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 wave(s)" in out
        # Second invocation continues the same corpus to a higher target.
        assert main(argv + ["--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 round(s) completed" in out
        assert main(["corpus", "info", corpus]) == 0
        assert "entries" in capsys.readouterr().out

    def test_generate_into_corpus_and_resume(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        assert main(["--scale", "smoke", "generate", "mnist", "--seeds",
                     "8", "--corpus", corpus]) == 0
        assert "corpus" in capsys.readouterr().out
        assert main(["--scale", "smoke", "generate", "mnist", "--seeds",
                     "8", "--engine", "batch", "--corpus", corpus,
                     "--resume"]) == 0
        capsys.readouterr()
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--resume"]) == 2   # --resume needs --corpus

    def test_corpus_commands_reject_missing_paths(self, tmp_path, capsys):
        """info/merge-sources/distill are read-only: a typo'd path is a
        clean one-line error, not a fabricated empty store."""
        missing = str(tmp_path / "nope")
        assert main(["corpus", "info", missing]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["corpus", "merge", str(tmp_path / "dest"), missing]) == 1
        assert "error:" in capsys.readouterr().err
        assert not (tmp_path / "nope").exists()

    def test_corpus_merge_rejects_mixed_configs_up_front(self, tmp_path,
                                                         capsys):
        """A config mismatch between sources must fail before anything
        is merged, not abort halfway leaving dest partially merged."""
        from repro.corpus import CorpusStore
        a = CorpusStore(tmp_path / "a")
        a.bind_config({"models": ["X"], "threshold": 0.0})
        a.add_entry(np.zeros((3,)), "seed", origin=0)
        b = CorpusStore(tmp_path / "b")
        b.bind_config({"models": ["Y"], "threshold": 0.0})
        b.add_entry(np.ones((3,)), "seed", origin=0)
        assert main(["corpus", "merge", str(tmp_path / "dest"),
                     str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        assert "different" in capsys.readouterr().err
        assert len(CorpusStore(tmp_path / "dest")) == 0

    def test_corpus_distill_validates_models_before_deleting(self, tmp_path,
                                                             capsys):
        """Distilling against the wrong trio must fail before any test
        input is unlinked — set-cover over the wrong networks would
        delete coverage-essential tests."""
        from repro.corpus import CorpusStore
        corpus = str(tmp_path / "corpus")
        assert main(["--scale", "smoke", "generate", "mnist", "--seeds",
                     "10", "--corpus", corpus]) == 0
        capsys.readouterr()
        tests_before = len(CorpusStore(corpus).entries(kind="test"))
        assert tests_before > 0
        assert main(["--scale", "smoke", "corpus", "distill", corpus,
                     "driving"]) == 1
        assert "error:" in capsys.readouterr().err
        assert len(CorpusStore(corpus).entries(kind="test")) == tests_before

    def test_generate_corpus_coverage_is_monotone(self, tmp_path, capsys):
        """Regression: a second generate WITHOUT --resume starts its
        trackers empty; committing them raw used to overwrite (shrink)
        the corpus's accumulated coverage instead of OR-merging."""
        from repro.corpus import CorpusStore
        corpus = str(tmp_path / "corpus")

        def covered_counts():
            states = CorpusStore(corpus).coverage_states()
            return {name: int((s["covered"] & s["tracked"]).sum())
                    for name, s in states.items()}

        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "12", "--corpus", corpus]) == 0
        before = covered_counts()
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "4", "--corpus", corpus]) == 0
        capsys.readouterr()
        after = covered_counts()
        assert all(after[name] >= count for name, count in before.items())

    def test_experiment(self, capsys):
        assert main(["--scale", "smoke", "experiment", "table7"]) == 0
        out = capsys.readouterr().out
        assert "Same class" in out

    def test_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["--scale", "smoke", "report", "--output",
                     str(out_file), "--only", "table7"]) == 0
        text = out_file.read_text()
        assert "# EXPERIMENTS" in text
        assert "table7" in text


class TestFarmCli:
    """Farm command error paths: every rejection is exit 1 plus one
    ``error:`` line — no tracebacks across the daemon socket."""

    @pytest.fixture
    def farm_root(self, tmp_path):
        """A live farm server (capacity 1, workers never started, so
        submitted jobs stay queued deterministically)."""
        import threading

        from repro.farm import FarmDaemon, FarmServer

        def no_jobs_should_run(*_):
            raise AssertionError("CLI error-path tests must not run jobs")

        root = str(tmp_path / "root")
        daemon = FarmDaemon(root, capacity=1,
                            model_source=no_jobs_should_run)
        server = FarmServer(daemon)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        yield root
        server.shutdown()
        thread.join()
        server.close()
        daemon.drain(timeout=5)

    @staticmethod
    def one_error_line(capsys):
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1
        return err

    def test_submit_without_daemon(self, tmp_path, capsys):
        assert main(["submit", "--root", str(tmp_path / "nowhere"),
                     "--store", "s"]) == 1
        err = self.one_error_line(capsys)
        assert "no farm daemon running" in err
        assert "repro serve" in err            # tells the user the fix

    def test_status_without_daemon(self, tmp_path, capsys):
        assert main(["status", "--root", str(tmp_path / "nowhere")]) == 1
        assert "no farm daemon running" in self.one_error_line(capsys)

    def test_submit_against_locked_store(self, farm_root, capsys):
        """A store held by a live outside process is rejected at submit
        time, before the job ever reaches the queue."""
        import json
        import os

        store = os.path.join(farm_root, "stores", "captive")
        os.makedirs(store)
        with open(os.path.join(store, "LOCK"), "w",
                  encoding="utf-8") as handle:
            json.dump({"pid": 1, "owner": "init"}, handle)
        assert main(["submit", "--root", farm_root,
                     "--store", "captive"]) == 1
        err = self.one_error_line(capsys)
        assert "locked" in err and "pid 1" in err

    def test_submit_saturated_queue_reports_retry_hint(self, farm_root,
                                                       capsys):
        assert main(["submit", "--root", farm_root, "--store", "a"]) == 0
        assert "submitted job-000001" in capsys.readouterr().out
        assert main(["submit", "--root", farm_root, "--store", "b"]) == 1
        err = self.one_error_line(capsys)
        assert "saturated" in err and "retry" in err

    def test_status_unknown_job_id(self, farm_root, capsys):
        assert main(["status", "--root", farm_root, "job-999999"]) == 1
        assert "unknown job id 'job-999999'" in self.one_error_line(capsys)

    def test_status_lists_queued_jobs(self, farm_root, capsys):
        assert main(["status", "--root", farm_root]) == 0
        assert "no jobs" in capsys.readouterr().out
        assert main(["submit", "--root", farm_root, "--store", "a"]) == 0
        capsys.readouterr()
        assert main(["status", "--root", farm_root]) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out and "queued" in out


class TestReporting:
    def test_result_to_markdown(self):
        result = ExperimentResult(
            "tX", "demo", ["a", "b"], rows=[[1, 2.5]],
            series={"s": ([0, 1], [0.5, 0.7])},
            notes=["be careful"], paper_reference="paper says 42")
        md = result_to_markdown(result)
        assert "## tX: demo" in md
        assert "| a | b |" in md
        assert "paper says 42" in md
        assert "> be careful" in md
        assert "```" in md and "o = s" in md  # ascii plot of the series

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", scale="smoke",
                            experiment_ids=["table6"])
        text = open(path).read()
        assert "table6" in text
        assert "100%" in text


class TestAsciiArt:
    def test_grayscale(self):
        img = np.zeros((1, 2, 3))
        img[0, 0, :] = 1.0
        art = ascii_image(img)
        lines = art.splitlines()
        assert lines[0] == "@@@"
        assert lines[1] == "   "

    def test_color_luminance(self):
        img = np.ones((3, 2, 2))
        assert ascii_image(img).splitlines()[0] == "@@"

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            ascii_image(np.zeros(5))

    def test_side_by_side(self):
        a = np.zeros((1, 2, 2))
        b = np.ones((1, 2, 2))
        text = side_by_side(a, b, labels=("L", "R"))
        lines = text.splitlines()
        assert lines[0].startswith("L")
        assert "@@" in lines[1]

    def test_side_by_side_height_mismatch(self):
        with pytest.raises(ShapeError):
            side_by_side(np.zeros((1, 2, 2)), np.zeros((1, 3, 2)))

    def test_downsampling(self):
        img = np.random.default_rng(0).random((1, 28, 28))
        art = ascii_image(img, width=14)
        assert max(len(l) for l in art.splitlines()) <= 14
