"""Sharded generation campaigns: multi-process seed-corpus fan-out.

A :class:`Campaign` splits a seed corpus into fixed-size shards, runs
the vectorized :class:`~repro.core.engine.AscentEngine` on each shard —
in worker processes when ``workers > 1``, under any
:class:`~repro.core.engine.AscentRule` — and merges the per-shard
results into one :class:`~repro.core.engine.GenerationResult` plus one
merged
coverage tracker per model.  This is the scale-out layer the stateless
``Network``/``ForwardPass`` substrate was built for: workers share
nothing, so a campaign is embarrassingly parallel across shards.

Determinism (see docs/ARCHITECTURE.md for the full rules):

* **Sharding** depends only on the corpus and ``shard_size`` —
  contiguous chunks in seed order — never on ``workers``.
* **Randomness** per shard comes from
  :func:`repro.utils.rng.spawn_seed_sequences`: shard *i* draws the same
  stream whether it runs first on one worker or last on eight.
* **Merging** is order-independent: tests carry global seed indices and
  are re-ordered by them, coverage masks OR-combine.

Together these make ``workers=N`` produce bit-identical tests and
coverage to ``workers=1`` under the same seed, which
``tests/core/test_campaign.py`` pins and
``benchmarks/test_campaign_throughput.py`` times.

Worker processes never retrain or touch the weight cache: models travel
as architecture+weights payloads
(:func:`repro.nn.config.network_to_payload`) and coverage comes back as
plain ``state_dict()`` masks, so the only things crossing process
boundaries are picklable dicts of numpy arrays.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Constraint, Unconstrained
from repro.core.engine import (AscentEngine, AscentRule, GenerationResult,
                               VanillaRule)
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.nn.config import network_from_payload, network_to_payload
from repro.utils.rng import rng_from_seed_sequence, spawn_seed_sequences

__all__ = ["Campaign", "CampaignPool", "CampaignShard", "shard_corpus",
           "payload_digest", "DEFAULT_SHARD_SIZE"]

#: Default seeds per shard.  Independent of ``workers`` on purpose: the
#: shard layout (and therefore every random draw) must not change when a
#: campaign is re-run with a different degree of parallelism.
DEFAULT_SHARD_SIZE = 16


@dataclass(frozen=True)
class CampaignShard:
    """One unit of campaign work: a seed slice plus its random stream."""

    shard_index: int
    indices: np.ndarray          # global seed indices of this slice
    seeds: np.ndarray            # the seed inputs themselves
    seed_seq: np.random.SeedSequence
    scales: np.ndarray = None    # per-seed step scales (None: all 1)


def shard_corpus(seeds, shard_size=DEFAULT_SHARD_SIZE, seed=0,
                 seed_scales=None):
    """Split a seed corpus into deterministic contiguous shards.

    Shard boundaries depend only on the corpus length and ``shard_size``;
    each shard gets a spawned child of ``seed``'s SeedSequence.  The
    returned shards are self-contained (they carry their global indices
    and, when given, their slice of the per-seed step scales), so any
    subset can be executed anywhere and merged later.

    Edge cases are part of the contract (pinned in
    ``tests/core/test_campaign.py``): an empty corpus yields zero shards
    (and a campaign over it a clean empty result), and
    ``shard_size > len(corpus)`` yields exactly one shard holding the
    whole corpus.
    """
    seeds = np.asarray(seeds, dtype=np.float64)
    if shard_size < 1:
        raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
    n = seeds.shape[0]
    if seed_scales is not None:
        seed_scales = np.asarray(seed_scales, dtype=np.float64)
        if seed_scales.shape != (n,):
            raise ConfigError(
                f"need one seed scale per seed; got shape "
                f"{seed_scales.shape} for {n} seed(s)")
    bounds = list(range(0, n, int(shard_size)))
    seqs = spawn_seed_sequences(seed, len(bounds))
    shards = []
    for shard_index, start in enumerate(bounds):
        stop = min(start + int(shard_size), n)
        shards.append(CampaignShard(
            shard_index=shard_index,
            indices=np.arange(start, stop),
            seeds=seeds[start:stop].copy(),
            seed_seq=seqs[shard_index],
            scales=(None if seed_scales is None
                    else seed_scales[start:stop].copy())))
    return shards


# -- worker side ----------------------------------------------------------------
# Pool workers unpack the campaign's *static* spec once per worker
# lifetime (initializer) and rebuild each model payload at most once —
# later waves over the same models hit the per-worker digest cache
# instead of re-deserializing weights.  Per-shard tasks carry only the
# dynamic state (the driver's tracker snapshots plus the shard itself).
# The in-process path (workers=1) calls the very same two functions, so
# a serial campaign exercises the identical code a parallel one does.
# All worker state is thread-local: the farm daemon runs many campaigns
# concurrently on worker threads, and their caches must not collide.

_LOCAL = threading.local()

#: Per-worker model-cache bound (~4 trios).  The cache is keyed by
#: payload content digest, so an in-place weight change simply misses.
_MODEL_CACHE_CAP = 12


def payload_digest(payload):
    """Content digest of a model payload (architecture JSON + weights).

    Computed from the payload's actual bytes — not object identity — so
    a cached rebuild is reused exactly when the model is bit-identical.
    """
    import json
    digest = hashlib.sha256()
    digest.update(json.dumps(payload["config"],
                             sort_keys=True).encode("utf-8"))
    for key in sorted(payload["state"]):
        array = np.ascontiguousarray(payload["state"][key])
        digest.update(key.encode("utf-8"))
        digest.update(repr((array.shape, str(array.dtype))).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _cached_models(entries):
    """Resolve ``[{"digest", "payload"}]`` via the per-worker cache."""
    cache = getattr(_LOCAL, "model_cache", None)
    if cache is None:
        cache = _LOCAL.model_cache = {}
    models = []
    for entry in entries:
        key = entry["digest"]
        if key in cache:
            model = cache.pop(key)          # re-insert: LRU move-to-end
        else:
            model = network_from_payload(entry["payload"])
        cache[key] = model
        models.append(model)
    while len(cache) > _MODEL_CACHE_CAP:
        cache.pop(next(iter(cache)))
    return models


def _init_worker(static_spec):
    """Per-worker setup: resolve models through the cache, keep the spec."""
    _LOCAL.static = static_spec
    _LOCAL.models = _cached_models(static_spec["models"])


def _run_shard(task):
    """Run one shard through the ascent engine; returns a picklable dict.

    ``task`` is ``(tracker_states, shard)`` — the per-wave dynamic
    state.  Worker trackers start from the driver's coverage state, so
    the coverage objective steers ascent toward neurons *genuinely*
    still uncovered — a campaign resumed over persisted coverage
    (``generate --resume``, fuzz waves) must not chase neurons earlier
    runs already lit up.  The merge back into the driver is an OR, so
    seeding every shard with the same prior loses nothing and
    double-counts nothing.  Generated tests are rewritten to carry
    their *global* seed index before leaving the worker.
    """
    tracker_states, shard = task
    spec = _LOCAL.static
    models = _LOCAL.models
    trackers = [NeuronCoverageTracker.from_state(m, s)
                for m, s in zip(models, tracker_states)]
    engine = AscentEngine(
        models, spec["hp"], spec["constraint"].clone(), task=spec["task"],
        trackers=trackers, rng=rng_from_seed_sequence(shard.seed_seq),
        rule=spec["rule"].clone(),
        absorb_exhausted=spec["absorb_exhausted"])
    result = engine.run(shard.seeds, seed_scales=shard.scales)
    for test in result.tests:
        test.seed_index = int(shard.indices[test.seed_index])
    return {"shard_index": shard.shard_index,
            "result": result,
            "coverage": [t.state_dict() for t in trackers]}


class CampaignPool:
    """A reusable worker pool pinned to one campaign's static spec.

    Created via :meth:`Campaign.make_pool` and passed to any number of
    :meth:`Campaign.run` calls whose static identity (models, hyper-
    params, constraint kind, rule, task) matches.  Worker processes
    live for the pool's lifetime, so each worker deserializes each
    model payload exactly once — a multi-wave fuzz session stops paying
    the rebuild cost per wave, and a farm daemon amortizes it across
    jobs.  Throughput-only: a pooled run is bit-identical to a fresh
    per-wave pool (and to ``workers=1``).
    """

    def __init__(self, static_spec, workers, mp_start_method=None):
        if workers < 2:
            raise ConfigError(
                f"CampaignPool needs workers >= 2, got {workers} "
                "(workers=1 runs in-process and needs no pool)")
        self.workers = int(workers)
        self.spec_digest = _static_spec_digest(static_spec)
        ctx = multiprocessing.get_context(mp_start_method)
        self._pool = ctx.Pool(self.workers, initializer=_init_worker,
                              initargs=(static_spec,))
        self._closed = False

    def run_shards(self, tracker_states, shards):
        if self._closed:
            raise ConfigError("CampaignPool is closed")
        return self._pool.map(_run_shard,
                              [(tracker_states, shard) for shard in shards])

    def close(self):
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def _static_spec_digest(static_spec):
    """Cheap identity for pool-vs-campaign compatibility checks."""
    parts = [entry["digest"] for entry in static_spec["models"]]
    parts.append(static_spec["rule"].identity())
    parts.append(type(static_spec["constraint"]).__name__)
    parts.append(str(static_spec["task"]))
    parts.append(str(bool(static_spec["absorb_exhausted"])))
    parts.append(repr(static_spec["hp"]))
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


# -- driver side ----------------------------------------------------------------
class Campaign:
    """Sharded, optionally multi-process DeepXplore campaign runner.

    Parameters
    ----------
    models:
        Two or more trained networks (as for the other engines).
    hyperparams, constraint, task, trackers:
        As in :class:`~repro.core.DeepXplore`.  Trackers passed in keep
        any coverage they already hold; shard workers *start from* that
        coverage (so the coverage objective targets genuinely uncovered
        neurons) and shard results merge back into them.
    workers:
        Worker processes.  ``1`` runs shards in-process (still through
        the worker code path); ``N > 1`` fans out over a process pool.
    shard_size:
        Seeds per shard.  Part of the campaign's deterministic identity —
        changing it changes the random streams; changing ``workers``
        does not.
    seed:
        Root of the campaign's SeedSequence tree.
    rule:
        The :class:`~repro.core.engine.AscentRule` every shard ascends
        under (each shard gets its own clone, so per-seed rule state
        never crosses shard boundaries); defaults to the vanilla rule.
        Like ``shard_size``, part of the deterministic identity.
    absorb_exhausted:
        Engine coverage accounting per shard (see
        :class:`~repro.core.engine.AscentEngine`); ``False`` is the
        paper-exact mode.  Also part of the deterministic identity —
        it changes what later waves' coverage objectives chase.
    mp_start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``);
        defaults to the platform default.
    """

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, workers=1,
                 shard_size=DEFAULT_SHARD_SIZE, seed=0, rule=None,
                 absorb_exhausted=True, mp_start_method=None):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        if not isinstance(self.constraint, Constraint):
            raise ConfigError("constraint must be a Constraint instance")
        self.task = task
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        self.shard_size = int(shard_size)
        self.seed = seed
        self.rule = rule if rule is not None else VanillaRule()
        if not isinstance(self.rule, AscentRule):
            raise ConfigError("rule must be an AscentRule instance")
        self.absorb_exhausted = bool(absorb_exhausted)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)
        self.mp_start_method = mp_start_method

    def _static_spec(self):
        """The wave-invariant worker spec (shipped once per worker).

        Model payloads travel with their content digests so workers can
        satisfy rebuild requests from their local cache; everything
        else here is plain campaign configuration.  Per-wave dynamic
        state (tracker snapshots, shards) ships per task instead.
        """
        entries = []
        for model in self.models:
            payload = network_to_payload(model)
            entries.append({"digest": payload_digest(payload),
                            "payload": payload})
        return {
            "models": entries,
            "hp": self.hp,
            "constraint": self.constraint,
            "task": self.task,
            "rule": self.rule,
            "absorb_exhausted": self.absorb_exhausted,
        }

    def make_pool(self):
        """Build a :class:`CampaignPool` reusable across this campaign's
        waves (and any later campaign with the same static identity)."""
        return CampaignPool(self._static_spec(), self.workers,
                            mp_start_method=self.mp_start_method)

    def execute_shard(self, tracker_states, shard):
        """Run exactly one shard in-process through the worker code path.

        The escape hatch the distribution layer (``repro.dist``) builds
        on: this is the same ``_init_worker``/``_run_shard`` pair pool
        workers execute, so a shard's outcome is bit-identical whether
        it ran here, in a local pool worker, or on another host that
        rebuilt the campaign from the same models and seed.  The static
        spec (payload digests are not free) is computed once per
        campaign and reused across calls.
        """
        spec = getattr(self, "_spec_cache", None)
        if spec is None:
            spec = self._spec_cache = self._static_spec()
        try:
            _init_worker(spec)
            return _run_shard((tracker_states, shard))
        finally:
            _LOCAL.static = None
            _LOCAL.models = None

    def run(self, seeds, seed_scales=None, pool=None, shard_runner=None):
        """Shard ``seeds``, fan out, merge; returns a GenerationResult.

        ``result.elapsed`` is the campaign's wall-clock (not the sum of
        per-shard compute); each test's own ``elapsed`` is relative to
        its shard's start.  ``seed_scales`` (one float per seed, for
        rules that honour per-seed step scaling) shards contiguously
        alongside the seeds, so scaling is worker-count invariant.
        ``pool`` reuses a :class:`CampaignPool` (built by
        :meth:`make_pool` on a campaign with the same static identity)
        instead of spinning one up per call — throughput only, never
        results.

        ``shard_runner`` overrides shard *placement* entirely: a
        callable ``(campaign, tracker_states, shards) -> outcomes``
        returning one ``_run_shard``-shaped dict per shard, in any
        order.  This is how the distribution layer fans shards across
        hosts (``repro.dist.shards.LedgerShardRunner``, peer RPC) —
        like ``pool``, it may only change where shards run, never what
        they compute, because the merge below is order-independent.
        """
        if seed_scales is not None and not self.rule.accepts_seed_scales:
            raise ConfigError(
                f"the {self.rule.name} rule does not accept per-seed "
                "step scales")
        start = time.perf_counter()
        shards = shard_corpus(seeds, self.shard_size, seed=self.seed,
                              seed_scales=seed_scales)
        tracker_states = [t.state_dict() for t in self.trackers]
        if shard_runner is not None:
            outcomes = shard_runner(self, tracker_states, shards)
        elif pool is not None:
            if pool.spec_digest != _static_spec_digest(self._static_spec()):
                raise ConfigError(
                    "CampaignPool was built for a different campaign "
                    "identity (models/rule/constraint/hyperparams); "
                    "make a fresh pool with Campaign.make_pool()")
            outcomes = pool.run_shards(tracker_states, shards)
        elif self.workers == 1 or len(shards) <= 1:
            spec = self._static_spec()
            try:
                _init_worker(spec)
                outcomes = [_run_shard((tracker_states, shard))
                            for shard in shards]
            finally:
                # Drop the payload copies (weights) from the thread's
                # state; the rebuilt models stay in the bounded digest
                # cache so the next wave skips re-deserializing them.
                _LOCAL.static = None
                _LOCAL.models = None
        else:
            ctx = multiprocessing.get_context(self.mp_start_method)
            with ctx.Pool(min(self.workers, len(shards)),
                          initializer=_init_worker,
                          initargs=(self._static_spec(),)) as mp_pool:
                outcomes = mp_pool.map(
                    _run_shard, [(tracker_states, shard)
                                 for shard in shards])
        merged = GenerationResult()
        for outcome in sorted(outcomes, key=lambda o: o["shard_index"]):
            merged.merge(outcome["result"])
            for tracker, state in zip(self.trackers, outcome["coverage"]):
                tracker.merge(state)
        merged.elapsed = time.perf_counter() - start
        merged.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return merged

    def mean_coverage(self):
        """Mean neuron coverage across the tested models."""
        return float(np.mean([t.coverage() for t in self.trackers]))
