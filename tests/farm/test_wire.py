"""Wire framing and pooled channels: JSON fallback, binary frames,
per-connection negotiation, and reconnect-on-stale-socket."""

from __future__ import annotations

import base64
import io
import json
import socket
import threading

import pytest

from repro.errors import FarmError
from repro.farm import FarmClient, PeerClient
from repro.farm.wire import Blob, as_bytes, dump_message, read_message


def _roundtrip(message, binary):
    data = dump_message(message, binary=binary)
    got, n = read_message(io.BytesIO(data))
    assert n == len(data)
    return got


# -- framing ------------------------------------------------------------------
def test_json_mode_is_the_legacy_base64_format():
    """JSON fallback must stay byte-compatible with the pre-framing
    wire: blobs as inline base64, one JSON object, one line."""
    data = dump_message({"cmd": "x", "data": Blob(b"\x00\x01raw")})
    assert data.endswith(b"\n") and data.count(b"\n") == 1
    line = json.loads(data.decode("utf-8"))
    assert line["data"] == base64.b64encode(b"\x00\x01raw").decode("ascii")
    assert "_frames" not in line


def test_binary_and_json_modes_resolve_identically():
    message = {"a": Blob(b"12345"), "n": {"b": [Blob(b"xy"), 7]},
               "s": "text", "z": None}
    via_json = _roundtrip(message, binary=False)
    via_frames = _roundtrip(message, binary=True)
    for got in (via_json, via_frames):
        assert as_bytes(got["a"]) == b"12345"
        assert as_bytes(got["n"]["b"][0]) == b"xy"
        assert got["n"]["b"][1] == 7
        assert got["s"] == "text" and got["z"] is None
    # Framed blobs come back as real bytes, ready for np.load et al.
    assert isinstance(via_frames["a"], bytes)


def test_binary_mode_skips_base64_inflation():
    payload = {"data": Blob(bytes(range(256)) * 16)}   # 4 KiB
    framed = dump_message(payload, binary=True)
    inline = dump_message(payload, binary=False)
    assert len(framed) < len(inline) * 0.8      # ~33% base64 overhead gone


def test_truncated_frame_is_an_error_not_eof():
    data = dump_message({"d": Blob(b"abcdef")}, binary=True)
    with pytest.raises(FarmError, match="truncated"):
        read_message(io.BytesIO(data[:-3]))


def test_clean_eof_is_a_closed_channel():
    assert read_message(io.BytesIO(b"")) == (None, 0)


def test_non_object_message_rejected():
    with pytest.raises(FarmError, match="expected an object"):
        read_message(io.BytesIO(b"[1, 2]\n"))


# -- pooled channels ----------------------------------------------------------
def _one_shot_server():
    """A server that answers exactly one request per connection, then
    closes it — the shape of a peer whose idle connections die between
    requests.  Returns ``(port, served: list, stop)``."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    served = []

    def serve():
        while True:
            try:
                conn, _ = sock.accept()
            except OSError:
                return
            with conn, conn.makefile("rb") as rfile:
                request, _ = read_message(rfile)
                if request is None:
                    continue
                served.append(request)
                conn.sendall(dump_message({"ok": True,
                                           "echo": request.get("cmd")}))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return sock.getsockname()[1], served, sock.close


def test_stale_pooled_connection_reconnects_transparently():
    """Satellite regression: a peer that drops the pooled connection
    between requests (restart, idle timeout) must cost one transparent
    reconnect, not a FarmError."""
    port, served, stop = _one_shot_server()
    try:
        client = PeerClient("127.0.0.1", port, timeout=5.0)
        assert client.ping()["echo"] == "ping"
        # The server closed the channel after answering; the next
        # request hits a clean EOF on the reused socket and must retry
        # on a fresh connection.
        assert client.ping()["echo"] == "ping"
        assert client.reconnects == 1
        assert len(served) == 2
        assert client.requests == 2     # failed exchanges don't count
    finally:
        stop()


def test_fresh_connection_failure_still_raises(tmp_path):
    """Reconnect-once is only for reused sockets: a peer that fails the
    very first exchange surfaces as FarmError, same as before pooling."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    port = sock.getsockname()[1]

    def close_without_answering():
        conn, _ = sock.accept()
        conn.recv(65536)
        conn.close()

    thread = threading.Thread(target=close_without_answering, daemon=True)
    thread.start()
    try:
        client = PeerClient("127.0.0.1", port, timeout=5.0)
        with pytest.raises(FarmError, match="closed the connection"):
            client.ping()
        assert client.reconnects == 0
        thread.join(timeout=5)
    finally:
        sock.close()


def test_farm_client_survives_daemon_restart(tmp_path, model_source):
    """FarmClient re-reads the endpoint file on reconnect, so a daemon
    restart — new pid, new port — is invisible to a pooled client."""
    from repro.farm import FarmDaemon, FarmServer

    def start(root):
        daemon = FarmDaemon(root, workers=1, model_source=model_source)
        server = FarmServer(daemon)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        return daemon, server, thread

    root = str(tmp_path / "farm")
    daemon, server, thread = start(root)
    client = FarmClient(root, timeout=5.0)
    try:
        assert client.ping()["ok"]
        server.shutdown()
        thread.join()
        server.close()
        daemon.drain(timeout=30.0)
        # An in-process "restart" leaves the old handler thread alive on
        # the accepted socket; a real daemon death severs it.  Simulate
        # the severing so the pooled socket actually goes stale.
        client._sock.shutdown(socket.SHUT_RDWR)
        daemon, server, thread = start(root)
        assert client.ping()["ok"]      # re-reads daemon.json: new port
        assert client.reconnects == 1
    finally:
        server.shutdown()
        thread.join()
        server.close()
        daemon.drain(timeout=30.0)


def test_channel_negotiates_binary_after_first_reply(tmp_path,
                                                     model_source):
    """First request goes out JSON (compatibility); once the server
    echoes the capability flag, later requests on the channel frame
    their payloads."""
    from repro.farm import FarmDaemon, FarmServer
    daemon = FarmDaemon(tmp_path / "farm", workers=1,
                        model_source=model_source)
    server = FarmServer(daemon)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        client = FarmClient(str(tmp_path / "farm"), timeout=5.0)
        assert client._binary is False
        client.ping()
        assert client._binary is True   # server echoed "bin"
        client.ping()                   # second exchange framed: no error
        assert client.reconnects == 0
    finally:
        server.shutdown()
        thread.join()
        server.close()
        daemon.drain(timeout=30.0)
