"""Neuron coverage (paper §4.1).

A neuron is *covered* by a test set if its output exceeds threshold ``t``
for at least one input.  Following §7.1 of the paper, each layer's neuron
outputs are (optionally, on by default) scaled to ``[0, 1]`` per input —
``(out - min(out)) / (max(out) - min(out))`` over the layer's neuron
vector — so one threshold is meaningful across layers whose raw output
ranges differ.

Trackers accept either raw inputs (a fresh forward pass is executed) or
a :class:`~repro.nn.tape.ForwardPass` tape recorded by the caller, so a
generation engine that already ran the network for its objectives can
fold the same execution into coverage for free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError
from repro.nn.tape import ForwardPass, scale_layerwise
from repro.utils.rng import as_rng

__all__ = ["NeuronCoverageTracker", "scale_layerwise", "coverage_of_inputs",
           "raw_activations", "check_states_compatible", "merge_state_dicts"]


def check_states_compatible(a, b):
    """Raise :class:`CoverageError` unless two tracker snapshots are merge-
    compatible (same network name, neuron count, threshold/scaling, and
    tracked-layer mask).

    Snapshot-level — no :class:`~repro.nn.network.Network` object needed —
    so persisted coverage (e.g. a corpus store's ``coverage/*.npz``) can be
    validated and merged without rebuilding models.
    """
    if (a["network"] != b["network"]
            or int(a["total_neurons"]) != int(b["total_neurons"])):
        raise CoverageError(
            f"cannot merge coverage of network {b['network']!r} "
            f"({b['total_neurons']} neurons) into coverage of "
            f"{a['network']!r} ({a['total_neurons']})")
    if (float(a["threshold"]) != float(b["threshold"])
            or bool(a["scaled"]) != bool(b["scaled"])):
        raise CoverageError(
            "cannot merge trackers with different threshold/scaling — "
            "they measure different coverage criteria")
    if not np.array_equal(np.asarray(a["tracked"], dtype=bool),
                          np.asarray(b["tracked"], dtype=bool)):
        raise CoverageError(
            "cannot merge trackers with different layer filters")


def merge_state_dicts(a, b):
    """OR-merge two tracker snapshots into a new snapshot (PR-2 merge laws:
    commutative, associative, idempotent).  Inputs are not mutated."""
    check_states_compatible(a, b)
    merged = {
        "network": a["network"],
        "total_neurons": int(a["total_neurons"]),
        "threshold": float(a["threshold"]),
        "scaled": bool(a["scaled"]),
        "tracked": np.asarray(a["tracked"], dtype=bool).copy(),
        "covered": (np.asarray(a["covered"], dtype=bool)
                    | np.asarray(b["covered"], dtype=bool)),
    }
    return merged


def raw_activations(network, x, batch_size=256):
    """Neuron activations for raw inputs or a recorded forward tape.

    Shared dispatch for every coverage criterion: a
    :class:`~repro.nn.tape.ForwardPass` must belong to ``network`` and
    is read without re-execution; anything else is treated as a batch of
    inputs and run through ``network.neuron_activations``.
    """
    if isinstance(x, ForwardPass):
        if x.network is not network:
            raise CoverageError(
                f"tape of network {x.network.name!r} handed to a coverage "
                f"criterion over {network.name!r}")
        return x.neuron_activations()
    # Leave the dtype cast to the network so float32 models don't pay a
    # round-trip through float64.
    return network.neuron_activations(np.asarray(x), batch_size=batch_size)


class NeuronCoverageTracker:
    """Tracks which neurons of one network have been activated so far.

    This is the ``cov_tracker`` of Algorithm 1.  ``layer_filter`` lets
    experiments reproduce the paper's Table 8 setting, where coverage is
    measured "on layers except fully-connected layers".
    """

    def __init__(self, network, threshold=0.0, scaled=True,
                 layer_filter=None):
        self.network = network
        self.threshold = float(threshold)
        self.scaled = bool(scaled)
        included = []
        for entry in network.neuron_layers:
            if layer_filter is None or layer_filter(
                    network.layers[entry.layer_index]):
                included.append(entry)
        self._entries = included
        self._tracked = np.zeros(network.total_neurons, dtype=bool)
        for entry in included:
            self._tracked[entry.offset:entry.offset + entry.count] = True
        self.covered = np.zeros(network.total_neurons, dtype=bool)

    @classmethod
    def from_state(cls, network, state, fresh=False):
        """Rebuild a tracker from a :meth:`state_dict` snapshot.

        ``network`` may be a different object than the snapshot's origin
        (campaign workers rebuild models from payloads); it must match by
        name and neuron count.  ``layer_filter`` callables don't cross
        process boundaries, so the tracked mask is restored verbatim from
        the snapshot instead.  With ``fresh=True`` the covered mask
        starts empty — a tracker with the snapshot's *criterion* but
        none of its history.
        """
        if (state["network"] != network.name
                or state["total_neurons"] != network.total_neurons):
            raise CoverageError(
                f"tracker state of {state['network']!r} "
                f"({state['total_neurons']} neurons) cannot rebuild over "
                f"{network.name!r} ({network.total_neurons})")
        tracker = cls(network, threshold=state["threshold"],
                      scaled=state["scaled"])
        tracker._tracked = np.asarray(state["tracked"], dtype=bool).copy()
        tracker._entries = [
            entry for entry in tracker._entries
            if tracker._tracked[entry.offset:entry.offset + entry.count].all()
        ]
        if not fresh:
            tracker.covered = np.asarray(state["covered"], dtype=bool).copy()
        return tracker

    @property
    def tracked_count(self):
        """Number of neurons participating in coverage."""
        return int(self._tracked.sum())

    def activations(self, x):
        """Neuron activations for ``x`` (inputs or a tape), scaled if the
        tracker scales."""
        acts = raw_activations(self.network, x)
        if self.scaled:
            acts = scale_layerwise(acts, self.network.neuron_layers)
        return acts

    def update(self, x, rows=None):
        """Fold a batch of inputs (or a recorded tape) into coverage;
        returns #newly covered.

        ``rows`` optionally restricts the update to a subset of the
        batch (indices or boolean mask) — batched generation uses this
        to absorb only the samples that became difference-inducing.
        Per-input layer scaling commutes with row selection, so slicing
        before scaling is exact.
        """
        acts = raw_activations(self.network, x)
        if rows is not None:
            acts = acts[rows]
        if self.scaled:
            acts = scale_layerwise(acts, self.network.neuron_layers)
        active = (acts > self.threshold).any(axis=0) & self._tracked
        newly = int((active & ~self.covered).sum())
        self.covered |= active
        return newly

    def update_from_tape(self, tape, rows=None):
        """Alias of :meth:`update` for call sites holding a tape."""
        return self.update(tape, rows=rows)

    def coverage(self):
        """Covered fraction of tracked neurons (the paper's NCov)."""
        tracked = self.tracked_count
        if tracked == 0:
            raise CoverageError("tracker has no tracked neurons")
        return float((self.covered & self._tracked).sum() / tracked)

    def covered_count(self):
        return int((self.covered & self._tracked).sum())

    def uncovered_ids(self):
        """Flat indices of tracked neurons not yet covered."""
        return np.flatnonzero(self._tracked & ~self.covered)

    def pick_uncovered(self, rng=None):
        """Random uncovered neuron id, or ``None`` when fully covered.

        This is line 33 of Algorithm 1: "select a neuron n inactivated so
        far using cov_tracker".
        """
        candidates = self.uncovered_ids()
        if candidates.size == 0:
            return None
        rng = as_rng(rng)
        return int(candidates[rng.integers(0, candidates.size)])

    # -- merge protocol -----------------------------------------------------
    # Coverage is an OR over boolean masks, so per-worker trackers can be
    # shipped across process boundaries as plain dicts and OR-combined in
    # any order (see docs/ARCHITECTURE.md, "Coverage merge semantics").

    def state_dict(self):
        """Picklable snapshot: configuration + the covered mask (copies)."""
        return {
            "network": self.network.name,
            "total_neurons": self.network.total_neurons,
            "threshold": self.threshold,
            "scaled": self.scaled,
            "tracked": self._tracked.copy(),
            "covered": self.covered.copy(),
        }

    def _check_compatible(self, state):
        """Merging requires the same criterion over the same architecture.

        Workers rebuild networks from payloads, so object identity cannot
        be required; name, neuron count, threshold/scaling, and the
        tracked mask must match instead (snapshot-level check shared with
        :func:`check_states_compatible`).  The header dict references the
        live masks rather than ``state_dict()`` copies — this runs once
        per shard per model on every campaign merge.
        """
        check_states_compatible(
            {"network": self.network.name,
             "total_neurons": self.network.total_neurons,
             "threshold": self.threshold,
             "scaled": self.scaled,
             "tracked": self._tracked}, state)

    def load_state_dict(self, state):
        """Replace this tracker's covered mask with a saved snapshot."""
        self._check_compatible(state)
        self.covered[...] = np.asarray(state["covered"], dtype=bool)

    def merge(self, other):
        """Union coverage from another tracker (or its ``state_dict()``).

        OR is commutative, associative, and idempotent, so merging
        per-shard trackers in any order equals one tracker that saw the
        union of their inputs.  Returns ``self`` for chaining.
        """
        state = other.state_dict() if isinstance(
            other, NeuronCoverageTracker) else other
        self._check_compatible(state)
        self.covered |= np.asarray(state["covered"], dtype=bool)
        return self

    def reset(self):
        self.covered[:] = False

    def clone(self):
        """Copy with independent coverage state."""
        twin = NeuronCoverageTracker.__new__(NeuronCoverageTracker)
        twin.network = self.network
        twin.threshold = self.threshold
        twin.scaled = self.scaled
        twin._entries = self._entries
        twin._tracked = self._tracked
        twin.covered = self.covered.copy()
        return twin


def coverage_of_inputs(network, x, threshold=0.0, scaled=True,
                       layer_filter=None):
    """One-shot neuron coverage of ``x`` on ``network``."""
    tracker = NeuronCoverageTracker(network, threshold=threshold,
                                    scaled=scaled, layer_filter=layer_filter)
    tracker.update(x)
    return tracker.coverage()
