"""Table 12: iterations to the first difference vs model similarity.

A LeNet-1 control is compared against variants that differ in (1) the
number of training samples, (2) the number of filters per convolutional
layer, or (3) the number of training epochs.  The fewer the differences,
the more iterations DeepXplore needs; identical models time out ('-').
"""

from __future__ import annotations

import numpy as np

from repro.core import Hyperparams, Unconstrained
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentResult, make_engine
from repro.models import build_lenet1_variant
from repro.models.registry import TRAINING_DTYPE
from repro.nn import Trainer, dtypes
from repro.utils.rng import as_rng

__all__ = ["run_model_similarity", "train_control_pair"]

#: Perturbation grids.  The paper's training-sample row spans 0..10,000
#: removed samples from a 60,000-sample set; ours spans comparable
#: fractions of the (much smaller) synthetic training split.  The control
#: trains for few epochs so extra epochs genuinely move the boundary —
#: on a small dataset a fully converged model no longer changes.
SAMPLE_FRACTIONS = (0.0, 0.01, 0.1, 0.3, 0.6)
FILTER_DELTAS = (0, 1, 2, 3, 4)
EPOCH_DELTAS = (0, 1, 2, 4, 8)

_CONTROL_EPOCHS = 4
_TRAIN_SEED = 1234


def _train(network, x, y, epochs, rng):
    trainer = Trainer(network, loss="cross_entropy", optimizer="adam",
                      rng=rng)
    trainer.fit(x, y, epochs=epochs, batch_size=32)
    return network


def _build_variant(**kwargs):
    # Trained-model comparisons are pinned at the zoo's training dtype so
    # the bit-identical-twins row (amount = 0) stays exactly that.
    with dtypes.default_dtype(TRAINING_DTYPE):
        return build_lenet1_variant(**kwargs)


def train_control_pair(dataset, kind, amount, seed=0):
    """Train the control LeNet-1 and one perturbed variant.

    ``kind`` is ``"samples"``, ``"filters"`` or ``"epochs"``; ``amount``
    the perturbation magnitude (fraction removed, extra filters, or extra
    epochs).  Everything else — init seed, shuffle order — is identical,
    so ``amount = 0`` yields bit-identical twins (the paper's timeout row).
    """
    x, y = dataset.x_train, np.asarray(dataset.y_train)
    control = _build_variant(rng=as_rng(_TRAIN_SEED), name="control")
    _train(control, x, y, _CONTROL_EPOCHS, as_rng(_TRAIN_SEED + 1))

    if kind == "samples":
        n_remove = int(round(len(x) * amount))
        keep = slice(0, len(x) - n_remove)
        variant = _build_variant(rng=as_rng(_TRAIN_SEED),
                                 name="variant")
        _train(variant, x[keep], y[keep], _CONTROL_EPOCHS,
               as_rng(_TRAIN_SEED + 1))
    elif kind == "filters":
        variant = _build_variant(rng=as_rng(_TRAIN_SEED),
                                 extra_filters=int(amount),
                                 name="variant")
        _train(variant, x, y, _CONTROL_EPOCHS, as_rng(_TRAIN_SEED + 1))
    elif kind == "epochs":
        variant = _build_variant(rng=as_rng(_TRAIN_SEED),
                                 name="variant")
        _train(variant, x, y, _CONTROL_EPOCHS + int(amount),
               as_rng(_TRAIN_SEED + 1))
    else:
        raise ValueError(f"unknown perturbation kind {kind!r}")
    return control, variant


def _mean_iterations(control, variant, seeds, rng, max_iterations=150,
                     ascent="vanilla", beta=None):
    """Average ascent iterations to a difference; NaN per-seed timeouts.

    Uses the unconstrained (full-gradient) search: between near-identical
    models the 1-D lighting manifold almost never crosses the sliver
    where they disagree, so restricting to it would measure the
    constraint, not the model similarity the paper's Table 12 studies.
    """
    hp = Hyperparams(lambda1=1.0, lambda2=0.0, step=10.0 / 255.0,
                     max_iterations=max_iterations)
    engine = make_engine("sequential", [control, variant], hp,
                         Unconstrained(), "classification", rng,
                         ascent=ascent, beta=beta)
    iterations = []
    for i in range(seeds.shape[0]):
        test = engine.generate_from_seed(seeds[i], seed_index=i)
        if test is not None and test.iterations > 0:
            iterations.append(test.iterations)
    if not iterations:
        return float("nan"), 0
    return float(np.mean(iterations)), len(iterations)


def run_model_similarity(scale="small", seed=0, n_seeds=25,
                         max_iterations=150, ascent="vanilla", beta=None):
    """Run the Table 12 experiment (three perturbation families).

    ``ascent``/``beta`` select the update rule driving each per-seed
    ascent (see :func:`make_engine`).
    """
    dataset = load_dataset("mnist", scale=scale, seed=seed)
    rng = as_rng(seed + 12)
    n_seeds = min(n_seeds, dataset.x_test.shape[0])
    seeds, _ = dataset.sample_seeds(n_seeds, rng)
    result = ExperimentResult(
        experiment_id="table12",
        title="Iterations to first difference vs model similarity",
        headers=["Perturbation", "amount", "mean # iterations",
                 "# seeds with diff"],
        paper_reference=("identical models time out; iterations shrink as "
                         "differences grow (e.g. 616 -> 257 over the "
                         "training-sample row)"),
    )
    grids = [("samples", SAMPLE_FRACTIONS), ("filters", FILTER_DELTAS),
             ("epochs", EPOCH_DELTAS)]
    for kind, amounts in grids:
        for amount in amounts:
            control, variant = train_control_pair(dataset, kind, amount,
                                                  seed=seed)
            mean_iters, found = _mean_iterations(
                control, variant, seeds, as_rng(seed + 99),
                max_iterations=max_iterations, ascent=ascent, beta=beta)
            cell = "-" if np.isnan(mean_iters) else round(mean_iters, 1)
            result.rows.append([kind, amount, cell, found])
    result.notes.append(
        "'samples' amount = fraction of training data removed from the "
        "variant; '-' = no difference within the iteration budget")
    return result
