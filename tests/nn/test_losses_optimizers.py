"""Losses and optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (Adam, CrossEntropy, MeanSquaredError, Parameter, SGD,
                      get_loss, get_optimizer)


class TestCrossEntropy:
    def test_value_and_gradient(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])
        labels = np.array([0, 1])
        loss, grad = CrossEntropy()(probs, labels)
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert abs(loss - expected) < 1e-12
        assert grad[0, 0] == pytest.approx(-1 / (0.7 * 2))
        assert grad[0, 1] == 0.0

    def test_numeric_gradient(self):
        rng = np.random.default_rng(0)
        logits = rng.random((3, 4)) + 0.1
        probs = logits / logits.sum(axis=1, keepdims=True)
        labels = np.array([1, 3, 0])
        loss_fn = CrossEntropy()
        _, grad = loss_fn(probs, labels)
        eps = 1e-7
        for idx in [(0, 1), (1, 3), (2, 0), (0, 2)]:
            pp = probs.copy(); pp[idx] += eps
            pm = probs.copy(); pm[idx] -= eps
            numeric = (loss_fn(pp, labels)[0] - loss_fn(pm, labels)[0]) / (2 * eps)
            assert abs(grad[idx] - numeric) < 1e-5

    def test_clips_zero_probability(self):
        probs = np.array([[0.0, 1.0]])
        loss, grad = CrossEntropy()(probs, np.array([0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            CrossEntropy()(np.zeros((2, 3)), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            CrossEntropy()(np.zeros(3), np.zeros(3, dtype=int))


class TestMSE:
    def test_value_and_gradient(self):
        out = np.array([[1.0], [2.0]])
        target = np.array([0.0, 0.0])
        loss, grad = MeanSquaredError()(out, target)
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0], [2.0]])

    def test_zero_at_perfect_fit(self):
        out = np.array([[1.5], [-0.5]])
        loss, grad = MeanSquaredError()(out, out.ravel())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=200):
        """Minimize f(w) = |w|^2 — every optimizer must converge."""
        param = Parameter(np.array([5.0, -3.0]), "w")
        for _ in range(steps):
            param.zero_grad()
            param.grad += 2.0 * param.value
            optimizer.step([param])
        return np.abs(param.value).max()

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD(lr=0.1)) < 1e-6

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(SGD(lr=0.05, momentum=0.9)) < 1e-4

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam(lr=0.3)) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]), "w")
        opt = SGD(lr=0.1, weight_decay=0.5)
        param.zero_grad()  # zero task gradient: only decay acts
        opt.step([param])
        assert param.value[0] == pytest.approx(0.95)

    def test_invalid_lr(self):
        with pytest.raises(ConfigError):
            SGD(lr=0.0)
        with pytest.raises(ConfigError):
            Adam(lr=-1.0)

    def test_zero_grad_helper(self):
        param = Parameter(np.ones(3), "w")
        param.grad += 5.0
        SGD(lr=0.1).zero_grad([param])
        assert np.all(param.grad == 0.0)


def test_loss_and_optimizer_lookup():
    assert isinstance(get_loss("cross_entropy"), CrossEntropy)
    assert isinstance(get_loss("mse"), MeanSquaredError)
    mse = MeanSquaredError()
    assert get_loss(mse) is mse
    assert isinstance(get_optimizer("sgd", lr=0.1), SGD)
    assert isinstance(get_optimizer("adam"), Adam)
    with pytest.raises(ConfigError):
        get_optimizer("lbfgs")
