"""Background compaction: compact-merge / compact-distill jobs, spec
validation for the new kinds, federate jobs, and the housekeeper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusStore
from repro.errors import FarmError
from repro.farm import FarmDaemon, normalize_spec


def make_daemon(tmp_path, model_source, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backoff_base", 0.05)
    return FarmDaemon(str(tmp_path / "root"), model_source=model_source,
                      **kwargs)


def finished(daemon, job_id):
    return lambda: daemon.status(job_id)["status"] in ("done", "failed")


def _seed_store(path, n, seed=0):
    rng = np.random.default_rng(seed)
    store = CorpusStore(path)
    for i in range(n):
        store.add_entry(rng.normal(size=(4, 4)), "seed", origin=int(i))
    return store


# -- spec validation ----------------------------------------------------------
def test_federate_spec_requires_campaign():
    with pytest.raises(FarmError, match="campaign"):
        normalize_spec({"store": "s", "kind": "federate"})
    clean = normalize_spec({"store": "s", "kind": "federate",
                            "campaign": "/shared/c"})
    assert clean["campaign"] == "/shared/c"


def test_lease_is_federate_only_and_positive():
    with pytest.raises(FarmError, match="lease"):
        normalize_spec({"store": "s", "kind": "fuzz", "lease": 5})
    with pytest.raises(FarmError, match="lease"):
        normalize_spec({"store": "s", "kind": "federate",
                        "campaign": "/c", "lease": 0})
    clean = normalize_spec({"store": "s", "kind": "federate",
                            "campaign": "/c", "lease": 5})
    assert clean["lease"] == 5.0


def test_campaign_rejected_on_other_kinds():
    with pytest.raises(FarmError, match="campaign"):
        normalize_spec({"store": "s", "kind": "fuzz", "campaign": "/c"})


def test_compact_merge_spec_requires_sources():
    with pytest.raises(FarmError, match="source"):
        normalize_spec({"store": "archive", "kind": "compact-merge"})
    with pytest.raises(FarmError, match="source"):
        normalize_spec({"store": "archive", "kind": "compact-merge",
                        "sources": []})
    with pytest.raises(FarmError, match="destination"):
        normalize_spec({"store": "archive", "kind": "compact-merge",
                        "sources": ["archive"]})
    with pytest.raises(FarmError, match="bad source store name"):
        normalize_spec({"store": "archive", "kind": "compact-merge",
                        "sources": ["../escape"]})
    clean = normalize_spec({"store": "archive", "kind": "compact-merge",
                            "sources": ["a", "b"]})
    assert clean["sources"] == ["a", "b"]


def test_sources_rejected_on_other_kinds():
    with pytest.raises(FarmError, match="sources"):
        normalize_spec({"store": "s", "kind": "generate",
                        "sources": ["a"]})


def test_compact_every_validated(tmp_path, model_source):
    with pytest.raises(FarmError, match="compact_every"):
        FarmDaemon(str(tmp_path / "bad"), model_source=model_source,
                   compact_every=0)


# -- compact-merge ------------------------------------------------------------
def test_compact_merge_folds_tenants_into_archive(tmp_path, model_source,
                                                  wait_for):
    daemon = make_daemon(tmp_path, model_source).start()
    _seed_store(daemon.store_path("tenant-a"), 4, seed=1)
    _seed_store(daemon.store_path("tenant-b"), 3, seed=2)
    job = daemon.submit({"store": "archive", "kind": "compact-merge",
                         "sources": ["tenant-a", "tenant-b"]})
    assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert record["status"] == "done", record["error"]
    assert record["result"] == {"merged_sources": 2, "new_entries": 7,
                                "entries": 7}
    archive = CorpusStore(daemon.store_path("archive"))
    want = {e["hash"]
            for name in ("tenant-a", "tenant-b")
            for e in CorpusStore(daemon.store_path(name)).entries()}
    assert {e["hash"] for e in archive.entries()} == want

    # Replaying the merge is a no-op: snapshot-merge is idempotent.
    again = daemon.submit({"store": "archive", "kind": "compact-merge",
                           "sources": ["tenant-a", "tenant-b"]})
    assert wait_for(finished(daemon, again.job_id))
    assert daemon.status(again.job_id)["result"]["new_entries"] == 0
    assert daemon.drain(timeout=30)


def test_compact_merge_missing_source_parks_permanently(tmp_path,
                                                        model_source,
                                                        wait_for):
    daemon = make_daemon(tmp_path, model_source).start()
    job = daemon.submit({"store": "archive", "kind": "compact-merge",
                         "sources": ["ghost"]})
    assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert record["status"] == "failed"
    assert "ghost" in record["error"]
    assert record["attempts"] == 1      # deterministic: no retry burn
    assert daemon.drain(timeout=30)


# -- compact-distill ----------------------------------------------------------
def test_compact_distill_shrinks_after_generate(tmp_path, model_source,
                                                wait_for):
    daemon = make_daemon(tmp_path, model_source).start()
    gen = daemon.submit({"store": "t", "kind": "generate", "seeds": 10,
                         "shard_size": 4, "seed": 3})
    assert wait_for(finished(daemon, gen.job_id))
    assert daemon.status(gen.job_id)["status"] == "done"
    store = CorpusStore(daemon.store_path("t"))
    before = len(store)
    tests_before = len(store.entries(kind="test"))

    job = daemon.submit({"store": "t", "kind": "compact-distill",
                         "dataset": "mnist"})
    assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert record["status"] == "done", record["error"]
    assert record["result"]["kept_tests"] + record["result"]["dropped"] \
        == tests_before
    store = CorpusStore(daemon.store_path("t"))
    assert len(store) == before - record["result"]["dropped"]
    assert len(store.entries(kind="test")) == record["result"]["kept_tests"]
    assert daemon.drain(timeout=30)


def test_housekeeper_schedules_distill(tmp_path, model_source, wait_for):
    """--compact-every: the daemon compacts its own tenants unattended."""
    daemon = make_daemon(tmp_path, model_source,
                         compact_every=0.1).start()
    gen = daemon.submit({"store": "t", "kind": "generate", "seeds": 10,
                         "shard_size": 4, "seed": 3})
    assert wait_for(finished(daemon, gen.job_id))

    def distilled():
        return [j for j in daemon.status()
                if j["spec"]["kind"] == "compact-distill"
                and j["status"] == "done"]

    assert wait_for(distilled, timeout=60.0)
    # The sweep does not re-submit while one is already queued/running,
    # and an idle farm does not accumulate failed compactions.
    assert not [j for j in daemon.status()
                if j["spec"]["kind"].startswith("compact")
                and j["status"] == "failed"]
    assert daemon.drain(timeout=30)


def test_housekeeper_gossips_without_compaction(tmp_path, model_source,
                                                wait_for, monkeypatch):
    """Peer gossip — and the auto-discovery it feeds — must not require
    opting into compaction: a daemon with no ``compact_every`` still
    runs its housekeeper, just without the compaction sweep."""
    import threading

    import repro.farm.daemon as daemon_mod
    monkeypatch.setattr(daemon_mod, "_GOSSIP_INTERVAL", 0.05)
    daemon = make_daemon(tmp_path, model_source)
    polled = threading.Event()
    monkeypatch.setattr(daemon, "poll_peers", polled.set)
    sweeps = []
    monkeypatch.setattr(daemon, "_compact_sweep",
                        lambda: sweeps.append(1))
    daemon.start()
    try:
        assert wait_for(polled.is_set)
        assert not sweeps           # compaction stayed opt-in
    finally:
        assert daemon.drain(timeout=30)


def test_sweep_skips_stores_without_dataset(tmp_path, model_source):
    """A store with no config (nothing committed) cannot be distilled;
    the sweep must skip it rather than submit a doomed job."""
    daemon = make_daemon(tmp_path, model_source, compact_every=60.0)
    _seed_store(daemon.store_path("raw"), 2)    # no config, no tests
    assert daemon._compact_sweep() == []
    assert daemon.drain(timeout=30)
