"""JSON-lines TCP front door for a :class:`~repro.farm.daemon.FarmDaemon`.

Persistent request channel: a client sends any number of JSON-object
requests, one per line, on one connection; the server answers each with
one message in order, and the channel stays open until the client
closes it (one-shot clients that close after the first exchange keep
working unchanged).  Array payloads may ride as length-prefixed binary
frames after the JSON line when the client opts in — see
:mod:`repro.farm.wire` for the framing and the per-connection
negotiation.  Loopback only, ephemeral port; the bound endpoint is
published atomically to ``<root>/daemon.json`` so clients discover it
by farm root, not by port number::

    {"host": "127.0.0.1", "port": 40123, "pid": 12345}

Commands: ``ping``, ``submit`` (spec → job record, or a typed
rejection), ``status`` (all jobs or one ``job_id``), ``counts``, and
``drain`` (graceful shutdown) — plus the federation verbs from
docs/DISTRIBUTED.md: ``peers`` (gossip), ``store-manifest`` /
``store-entry`` / ``store-entries`` (corpus pull, with an optional
``have`` delta filter and batched fetch), ``store-push`` /
``store-entries`` in push mode / ``store-merge-coverage`` (corpus
push), and ``run-shard`` (remote campaign shard execution).  Errors
travel as ``{"ok": false, "error": ..., "kind": ...}`` with ``kind``
naming the error class so the client re-raises the right exception —
saturation keeps its ``retry_after`` hint across the wire.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading

from repro.errors import FarmError, ReproError
from repro.farm import wire
from repro.farm.locks import StoreLockedError
from repro.farm.queue import QueueSaturatedError, UnknownJobError
from repro.utils.atomicio import atomic_write_json

__all__ = ["FarmServer", "ENDPOINT_NAME"]

ENDPOINT_NAME = "daemon.json"

_HOST = "127.0.0.1"

#: JSON header line cap (binary frames are bounded separately by the
#: wire layer; in JSON-fallback mode this caps the whole message).
_MAX_LINE = wire.MAX_LINE


def _error_response(error):
    response = {"ok": False, "error": str(error)}
    if isinstance(error, QueueSaturatedError):
        response["kind"] = "saturated"
        response["retry_after"] = error.retry_after
    elif isinstance(error, StoreLockedError):
        response["kind"] = "locked"
    elif isinstance(error, UnknownJobError):
        response["kind"] = "unknown-job"
    else:
        response["kind"] = "error"
    return response


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        # Serve requests until the client closes the channel.  Typed
        # rejections (saturated, locked, unknown-job) are answers, not
        # channel failures — the connection stays usable after them.
        try:
            while True:
                try:
                    request, _ = wire.read_message(self.rfile, _MAX_LINE)
                except (json.JSONDecodeError, UnicodeDecodeError,
                        FarmError) as error:
                    # The framing itself is broken; answer once and
                    # hang up — resync on a corrupt stream is hopeless.
                    self.wfile.write(wire.dump_message(_error_response(
                        FarmError(f"bad request: {error}"))))
                    return
                if request is None:
                    return      # clean EOF: client closed the channel
                binary = bool(request.pop("bin", False))
                try:
                    response = self.server.dispatch(request)
                except ReproError as error:
                    response = _error_response(error)
                if binary:
                    # Echo the capability flag: the client switches its
                    # own requests to binary frames once it sees it.
                    response["bin"] = 1
                self.wfile.write(wire.dump_message(response,
                                                   binary=binary))
        except OSError:
            return              # client vanished mid-exchange


class FarmServer(socketserver.ThreadingTCPServer):
    """Serve one daemon's control socket; publishes the endpoint file."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, daemon):
        self.farm = daemon
        self.endpoint_path = os.path.join(daemon.root, ENDPOINT_NAME)
        self._drain_requested = threading.Event()
        super().__init__((_HOST, 0), _Handler)
        atomic_write_json(self.endpoint_path, {
            "host": _HOST,
            "port": self.server_address[1],
            "pid": os.getpid(),
        })

    @property
    def port(self):
        return self.server_address[1]

    def request_drain(self):
        """Ask the serve loop to shut down gracefully (signal-safe)."""
        self._drain_requested.set()

    def dispatch(self, request):
        cmd = request.get("cmd")
        if cmd == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "counts": self.farm.counts()}
        if cmd == "submit":
            job = self.farm.submit(request.get("spec") or {})
            return {"ok": True, "job": job.to_dict()}
        if cmd == "status":
            if request.get("job_id") is not None:
                return {"ok": True,
                        "job": self.farm.status(request["job_id"])}
            return {"ok": True, "jobs": self.farm.status()}
        if cmd == "counts":
            return {"ok": True, "counts": self.farm.counts()}
        if cmd == "drain":
            self._drain_requested.set()
            return {"ok": True, "draining": True}
        # -- federation verbs (repro.dist; docs/DISTRIBUTED.md) -----------
        if cmd == "peers":
            return {"ok": True, "gossip": self.farm.gossip(),
                    "peers": self.farm.peer_state()}
        if cmd == "store-manifest":
            reply = self.farm.store_manifest(request.get("store"),
                                             have=request.get("have"))
            return {"ok": True, **reply}
        if cmd == "store-entry":
            reply = self.farm.store_entry(request.get("store"),
                                          request.get("hash"))
            return {"ok": True, **reply}
        if cmd == "store-entries":
            # One verb, two directions: "hashes" fetches a batch,
            # "entries" pushes one (docs/DISTRIBUTED.md, wire protocol).
            if request.get("entries") is not None:
                reply = self.farm.store_push_many(
                    request.get("store"), request.get("entries"),
                    config=request.get("config"))
            else:
                reply = self.farm.store_entries(
                    request.get("store"), request.get("hashes") or [])
            return {"ok": True, **reply}
        if cmd == "store-push":
            reply = self.farm.store_push(request.get("store"),
                                         request.get("entry"),
                                         request.get("data"),
                                         config=request.get("config"))
            return {"ok": True, **reply}
        if cmd == "store-merge-coverage":
            reply = self.farm.store_merge_coverage(
                request.get("store"), request.get("coverage"),
                config=request.get("config"))
            return {"ok": True, **reply}
        if cmd == "run-shard":
            reply = self.farm.run_shard(request)
            return {"ok": True, **reply}
        raise FarmError(f"unknown command {cmd!r}")

    def serve_until_drained(self, poll=0.1):
        """Run the accept loop until a ``drain`` command arrives, then
        drain the daemon and clean up the endpoint file."""
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": poll},
                                  daemon=True)
        thread.start()
        try:
            self._drain_requested.wait()
        finally:
            self.farm.drain()
            self.shutdown()
            thread.join()
            self.close()

    def close(self):
        self.server_close()
        try:
            os.unlink(self.endpoint_path)
        except FileNotFoundError:
            pass


def read_endpoint(root):
    """Load ``<root>/daemon.json`` if it names a live process."""
    path = os.path.join(os.path.abspath(root), ENDPOINT_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            endpoint = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    try:
        os.kill(int(endpoint.get("pid", -1)), 0)
    except (ProcessLookupError, TypeError, ValueError):
        return None     # stale endpoint from a killed daemon
    except PermissionError:
        pass
    return endpoint


def connect(root, timeout=5.0):
    """TCP-connect to the daemon serving ``root``; socket or FarmError."""
    endpoint = read_endpoint(root)
    if endpoint is None:
        raise FarmError(
            f"no farm daemon running at {root} "
            "(start one with `repro serve --root ...`)")
    try:
        return socket.create_connection(
            (endpoint["host"], endpoint["port"]), timeout=timeout)
    except OSError as error:
        raise FarmError(
            f"farm daemon at {root} is not answering "
            f"({endpoint['host']}:{endpoint['port']}: {error})") from None
