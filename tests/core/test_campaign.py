"""Campaign runner: sharding, determinism across worker counts, merging.

The contract under test (docs/ARCHITECTURE.md, "Campaigns"): a campaign
is a pure function of (seed corpus, shard_size, seed) — the ``workers``
knob changes wall-clock only, never the tests found or the coverage
reached.
"""

import numpy as np
import pytest

from repro.core import (Campaign, GenerationResult, PAPER_HYPERPARAMS,
                        LightingConstraint, SingleRectOcclusion,
                        shard_corpus)
from repro.core.generator import GeneratedTest
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError


def test_shard_corpus_layout(rng):
    seeds = rng.random((21, 3))
    shards = shard_corpus(seeds, shard_size=8, seed=5)
    assert [s.seeds.shape[0] for s in shards] == [8, 8, 5]
    assert [s.shard_index for s in shards] == [0, 1, 2]
    np.testing.assert_array_equal(
        np.concatenate([s.indices for s in shards]), np.arange(21))
    np.testing.assert_array_equal(
        np.concatenate([s.seeds for s in shards]), seeds)


def test_shard_rngs_deterministic(rng):
    seeds = rng.random((20, 3))
    a = shard_corpus(seeds, shard_size=8, seed=5)
    b = shard_corpus(seeds, shard_size=8, seed=5)
    for sa, sb in zip(a, b):
        ra = np.random.default_rng(sa.seed_seq)
        rb = np.random.default_rng(sb.seed_seq)
        np.testing.assert_array_equal(ra.integers(0, 1000, 10),
                                      rb.integers(0, 1000, 10))


def test_shard_rngs_independent_per_shard(rng):
    shards = shard_corpus(rng.random((20, 3)), shard_size=4, seed=5)
    streams = [tuple(np.random.default_rng(s.seed_seq).integers(0, 2**31, 4))
               for s in shards]
    assert len(set(streams)) == len(streams)


def test_shard_corpus_empty_corpus_yields_no_shards():
    assert shard_corpus([], shard_size=4) == []
    assert shard_corpus(np.empty((0, 28, 28, 1)), shard_size=4) == []


def test_shard_corpus_shard_larger_than_corpus_is_one_shard(rng):
    seeds = rng.random((3, 5))
    shards = shard_corpus(seeds, shard_size=99, seed=1)
    assert len(shards) == 1
    np.testing.assert_array_equal(shards[0].seeds, seeds)
    np.testing.assert_array_equal(shards[0].indices, np.arange(3))


@pytest.mark.parametrize("workers", [1, 2])
def test_campaign_empty_corpus_is_clean_empty_result(
        mnist_trio, mnist_smoke, workers):
    """Regression: an empty corpus (a drained fuzz wave, a filtered-out
    seed set) must be a no-op result, not a crash."""
    empty = np.empty((0,) + mnist_smoke.x_test.shape[1:])
    result = _campaign(mnist_trio, workers=workers).run(empty)
    assert result.difference_count == 0
    assert result.seeds_processed == 0
    assert set(result.coverage) == {m.name for m in mnist_trio}


def test_batch_engine_empty_corpus_is_clean_empty_result(mnist_trio,
                                                         mnist_smoke):
    """Regression: BatchDeepXplore used to die in a size-0 reshape."""
    from repro.core import BatchDeepXplore
    empty = np.empty((0,) + mnist_smoke.x_test.shape[1:])
    result = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint()).run(empty)
    assert result.difference_count == 0
    assert result.seeds_processed == 0
    assert result.seeds_exhausted == 0


def test_campaign_shard_larger_than_corpus_runs_single_shard(
        mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(5, np.random.default_rng(8))
    big = Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                   LightingConstraint(), shard_size=500, seed=17)
    result = big.run(seeds)
    assert result.seeds_processed == 5


def test_requires_two_models(lenet1):
    with pytest.raises(ConfigError):
        Campaign([lenet1])


def test_validates_workers_and_shard_size(mnist_trio):
    with pytest.raises(ConfigError):
        Campaign(mnist_trio, workers=0)
    with pytest.raises(ConfigError):
        Campaign(mnist_trio, shard_size=0)


def _campaign(models, workers, trackers=None):
    return Campaign(models, PAPER_HYPERPARAMS["mnist"],
                    LightingConstraint(), workers=workers, shard_size=6,
                    seed=17, trackers=trackers)


def test_workers_do_not_change_results(mnist_trio, mnist_smoke):
    """The acceptance invariant: workers=2 == workers=1, bit for bit."""
    seeds, _ = mnist_smoke.sample_seeds(24, np.random.default_rng(3))
    serial = _campaign(mnist_trio, workers=1)
    parallel = _campaign(mnist_trio, workers=2)
    rs = serial.run(seeds)
    rp = parallel.run(seeds)
    assert rs.difference_count == rp.difference_count
    assert [t.seed_index for t in rs.tests] == \
        [t.seed_index for t in rp.tests]
    for a, b in zip(rs.tests, rp.tests):
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.predictions, b.predictions)
        assert a.iterations == b.iterations
    assert rs.coverage == rp.coverage
    for ts, tp in zip(serial.trackers, parallel.trackers):
        np.testing.assert_array_equal(ts.covered, tp.covered)


def test_seed_indices_are_global(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(24, np.random.default_rng(4))
    result = _campaign(mnist_trio, workers=1).run(seeds)
    assert result.difference_count > 0
    indices = [t.seed_index for t in result.tests]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)
    for test in result.tests:
        assert 0 <= test.seed_index < 24
        if test.iterations == 0:
            # Pre-disagreeing seeds are returned unchanged, so the global
            # index must point at the exact corpus row.
            np.testing.assert_array_equal(test.x, seeds[test.seed_index])


def test_campaign_counts_whole_corpus(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(24, np.random.default_rng(5))
    result = _campaign(mnist_trio, workers=2).run(seeds)
    assert result.seeds_processed == 24
    assert set(result.coverage) == {m.name for m in mnist_trio}


def test_campaign_merges_into_existing_trackers(mnist_trio, mnist_smoke):
    """Passed-in trackers accumulate: prior coverage survives the run."""
    seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(6))
    trackers = [NeuronCoverageTracker(m, threshold=0.0) for m in mnist_trio]
    trackers[0].update(seeds[:2])
    prior = trackers[0].covered.copy()
    _campaign(mnist_trio, workers=1, trackers=trackers).run(seeds)
    assert (trackers[0].covered & prior).sum() == prior.sum()


def test_shard_workers_start_from_driver_coverage(mnist_trio, mnist_smoke):
    """Regression: worker trackers used to start fresh per shard, so a
    campaign resumed over prior coverage (generate --resume, fuzz
    waves) still pointed its coverage objective at neurons earlier runs
    had already covered.  Shards must inherit the driver's coverage —
    the OR-merge back makes that lossless."""
    from repro.core import campaign as campaign_mod
    seeds, _ = mnist_smoke.sample_seeds(6, np.random.default_rng(11))
    trackers = [NeuronCoverageTracker(m, threshold=0.0) for m in mnist_trio]
    trackers[0].update(seeds[:2])
    prior = trackers[0].covered.copy()
    assert prior.any()
    campaign = _campaign(mnist_trio, workers=1, trackers=trackers)
    shard = shard_corpus(seeds, shard_size=6, seed=17)[0]
    tracker_states = [t.state_dict() for t in trackers]
    try:
        campaign_mod._init_worker(campaign._static_spec())
        outcome = campaign_mod._run_shard((tracker_states, shard))
    finally:
        campaign_mod._LOCAL.static = None
        campaign_mod._LOCAL.models = None
    covered = np.asarray(outcome["coverage"][0]["covered"], dtype=bool)
    assert (covered & prior).sum() == prior.sum()


def test_campaign_with_per_seed_constraint(mnist_trio, mnist_smoke):
    """Occlusion constraints (per-seed random patches) survive the trip
    through worker processes and stay deterministic."""
    seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(7))

    def occl_campaign(workers):
        return Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        SingleRectOcclusion(8, 8), workers=workers,
                        shard_size=4, seed=23)

    rs = occl_campaign(1).run(seeds)
    rp = occl_campaign(2).run(seeds)
    assert [t.seed_index for t in rs.tests] == \
        [t.seed_index for t in rp.tests]
    for a, b in zip(rs.tests, rp.tests):
        np.testing.assert_array_equal(a.x, b.x)


# -- GenerationResult.merge laws ----------------------------------------------
def _result_with(indices, processed=0):
    result = GenerationResult()
    for i in indices:
        result.tests.append(GeneratedTest(
            x=np.full((2,), float(i)), seed_index=i, iterations=1,
            predictions=np.array([0, 1]), seed_class=0, elapsed=0.1))
    result.seeds_processed = processed or len(indices)
    return result


def test_result_merge_orders_by_seed_index():
    merged = _result_with([5, 9]).merge(_result_with([2, 7]))
    assert [t.seed_index for t in merged.tests] == [2, 5, 7, 9]
    assert merged.seeds_processed == 4


def test_result_merge_is_order_independent():
    parts = [_result_with([4]), _result_with([0, 8]), _result_with([2])]
    ab = GenerationResult()
    for p in parts:
        ab.merge(_result_with([t.seed_index for t in p.tests]))
    ba = GenerationResult()
    for p in reversed(parts):
        ba.merge(_result_with([t.seed_index for t in p.tests]))
    assert [t.seed_index for t in ab.tests] == \
        [t.seed_index for t in ba.tests]
    assert ab.seeds_processed == ba.seeds_processed


def test_result_merge_adds_counters():
    a = _result_with([1])
    a.seeds_disagreed, a.seeds_exhausted, a.elapsed = 1, 2, 0.5
    b = _result_with([3])
    b.seeds_disagreed, b.seeds_exhausted, b.elapsed = 0, 1, 0.25
    a.merge(b)
    assert a.seeds_disagreed == 1
    assert a.seeds_exhausted == 3
    assert a.elapsed == 0.75
    assert a.coverage == {}  # fractions are not mergeable; recompute
