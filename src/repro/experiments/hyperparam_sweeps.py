"""Tables 9-11: first-difference runtime across hyperparameter choices.

The metric is the time DeepXplore needs to generate the *first*
difference-inducing input via gradient ascent (pre-disagreeing seeds don't
count — they never enter the ascent loop), averaged over repetitions with
different seed orders.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import TRIOS, get_trio
from repro.utils.rng import as_rng

__all__ = ["run_step_size_sweep", "run_lambda1_sweep", "run_lambda2_sweep",
           "first_difference_time"]

STEP_VALUES = (0.01, 0.1, 1.0, 10.0, 100.0)
LAMBDA1_VALUES = (0.5, 1.0, 2.0, 3.0)
LAMBDA2_VALUES = (0.5, 1.0, 2.0, 3.0)


def first_difference_time(models, dataset, hp, rng, max_seeds=30,
                          engine="sequential", ascent="vanilla", beta=None):
    """Seconds until the first ascent-found difference (NaN if none).

    With ``engine="batch"`` all seeds ascend together and the answer is
    the earliest ascent-found test's own elapsed time — the batched
    counterpart of "time to first difference".  ``ascent``/``beta``
    select the update rule for either engine.
    """
    seeds, _ = dataset.sample_seeds(
        min(max_seeds, dataset.x_test.shape[0]), rng)
    if engine == "batch":
        result = make_engine("batch", models, hp,
                             constraint_for_dataset(dataset),
                             dataset.task, rng, ascent=ascent,
                             beta=beta).run(seeds)
        times = [t.elapsed for t in result.tests if t.iterations > 0]
        return min(times) if times else float("nan")
    runner = make_engine("sequential", models, hp,
                         constraint_for_dataset(dataset), dataset.task,
                         rng, ascent=ascent, beta=beta)
    start = time.perf_counter()
    for i in range(seeds.shape[0]):
        test = runner.generate_from_seed(seeds[i], seed_index=i)
        if test is not None and test.iterations > 0:
            return time.perf_counter() - start
    return float("nan")


def _sweep(experiment_id, title, param_name, values, scale, seed,
           repetitions, use_cache, datasets, paper_reference,
           engine="sequential", ascent="vanilla", beta=None):
    datasets = datasets or list(TRIOS)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["Dataset"] + [f"{param_name}={v:g}" for v in values],
        paper_reference=paper_reference,
    )
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        models = get_trio(dataset_name, scale=scale, seed=seed,
                          dataset=dataset, use_cache=use_cache)
        base_hp = PAPER_HYPERPARAMS[dataset_name]
        row = [dataset_name]
        for value in values:
            hp = base_hp.with_(**{param_name: value})
            times = []
            for rep in range(repetitions):
                rng = as_rng(seed * 7919 + rep)
                times.append(first_difference_time(
                    models, dataset, hp, rng, engine=engine,
                    ascent=ascent, beta=beta))
            mean = float(np.nanmean(times)) if not all(
                np.isnan(t) for t in times) else float("nan")
            row.append("-" if np.isnan(mean) else round(mean, 3))
        result.rows.append(row)
    result.notes.append(
        f"cells: mean seconds to first ascent-found difference over "
        f"{repetitions} repetition(s) with the {engine} engine; "
        f"'-' = none found")
    return result


def run_step_size_sweep(scale="small", seed=0, repetitions=2,
                        use_cache=True, datasets=None, values=STEP_VALUES,
                        engine="sequential", ascent="vanilla", beta=None):
    """Table 9: runtime vs gradient-ascent step size s."""
    return _sweep(
        "table9", "First-difference runtime vs step size s", "step",
        values, scale, seed, repetitions, use_cache, datasets,
        paper_reference=("optimal s varies by dataset; e.g. MNIST fastest "
                         "at s=0.01 (0.19s), ImageNet at s=10 (1.06s)"),
        engine=engine, ascent=ascent, beta=beta)


def run_lambda1_sweep(scale="small", seed=0, repetitions=2,
                      use_cache=True, datasets=None, values=LAMBDA1_VALUES,
                      engine="sequential", ascent="vanilla", beta=None):
    """Table 10: runtime vs lambda1."""
    return _sweep(
        "table10", "First-difference runtime vs lambda1", "lambda1",
        values, scale, seed, repetitions, use_cache, datasets,
        paper_reference=("optimal lambda1 varies; e.g. MNIST fastest at 3, "
                         "VirusTotal at 2"),
        engine=engine, ascent=ascent, beta=beta)


def run_lambda2_sweep(scale="small", seed=0, repetitions=2,
                      use_cache=True, datasets=None, values=LAMBDA2_VALUES,
                      engine="sequential", ascent="vanilla", beta=None):
    """Table 11: runtime vs lambda2."""
    return _sweep(
        "table11", "First-difference runtime vs lambda2", "lambda2",
        values, scale, seed, repetitions, use_cache, datasets,
        paper_reference="lambda2 = 0.5 tends to be optimal for all datasets",
        engine=engine, ascent=ascent, beta=beta)
