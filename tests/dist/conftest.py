"""Distribution-layer test helpers: synthetic stores, in-process peers."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.corpus import CorpusStore


def _assert_stores_identical(path_a, path_b):
    """Bit-level equality of two corpus stores (same helper contract as
    tests/corpus/test_session_resume.py and tests/farm/conftest.py)."""
    a, b = CorpusStore(path_a), CorpusStore(path_b)
    assert [dict(e) for e in a.entries()] == [dict(e) for e in b.entries()]
    for entry in a.entries():
        np.testing.assert_array_equal(a.load_input(entry["hash"]),
                                      b.load_input(entry["hash"]))
    cov_a, cov_b = a.coverage_states(), b.coverage_states()
    assert set(cov_a) == set(cov_b)
    for name in cov_a:
        np.testing.assert_array_equal(cov_a[name]["covered"],
                                      cov_b[name]["covered"])
    assert a.fuzz_state() == b.fuzz_state()


#: Fingerprint for synthetic (model-free) sync tests.
SYNTH_CONFIG = {"models": ["SYN_A"], "neurons": [8], "threshold": 0.25,
                "scaled": True, "task": "classification"}


def _synth_coverage(covered_idx, name="SYN_A", total=8):
    """A valid NeuronCoverageTracker state dict without a model."""
    covered = np.zeros(total, dtype=bool)
    covered[list(covered_idx)] = True
    return {"network": name, "total_neurons": total, "threshold": 0.25,
            "scaled": True, "tracked": np.ones(total, dtype=bool),
            "covered": covered}


def _make_store(path, n_entries, seed=0, covered_idx=(0,)):
    """A committed store with ``n_entries`` seeds + synthetic coverage."""
    rng = np.random.default_rng(seed)
    store = CorpusStore(path)
    store.bind_config(SYNTH_CONFIG)
    for i in range(n_entries):
        store.add_entry(rng.normal(size=(4, 4)), "seed", origin=int(i))
    store.commit(
        coverage_states=store.merge_coverage(
            {"SYN_A": _synth_coverage(covered_idx)}),
        fuzz_state=store.fuzz_state())
    return store


def _wait_for(predicate, timeout=120.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    return predicate()


@pytest.fixture
def assert_stores_identical():
    return _assert_stores_identical


@pytest.fixture
def synth_config():
    return dict(SYNTH_CONFIG)


@pytest.fixture
def make_store():
    return _make_store


@pytest.fixture
def synth_coverage():
    return _synth_coverage


@pytest.fixture
def wait_for():
    return _wait_for


@pytest.fixture
def model_source(mnist_trio, mnist_smoke):
    """Daemon ``model_source`` serving the session-cached mnist trio."""
    def source(dataset_name, scale, seed):
        assert dataset_name == "mnist"
        return mnist_trio, mnist_smoke
    return source


@pytest.fixture
def live_peer(tmp_path, model_source):
    """An in-process daemon + server pair, torn down after the test.

    Yields ``(daemon, server, port)``.  The server's accept loop runs
    on a background thread; the daemon's workers are NOT started — sync
    and shard verbs are served directly by handler threads, and tests
    that need job execution call ``daemon.start()`` themselves.
    """
    from repro.farm import FarmDaemon, FarmServer
    daemon = FarmDaemon(tmp_path / "peer-root", workers=1,
                        model_source=model_source)
    server = FarmServer(daemon)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield daemon, server, server.port
    finally:
        server.shutdown()
        thread.join()
        server.close()
        daemon.drain(timeout=30.0)
