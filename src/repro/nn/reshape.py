"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layer import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Collapse all feature axes: (N, ...) -> (N, prod(...))."""

    def forward(self, x, training=False, workspace=None):
        return x.reshape(x.shape[0], -1), x.shape

    def backward(self, ctx, grad_out, accumulate=True):
        return grad_out.reshape(ctx)

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)
