"""Corpus synchronisation between hosts: pull/push with semilattice merge.

One protocol, two transports.  A *source* exposes exactly two reads —
a crash-consistent manifest (config + entry records + coverage states)
and per-entry input fetch — over either a shared filesystem
(:class:`LocalSource`, built on :meth:`CorpusStore.snapshot`) or the
farm daemon's JSON-over-TCP plumbing (:class:`RemoteSource`, the
``store-*`` RPC verbs from ``repro.farm.server``).  :func:`pull` drains
a source into a local store; :func:`push` is the write-side inverse,
feeding a remote daemon's store through the same verbs.

The whole protocol is a semilattice join, which is what makes it safe
to run at any time, from any side, any number of times:

* **idempotent** — entries are content-addressed (SHA-256), so a
  re-transferred entry dedups to a no-op; coverage merges with
  :func:`repro.coverage.merge_state_dicts` (OR), so replaying a
  snapshot changes nothing.
* **commutative** — A⊔B = B⊔A for both entries (set union, insertion
  order only affects iteration order, never content addressing) and
  coverage masks.
* **crash-safe** — entries land via the store's atomic ``.npy`` +
  append-only meta discipline *before* the coverage commit flips the
  checkpoint; a sync killed anywhere leaves a valid store that the next
  sync converges from.  The interesting crash addresses are armed as
  ``REPRO_FAULTS`` points: ``dist.pull.entry`` (per entry transferred)
  and ``dist.sync.mid`` (after entries, before the coverage commit).
"""

from __future__ import annotations

import base64
import io

import numpy as np

from repro.corpus.store import (CorpusStore, coverage_from_bytes,
                                coverage_to_bytes)
from repro.errors import FarmError
from repro.utils.faults import fault_point

__all__ = ["LocalSource", "RemoteSource", "pull", "push",
           "encode_array", "decode_array", "encode_coverage",
           "decode_coverage"]


# -- wire encoding ----------------------------------------------------------
# Arrays travel as base64 of their ``.npy`` serialization and coverage
# states as base64 of the exact ``.npz`` bytes committed snapshots use
# on disk — no second format to keep compatible, and both are
# self-describing (shape + dtype ride along).

def encode_array(x):
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(x))
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_array(payload):
    raw = base64.b64decode(payload.encode("ascii"))
    return np.load(io.BytesIO(raw), allow_pickle=False)


def encode_coverage(state):
    return base64.b64encode(coverage_to_bytes(state)).decode("ascii")


def decode_coverage(payload):
    return coverage_from_bytes(base64.b64decode(payload.encode("ascii")))


# -- sources ----------------------------------------------------------------
class LocalSource:
    """Shared-filesystem source: another store directory, possibly live.

    Reads go through :meth:`CorpusStore.snapshot`, so pulling from a
    store that another process is actively fuzzing yields a
    crash-consistent prefix — never a torn checkpoint.
    """

    def __init__(self, path):
        self.store = path if isinstance(path, CorpusStore) \
            else CorpusStore(path, create=False)

    def describe(self):
        return self.store.path

    def manifest(self):
        snap = self.store.snapshot()
        return {"config": snap["config"], "entries": snap["entries"],
                "coverage": snap["coverage"]}

    def fetch(self, entry_hash):
        return self.store.load_input(entry_hash)


class RemoteSource:
    """TCP source: a named store behind a farm daemon's ``store-*`` verbs."""

    def __init__(self, host, port, store, timeout=10.0):
        from repro.farm.client import PeerClient
        self.client = PeerClient(host, port, timeout=timeout)
        self.store = str(store)

    def describe(self):
        return f"{self.client.host}:{self.client.port}/{self.store}"

    def manifest(self):
        reply = self.client.store_manifest(self.store)
        return {"config": reply.get("config"),
                "entries": reply.get("entries", []),
                "coverage": {name: decode_coverage(payload)
                             for name, payload
                             in reply.get("coverage", {}).items()}}

    def fetch(self, entry_hash):
        return decode_array(
            self.client.store_entry(self.store, entry_hash)["data"])


def _as_source(source):
    if isinstance(source, (LocalSource, RemoteSource)):
        return source
    if hasattr(source, "manifest") and hasattr(source, "fetch"):
        return source
    return LocalSource(source)


# -- the protocol -----------------------------------------------------------
def pull(dest, source):
    """Pull everything ``source`` has that ``dest`` lacks; returns added.

    Order is the crash-safety contract: durable entry writes first
    (content-addressed, idempotent), then one atomic coverage commit.
    A crash mid-pull leaves entries without their coverage — harmless,
    the store's invariants hold — and re-pulling converges because the
    already-present prefix dedups away.
    """
    if not isinstance(dest, CorpusStore):
        dest = CorpusStore(dest)
    source = _as_source(source)
    manifest = source.manifest()
    if manifest.get("config") is not None:
        # Adopt when fresh, validate otherwise — syncing stores built
        # against different model trios is a ConfigError, not a merge.
        dest.bind_config(manifest["config"])
    merged = dest.merge_coverage(manifest.get("coverage") or {})
    added = 0
    for entry in manifest.get("entries", []):
        if entry["hash"] in dest:
            continue
        # Countdown N dies with N-1 entries transferred and no coverage
        # commit — the partial-sync state the idempotence tests replay.
        fault_point("dist.pull.entry")
        x = source.fetch(entry["hash"])
        meta = {k: v for k, v in entry.items() if k not in ("hash", "kind")}
        got, was_new = dest.add_entry(x, entry["kind"], **meta)
        if got != entry["hash"]:
            raise FarmError(
                f"entry {entry['hash'][:12]}… from {source.describe()} "
                f"hashed to {got[:12]}… after transfer — corrupt source "
                f"or wire")
        added += int(was_new)
    # Entries are durable; the coverage join is the commit point.
    fault_point("dist.sync.mid")
    dest.commit(coverage_states=merged, fuzz_state=dest.fuzz_state())
    return added


def push(source, host, port, store, timeout=10.0):
    """Push a local store into a remote daemon's store; returns pushed.

    The write-side mirror of :func:`pull`, for hosts that cannot be
    dialed back (NAT, firewalled workers): per-entry ``store-push``
    requests for everything the remote manifest lacks, then one
    ``store-merge-coverage`` to join coverage.  Same laws, same fault
    points, same convergence-by-replay story.
    """
    from repro.farm.client import PeerClient
    if not isinstance(source, CorpusStore):
        source = CorpusStore(source, create=False)
    client = PeerClient(host, port, timeout=timeout)
    snap = source.snapshot()
    remote = client.store_manifest(store)
    have = {entry["hash"] for entry in remote.get("entries", [])}
    pushed = 0
    for entry in snap["entries"]:
        if entry["hash"] in have:
            continue
        fault_point("dist.pull.entry")
        client.store_push(store, dict(entry),
                          encode_array(source.load_input(entry["hash"])),
                          config=snap["config"])
        pushed += 1
    fault_point("dist.sync.mid")
    client.store_merge_coverage(
        store,
        {name: encode_coverage(state)
         for name, state in snap["coverage"].items()},
        config=snap["config"])
    return pushed
