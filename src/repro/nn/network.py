"""The :class:`Network` container: a stateless layer stack plus the tape.

This is the piece of the substrate DeepXplore actually depends on.  Keras
gave the original authors three capabilities:

1. ``model.predict`` — plain inference (:meth:`Network.predict`);
2. sub-models exposing any intermediate neuron's output
   (:meth:`Network.neuron_activations`);
3. ``K.gradients(objective, input)`` — the derivative of any scalar built
   from output probabilities and hidden-neuron outputs with respect to the
   *input* (:meth:`Network.input_gradient_of_class`,
   :meth:`Network.input_gradient_of_neuron`).

All three are provided on top of a single primitive: :meth:`Network.run`
executes one recorded forward pass and returns an immutable
:class:`~repro.nn.tape.ForwardPass` tape, off which outputs, neuron
activations, and any number of input-gradients are derived without
re-running the network.  No forward or backward state is ever left on
the network or its layers, so concurrent tapes on the same network are
safe and the engine is reentrant.  The ``predict`` / ``neuron_*`` /
``input_gradient_*`` methods below are thin compatibility wrappers that
each build one fresh tape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CoverageError, ShapeError
from repro.nn import dtypes, instrumentation
from repro.nn.tape import ForwardPass

__all__ = ["Network", "NeuronId", "LayerNeurons"]


@dataclass(frozen=True)
class NeuronId:
    """Identifies one coverage neuron: layer position + channel/unit index."""

    layer_index: int
    neuron_index: int


@dataclass(frozen=True)
class LayerNeurons:
    """Per-layer slice of the flat neuron table."""

    layer_index: int
    layer_name: str
    offset: int
    count: int


class Network:
    """An ordered stack of layers with a fixed input shape.

    Parameters
    ----------
    layers:
        Sequence of :class:`repro.nn.layer.Layer`.
    input_shape:
        Shape of one input sample (no batch axis), e.g. ``(1, 28, 28)``.
    name:
        Used in reports and as the weight-cache key component.
    """

    def __init__(self, layers, input_shape, name="network"):
        self.layers = list(layers)
        self.input_shape = tuple(int(s) for s in input_shape)
        self.name = str(name)
        # Compute dtype: inferred from the parameters (all layers are
        # built under one policy scope), falling back to the policy for
        # parameter-free networks.
        params = [p for layer in self.layers for p in layer.parameters()]
        self._dtype = params[0].dtype if params else dtypes.get_default_dtype()
        self._output_shapes = []
        shape = self.input_shape
        for layer in self.layers:
            shape = tuple(layer.output_shape(shape))
            self._output_shapes.append(shape)
        self.output_shape = shape

        # Flat neuron table over layers that expose neurons.
        self._neuron_layers = []
        offset = 0
        prev_shape = self.input_shape
        for index, layer in enumerate(self.layers):
            if layer.exposes_neurons:
                count = layer.neuron_count(prev_shape)
                self._neuron_layers.append(
                    LayerNeurons(index, layer.name, offset, count))
                offset += count
            prev_shape = self._output_shapes[index]
        self.total_neurons = offset

    # -- introspection ------------------------------------------------------
    def parameters(self):
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def buffers(self):
        buffers = {}
        for layer in self.layers:
            buffers.update(layer.buffers())
        return buffers

    def parameter_count(self):
        return int(sum(p.value.size for p in self.parameters()))

    @property
    def dtype(self):
        """The compute/storage dtype of this network."""
        return self._dtype

    def cast(self, dtype):
        """Convert all parameters and buffers to ``dtype`` in place."""
        dt = dtypes.resolve(dtype)
        for layer in self.layers:
            layer.cast(dt)
        self._dtype = dt
        return self

    @property
    def neuron_layers(self):
        """The flat neuron table (read-only list of :class:`LayerNeurons`)."""
        return list(self._neuron_layers)

    def neuron_layer_of(self, flat_index):
        """Map a flat neuron index to ``(LayerNeurons, local_index)``."""
        if not 0 <= flat_index < self.total_neurons:
            raise CoverageError(
                f"neuron index {flat_index} out of range "
                f"[0, {self.total_neurons})")
        for entry in self._neuron_layers:
            if flat_index < entry.offset + entry.count:
                return entry, flat_index - entry.offset
        raise CoverageError(f"corrupt neuron table for index {flat_index}")

    # -- execution ----------------------------------------------------------
    def _check_input(self, x):
        x = np.asarray(x, dtype=self._dtype)
        if x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"{self.name}: expected input shape (batch, "
                f"{', '.join(map(str, self.input_shape))}), got {x.shape}")
        return x

    def run(self, x, training=False, workspace=None):
        """Execute one recorded forward pass; returns a
        :class:`~repro.nn.tape.ForwardPass` tape.

        The tape owns every layer's output and backward context, so the
        oracle check, coverage update, and all input-gradients of one
        ascent iteration derive from this single execution.

        ``workspace`` (a :class:`~repro.nn.workspace.Workspace`) makes the
        layers draw output/scratch buffers from a reusable pool: the
        returned tape is then only valid until the next pass that shares
        the workspace.  The ascent loop passes one workspace per model;
        callers that hold tapes across forwards should pass ``None``.
        """
        x = self._check_input(x)
        outputs = []
        contexts = []
        out = x
        for layer in self.layers:
            out, ctx = layer.forward(out, training=training,
                                     workspace=workspace)
            outputs.append(out)
            contexts.append(ctx)
        instrumentation.record_forward(self, x.shape[0])
        return ForwardPass(self, x, outputs, contexts, training,
                           workspace=workspace)

    def forward(self, x, training=False):
        """Run the network and return only its final output."""
        return self.run(x, training=training).outputs()

    def predict(self, x, batch_size=256):
        """Inference in batches; never triggers training-mode behaviour."""
        x = self._check_input(x)
        if x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [self.forward(x[i:i + batch_size], training=False)
                  for i in range(0, x.shape[0], batch_size)]
        return np.concatenate(chunks, axis=0)

    def neuron_activations(self, x, batch_size=256):
        """Per-neuron outputs, shape ``(batch, total_neurons)``.

        Conv channels are reduced to their spatial mean, matching the
        original DeepXplore's definition of a neuron's output value.
        """
        x = self._check_input(x)
        rows = [self.run(x[start:start + batch_size]).neuron_activations()
                for start in range(0, x.shape[0], batch_size)]
        return np.concatenate(rows, axis=0)

    # -- input gradients (compatibility wrappers over a fresh tape) ---------
    def input_gradient_of_output(self, x, seed):
        """d(seed . output)/dx for a batched input ``x``.

        ``seed`` is broadcast against the network output; returns an array
        shaped like ``x``.
        """
        return self.run(x).gradient_of_output(seed)

    def input_gradient_of_class(self, x, class_index):
        """Gradient of ``output[:, class_index]`` with respect to ``x``."""
        return self.run(x).gradient_of_class(class_index)

    def input_gradient_of_neuron(self, x, flat_neuron_index):
        """Gradient of one hidden neuron's scalar output w.r.t. ``x``."""
        return self.run(x).gradient_of_neuron(flat_neuron_index)

    def neuron_value(self, x, flat_neuron_index):
        """The scalar output of one neuron for batched input ``x``.

        Routed through a tape and sliced: only the owning layer's neuron
        outputs are computed, not the full activation table.
        """
        return self.run(x).neuron_value(flat_neuron_index)

    # -- serialization --------------------------------------------------------
    def state_dict(self):
        """All weights and buffers as ``{name: array}`` (copies)."""
        state = {p.name: p.value.copy() for p in self.parameters()}
        for name, buf in self.buffers().items():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state):
        """Load arrays saved by :meth:`state_dict` (names must match)."""
        for param in self.parameters():
            if param.name not in state:
                raise KeyError(f"missing parameter {param.name!r} in state")
            value = np.asarray(state[param.name], dtype=param.value.dtype)
            if value.shape != param.value.shape:
                raise ShapeError(
                    f"{param.name}: saved shape {value.shape} != "
                    f"model shape {param.value.shape}")
            param.value[...] = value
        for name, buf in self.buffers().items():
            if name not in state:
                raise KeyError(f"missing buffer {name!r} in state")
            buf[...] = np.asarray(state[name], dtype=buf.dtype)

    def save(self, path):
        """Persist weights/buffers to an ``.npz`` file."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path):
        """Restore weights/buffers from :meth:`save` output."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def __repr__(self):
        return (f"Network(name={self.name!r}, layers={len(self.layers)}, "
                f"neurons={self.total_neurons}, "
                f"params={self.parameter_count()})")
