"""Benchmark: Table 7 — same-class vs different-class activation overlap."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_class_overlap


def test_table7_overlap(benchmark):
    result = run_once(benchmark, run_class_overlap, scale=SCALE, seed=SEED)
    diff_row, same_row = result.rows
    assert same_row[3] > diff_row[3]
