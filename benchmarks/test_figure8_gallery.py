"""Benchmark: Figure 8 — constraint gallery over the vision datasets."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_gallery


def test_figure8_gallery(benchmark, tmp_path):
    result = run_once(benchmark, run_gallery, scale=SCALE, seed=SEED,
                      per_cell=1, output_dir=str(tmp_path))
    assert result.rows
