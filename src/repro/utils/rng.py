"""Deterministic random-number-generator plumbing.

All stochastic code in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
every experiment reproducible: the same seed always yields the same
datasets, initial weights, and generated test inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "derive_rng", "spawn_rngs"]


def as_rng(seed_or_rng=None):
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(rng, label):
    """Derive a child generator from ``rng`` tagged by a string ``label``.

    Deriving (rather than sharing) generators keeps independent subsystems
    (e.g. dataset synthesis vs. weight init) from perturbing each other's
    random streams when one of them changes how much randomness it consumes.
    """
    rng = as_rng(rng)
    # Fold the label into a 64-bit offset so distinct labels give distinct,
    # reproducible child streams.
    digest = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    offset = int(digest.astype(np.uint64).sum() * 2654435761 % (2**63))
    child_seed = int(rng.integers(0, 2**63)) ^ offset
    return np.random.default_rng(child_seed)


def spawn_rngs(rng, count):
    """Return ``count`` independent child generators of ``rng``."""
    rng = as_rng(rng)
    seeds = rng.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
