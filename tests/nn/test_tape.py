"""ForwardPass tape: gradients vs finite differences, backward isolation,
and the no-residual-state guarantee.

Every layer type in ``repro.nn`` appears in at least one of the tiny
networks below, so ``gradient_of_class`` / ``gradient_of_neuron`` are
finite-difference-checked through each layer's pure
``backward(ctx, grad)`` path.
"""

import numpy as np
import pytest

from repro.nn import (AvgPool2D, BatchNorm, Conv2D, Dense, Dropout,
                      FixedScale, Flatten, GlobalAvgPool2D, MaxPool2D,
                      Network, Residual, dtypes)

#: Gradcheck settings per compute dtype.  The central difference at
#: float32 carries ~eps_machine/eps of relative noise, so the step and
#: tolerance scale with precision rather than pretending float32 can
#: resolve 1e-6.
GRADCHECK = {
    "float64": {"eps": 1e-6, "atol": 1e-6},
    "float32": {"eps": 1e-3, "atol": 1e-2},
}


def _dense_net():
    rng = np.random.default_rng(0)
    return Network([
        FixedScale(rng.normal(size=6), rng.uniform(0.5, 2.0, size=6),
                   name="scale"),
        Dense(6, 8, activation="tanh", rng=rng, name="h1"),
        Dropout(0.4, rng=rng, name="drop"),
        BatchNorm(8, name="bn"),
        Dense(8, 4, activation="softmax", rng=rng, name="out"),
    ], input_shape=(6,), name="dense_net")


def _conv_net():
    rng = np.random.default_rng(1)
    net = Network([
        Conv2D(1, 3, 3, padding=1, rng=rng, name="c1"),
        MaxPool2D(2, name="mp"),
        Conv2D(3, 4, 3, padding=1, activation="sigmoid", rng=rng, name="c2"),
        AvgPool2D(2, name="ap"),
        Flatten(name="f"),
        Dense(4 * 2 * 2, 5, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 8, 8), name="conv_net")
    return net


def _residual_net():
    rng = np.random.default_rng(2)
    body = [Conv2D(2, 2, 3, padding=1, rng=rng, name="b1"),
            BatchNorm(2, name="bn"),
            Conv2D(2, 2, 3, padding=1, activation="linear", rng=rng,
                   name="b2")]
    net = Network([
        Conv2D(1, 2, 3, padding=1, rng=rng, name="stem"),
        Residual(body, name="res"),
        GlobalAvgPool2D(name="gap"),
        Dense(2, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 4, 4), name="res_net")
    # Non-trivial inference statistics so BatchNorm's backward is exercised.
    bn = body[1]
    bn.running_mean[:] = rng.normal(size=2)
    bn.running_var[:] = rng.uniform(0.5, 2.0, size=2)
    return net


NETWORKS = {
    "dense": _dense_net,
    "conv": _conv_net,
    "residual": _residual_net,
}


def _build(kind, dtype="float64"):
    with dtypes.default_dtype(np.dtype(dtype)):
        return NETWORKS[kind]()


def _input_for(net, rng):
    return (rng.random((2,) + net.input_shape) + 0.05).astype(net.dtype)


def _probe_indices(net, rng, n=4):
    shape = (2,) + net.input_shape
    return [tuple(rng.integers(0, s) for s in shape) for _ in range(n)]


@pytest.mark.parametrize("dtype", sorted(GRADCHECK))
@pytest.mark.parametrize("kind", sorted(NETWORKS))
def test_gradient_of_class_matches_finite_difference(kind, dtype):
    net = _build(kind, dtype)
    assert net.dtype == np.dtype(dtype)
    tol = GRADCHECK[dtype]
    rng = np.random.default_rng(7)
    x = _input_for(net, rng)
    tape = net.run(x)
    grad = tape.gradient_of_class(1)
    assert grad.shape == x.shape
    assert grad.dtype == np.dtype(dtype)
    eps = tol["eps"]
    for idx in _probe_indices(net, rng):
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (float(net.predict(xp)[idx[0], 1])
                   - float(net.predict(xm)[idx[0], 1])) / (2 * eps)
        assert abs(grad[idx] - numeric) < tol["atol"], idx


@pytest.mark.parametrize("dtype", sorted(GRADCHECK))
@pytest.mark.parametrize("kind", sorted(NETWORKS))
def test_gradient_of_neuron_matches_finite_difference(kind, dtype):
    net = _build(kind, dtype)
    tol = GRADCHECK[dtype]
    rng = np.random.default_rng(8)
    x = _input_for(net, rng)
    tape = net.run(x)
    neurons = [0, net.total_neurons // 2, net.total_neurons - 1]
    eps = tol["eps"]
    for neuron in neurons:
        grad = tape.gradient_of_neuron(neuron)
        assert grad.dtype == np.dtype(dtype)
        idx = _probe_indices(net, rng, n=2)[0]
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        numeric = (float(net.neuron_value(xp, neuron)[idx[0]])
                   - float(net.neuron_value(xm, neuron)[idx[0]])) / (2 * eps)
        assert abs(grad[idx] - numeric) < tol["atol"], neuron


@pytest.mark.parametrize("kind", sorted(NETWORKS))
def test_multiple_backwards_from_one_tape_do_not_corrupt(kind):
    net = NETWORKS[kind]()
    rng = np.random.default_rng(9)
    x = _input_for(net, rng)
    tape = net.run(x)
    first = tape.gradient_of_class(0)
    # Interleave other backwards (and a fresh tape on the same network).
    tape.gradient_of_neuron(0)
    tape.gradient_of_class(1)
    net.run(rng.random((3,) + net.input_shape)).gradient_of_class(0)
    again = tape.gradient_of_class(0)
    np.testing.assert_array_equal(first, again)


def test_tape_outputs_and_activations_consistent():
    net = _conv_net()
    rng = np.random.default_rng(10)
    x = _input_for(net, rng)
    tape = net.run(x)
    np.testing.assert_allclose(tape.outputs(), net.predict(x))
    acts = tape.neuron_activations()
    np.testing.assert_allclose(acts, net.neuron_activations(x))
    for neuron in [0, 3, acts.shape[1] - 1]:
        np.testing.assert_allclose(tape.neuron_value(neuron), acts[:, neuron])
    scaled = tape.neuron_activations(scaled=True)
    assert scaled.min() >= 0.0 and scaled.max() <= 1.0


def test_tape_gradients_do_not_touch_parameter_grads():
    net = _dense_net()
    rng = np.random.default_rng(11)
    x = _input_for(net, rng)
    for param in net.parameters():
        param.zero_grad()
    tape = net.run(x)
    tape.gradient_of_class(0)
    tape.gradient_of_neuron(1)
    for param in net.parameters():
        assert np.all(param.grad == 0.0), param.name
    # The explicit training path accumulates.  (A uniform seed would die
    # in the softmax Jacobian, so weight one class only.)
    seed = np.zeros_like(tape.outputs())
    seed[:, 0] = 1.0
    tape.backward(seed)
    assert any(np.any(p.grad != 0.0) for p in net.parameters())


@pytest.mark.parametrize("kind", sorted(NETWORKS))
def test_no_recorded_state_survives_any_public_call(kind):
    """Regression for the old ``Network._recorded`` leak: after any
    public call, neither the network nor its layers hold execution
    state."""
    net = NETWORKS[kind]()
    rng = np.random.default_rng(12)
    x = _input_for(net, rng)

    def state_keys():
        keys = {"network": sorted(net.__dict__)}
        stack = list(net.layers)
        while stack:
            layer = stack.pop()
            keys[layer.name] = sorted(layer.__dict__)
            stack.extend(getattr(layer, "body", []))
            stack.extend(getattr(layer, "shortcut", []))
        return keys

    before = state_keys()
    net.predict(x)
    net.neuron_activations(x)
    net.neuron_value(x, 0)
    net.input_gradient_of_class(x, 0)
    net.input_gradient_of_neuron(x, net.total_neurons - 1)
    net.run(x).gradient_of_class(1)
    assert state_keys() == before
    assert not hasattr(net, "_recorded")
    for layer in net.layers:
        assert not hasattr(layer, "_cache")
