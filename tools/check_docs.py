#!/usr/bin/env python
"""CI docs check: every intra-repo markdown link must resolve.

Scans README.md and docs/*.md for relative links pointing at missing
files.  Exit code 1 (with a per-link report) on any broken link.

Run:  PYTHONPATH=src python tools/check_docs.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.utils.docs import broken_intra_repo_links, markdown_files  # noqa: E402


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = markdown_files(root)
    broken = broken_intra_repo_links(root, files=files)
    print(f"checked {len(files)} markdown files")
    if broken:
        for source, target in broken:
            print(f"BROKEN  {source}: ({target})")
        return 1
    print("all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
