"""Deterministic random-number-generator plumbing.

All stochastic code in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
every experiment reproducible: the same seed always yields the same
datasets, initial weights, and generated test inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "derive_rng", "spawn_rngs", "spawn_seed_sequences",
           "rng_from_seed_sequence"]


def as_rng(seed_or_rng=None):
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(rng, label):
    """Derive a child generator from ``rng`` tagged by a string ``label``.

    Deriving (rather than sharing) generators keeps independent subsystems
    (e.g. dataset synthesis vs. weight init) from perturbing each other's
    random streams when one of them changes how much randomness it consumes.
    """
    rng = as_rng(rng)
    # Fold the label into a 64-bit offset so distinct labels give distinct,
    # reproducible child streams.
    digest = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    offset = int(digest.astype(np.uint64).sum() * 2654435761 % (2**63))
    child_seed = int(rng.integers(0, 2**63)) ^ offset
    return np.random.default_rng(child_seed)


def spawn_rngs(rng, count):
    """Return ``count`` independent child generators of ``rng``."""
    rng = as_rng(rng)
    seeds = rng.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seed_sequences(seed, count):
    """``count`` independent child :class:`numpy.random.SeedSequence`\\ s.

    This is the sharding primitive of campaign runs: the children depend
    only on ``seed`` (an int or a ``SeedSequence``) and their position,
    never on how many worker processes execute them or in which order —
    shard ``i`` draws the same random stream whether it runs first on one
    worker or last on eight.  SeedSequence objects are picklable, so they
    travel to worker processes as-is and are turned into generators at
    the point of use with :func:`rng_from_seed_sequence`.
    """
    if isinstance(seed, np.random.SeedSequence):
        # Spawn from a reconstructed copy: SeedSequence.spawn advances
        # the parent's n_children_spawned, and mutating the caller's
        # sequence would make repeated spawns draw different children —
        # they must depend only on (entropy, spawn_key) and position.
        seed = np.random.SeedSequence(entropy=seed.entropy,
                                      spawn_key=seed.spawn_key,
                                      pool_size=seed.pool_size)
    else:
        seed = np.random.SeedSequence(seed)
    return seed.spawn(int(count))


def rng_from_seed_sequence(seed_sequence):
    """Instantiate the generator for one spawned child sequence."""
    return np.random.default_rng(seed_sequence)
