"""The tape-based engines: pass accounting and seed-path equivalence.

Two properties of the single-forward execution refactor are pinned here:

1. **Accounting** — each ascent iteration executes exactly one forward
   pass per model, shared by the differential objective, the coverage
   objective, the oracle check, and the coverage absorption (asserted
   with :class:`repro.nn.PassCounter`).
2. **Equivalence** — under a fixed RNG, the tape-driven ascent generates
   the same difference-inducing inputs as a reference ascent written
   against the per-call compatibility wrappers (the seed
   implementation's structure: fresh forwards for every objective term
   and oracle check).
"""

import numpy as np
import pytest

from repro.core import (BatchDeepXplore, DeepXplore, DifferentialObjective,
                        CoverageObjective, Hyperparams, JointObjective,
                        Unconstrained, make_oracle)
from repro.core.generator import normalize_gradient
from repro.coverage import NeuronCoverageTracker
from repro.nn import Dense, Network, PassCounter


def _make_models(n=3, seed=0):
    models = []
    for i in range(n):
        rng = np.random.default_rng(seed + i)
        models.append(Network([
            Dense(4, 8, rng=rng, name="h"),
            Dense(8, 3, activation="softmax", rng=rng, name="o"),
        ], (4,), name=f"m{i}"))
    return models


HP = Hyperparams(step=0.2, max_iterations=15, lambda1=1.0, lambda2=0.3)


def _reference_generate(models, trackers, hp, rng, seed_x):
    """The pre-tape ascent: compatibility wrappers, one fresh forward per
    view — used as the behavioural oracle for the tape loop."""
    oracle = make_oracle(models, "classification")
    constraint = Unconstrained()
    x = np.asarray(seed_x, dtype=np.float64)[None, ...]
    if bool(oracle.differs(x)[0]):
        for tracker in trackers:
            tracker.update(x)
        return x[0], 0
    seed_class = int(models[0].predict(x).argmax(axis=1)[0])
    target_index = int(rng.integers(0, len(models)))
    objective = JointObjective(
        DifferentialObjective(models, target_index, seed_class, hp.lambda1),
        CoverageObjective(trackers, rng=rng),
        hp.lambda2)
    constraint.setup(x[0], rng)
    for iteration in range(1, hp.max_iterations + 1):
        grad = objective.step_gradient(x)
        grad = constraint.apply(grad, x)
        grad = normalize_gradient(grad)
        x = constraint.project(x + hp.step * grad, x)
        if bool(oracle.differs(x)[0]):
            for tracker in trackers:
                tracker.update(x)
            return x[0], iteration
    return None, hp.max_iterations


def test_sequential_matches_reference_under_fixed_rng():
    seeds = np.random.default_rng(5).random((8, 4))

    engine_models = _make_models()
    engine = DeepXplore(engine_models, HP, rng=42)

    ref_models = _make_models()
    ref_trackers = [NeuronCoverageTracker(m, threshold=HP.threshold)
                    for m in ref_models]
    ref_rng = np.random.default_rng(42)

    found_any = False
    for i in range(seeds.shape[0]):
        test = engine.generate_from_seed(seeds[i], seed_index=i)
        ref_x, ref_iters = _reference_generate(
            ref_models, ref_trackers, HP, ref_rng, seeds[i])
        if test is None:
            assert ref_x is None
            continue
        found_any = True
        assert test.iterations == ref_iters
        np.testing.assert_allclose(test.x, ref_x, atol=1e-10)
    assert found_any
    # Coverage state evolved identically too.
    for engine_tracker, ref_tracker in zip(engine.trackers, ref_trackers):
        np.testing.assert_array_equal(engine_tracker.covered,
                                      ref_tracker.covered)


def test_sequential_engine_one_forward_per_model_per_iteration():
    models = _make_models(seed=3)
    engine = DeepXplore(models, HP, rng=7)
    seeds = np.random.default_rng(8).random((6, 4))
    with PassCounter() as counter:
        result = engine.run(seeds)
    iterations = (sum(t.iterations for t in result.tests)
                  + result.seeds_exhausted * HP.max_iterations)
    expected = result.seeds_processed + iterations
    for model in models:
        assert counter.forwards[model.name] == expected, model.name
    # At most two backwards (differential + coverage) per iteration.
    for model in models:
        assert counter.backwards[model.name] <= 2 * iterations


def test_batched_engine_one_forward_per_model_per_iteration():
    models = _make_models(seed=11)
    engine = BatchDeepXplore(models, HP, rng=9)
    seeds = np.random.default_rng(10).random((10, 4))
    with PassCounter() as counter:
        result = engine.run(seeds)
    if result.seeds_exhausted:
        loop_iterations = HP.max_iterations
    else:
        loop_iterations = max((t.iterations for t in result.tests), default=0)
    expected = 1 + loop_iterations
    for model in models:
        assert counter.forwards[model.name] == expected, model.name


def test_batched_matches_sequential_seed_classes_and_yield():
    # The batched engine's per-sample gradient-seed matrix must agree
    # with per-class sub-batching: same models, same seeds, same tests.
    models = _make_models(seed=21)
    seeds = np.random.default_rng(22).random((12, 4))
    batched = BatchDeepXplore(models, HP, rng=5)
    result = batched.run(seeds)
    assert result.difference_count > 0
    oracle = make_oracle(models, "classification")
    for test in result.tests:
        assert bool(oracle.differs(test.x[None])[0])
        np.testing.assert_array_equal(
            oracle.predictions(test.x[None])[:, 0], test.predictions)


def test_no_engine_state_survives_a_run():
    models = _make_models(seed=31)
    engine = DeepXplore(models, HP, rng=2)
    layer_keys = [sorted(layer.__dict__) for m in models for layer in m.layers]
    model_keys = [sorted(m.__dict__) for m in models]
    engine.run(np.random.default_rng(3).random((4, 4)))
    assert [sorted(m.__dict__) for m in models] == model_keys
    assert [sorted(layer.__dict__)
            for m in models for layer in m.layers] == layer_keys
