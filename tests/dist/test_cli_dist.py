"""CLI federation surface: ``repro join`` / ``repro peers`` /
``generate --peers`` argument handling.

The heavy lifting (RPC correctness, ledger behavior) is covered by
tests/dist/test_federation.py; these tests pin the operator-facing
contract: peers.json edits, exit codes, and the unreachable-peer and
bad-argument error paths.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading

import pytest

from repro.cli import main
from repro.dist import PEERS_NAME, PeerList, parse_peer
from repro.errors import ConfigError


def _peers_on_disk(root):
    with open(os.path.join(root, PEERS_NAME), encoding="utf-8") as handle:
        return [(p["host"], p["port"])
                for p in json.load(handle)["peers"]]


# -- parse_peer ---------------------------------------------------------------
def test_parse_peer_accepts_host_port():
    assert parse_peer("127.0.0.1:7001") == ("127.0.0.1", 7001)
    assert parse_peer(" box.local:80 ") == ("box.local", 80)


@pytest.mark.parametrize("bad", ["nocolon", ":7001", "host:", "host:x",
                                 "host:0", "host:70000"])
def test_parse_peer_rejects_garbage(bad):
    with pytest.raises(ConfigError, match="peer"):
        parse_peer(bad)


# -- repro join ---------------------------------------------------------------
def test_join_add_remove_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "root")
    assert main(["join", "--root", root, "127.0.0.1:7001"]) == 0
    assert "joined" in capsys.readouterr().out
    assert _peers_on_disk(root) == [("127.0.0.1", 7001)]

    # Duplicate join is a polite no-op, not an error.
    assert main(["join", "--root", root, "127.0.0.1:7001"]) == 0
    assert "already" in capsys.readouterr().out
    assert _peers_on_disk(root) == [("127.0.0.1", 7001)]

    assert main(["join", "--root", root, "--remove",
                 "127.0.0.1:7001"]) == 0
    assert _peers_on_disk(root) == []

    # Removing a peer that is not there fails visibly (exit 1): the
    # operator typo'd the address and should know.
    assert main(["join", "--root", root, "--remove",
                 "127.0.0.1:7001"]) == 1


def test_join_rejects_bad_peer(tmp_path, capsys):
    root = str(tmp_path / "root")
    assert main(["join", "--root", root, "not-a-peer"]) == 1
    assert "peer" in capsys.readouterr().err
    assert not os.path.exists(os.path.join(root, PEERS_NAME))


def test_peer_list_survives_torn_file(tmp_path):
    root = tmp_path / "root"
    root.mkdir()
    (root / PEERS_NAME).write_text("{torn", encoding="utf-8")
    assert PeerList(str(root)).peers() == []
    # And a join heals it.
    assert main(["join", "--root", str(root), "10.0.0.2:7001"]) == 0
    assert _peers_on_disk(str(root)) == [("10.0.0.2", 7001)]


# -- repro peers --------------------------------------------------------------
def test_peers_with_empty_list(tmp_path, capsys):
    assert main(["peers", "--root", str(tmp_path / "root")]) == 0
    assert "no peers configured" in capsys.readouterr().out


def test_peers_reports_unreachable(tmp_path, capsys):
    root = str(tmp_path / "root")
    # Port 1 on loopback: refused instantly, no daemon needed.
    assert main(["join", "--root", root, "127.0.0.1:1"]) == 0
    capsys.readouterr()
    assert main(["peers", "--root", root]) == 0
    assert "unreachable" in capsys.readouterr().out


def test_peers_survives_midrequest_reset(tmp_path, capsys):
    """A peer that accepts the connection and then dies mid-request
    (RST, not a clean close) must read as unreachable, not crash the
    command with a raw ConnectionResetError."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def rst_one_connection():
        conn, _ = server.accept()
        # Consume the request so the client is committed — blocked
        # reading the answer — then close with SO_LINGER zero, which
        # sends RST: the in-flight read fails with ECONNRESET rather
        # than a clean EOF.
        conn.recv(65536)
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        conn.close()

    thread = threading.Thread(target=rst_one_connection, daemon=True)
    thread.start()
    try:
        root = str(tmp_path / "root")
        assert main(["join", "--root", root, f"127.0.0.1:{port}"]) == 0
        capsys.readouterr()
        assert main(["peers", "--root", root]) == 0
        assert "unreachable" in capsys.readouterr().out
        thread.join(timeout=5)
    finally:
        server.close()


def test_peers_shows_live_gossip(tmp_path, capsys, live_peer):
    daemon, _server, port = live_peer
    root = str(tmp_path / "root")
    assert main(["join", "--root", root, f"127.0.0.1:{port}"]) == 0
    capsys.readouterr()
    assert main(["peers", "--root", root]) == 0
    out = capsys.readouterr().out
    assert f"127.0.0.1:{port}" in out
    assert "queue=0" in out
    assert "draining=False" in out


# -- gossip auto-discovery ----------------------------------------------------
def test_poll_peers_folds_gossiped_peers(tmp_path, live_peer):
    """Satellite: peers-of-peers heard in gossip join the persisted
    PeerList as ``via: gossip`` — capped, dedup'd, never ourselves."""
    from repro.dist import PeerList
    daemon, _server, port = live_peer
    # A second live daemon that knows about a third (not live) host.
    from repro.farm import FarmDaemon, FarmServer
    other = FarmDaemon(tmp_path / "other-root", workers=1)
    other_server = FarmServer(other)
    thread = threading.Thread(target=other_server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        PeerList(other.root).add("10.9.9.9", 7333)      # hearsay target
        PeerList(other.root).add("127.0.0.1", port)     # gossip echoes us
        PeerList(daemon.root).add("127.0.0.1", other_server.port)
        daemon.poll_peers()
        records = {(r["host"], r["port"]): r["via"]
                   for r in PeerList(daemon.root).records()}
        # Learned the third host via gossip; the joined peer kept its
        # provenance; our own endpoint was not folded back in.
        assert records[("10.9.9.9", 7333)] == "gossip"
        assert records[("127.0.0.1", other_server.port)] == "join"
        assert ("127.0.0.1", port) not in records
        # Idempotent: a second poll discovers nothing new.
        before = PeerList(daemon.root).records()
        daemon.poll_peers()
        assert PeerList(daemon.root).records() == before
    finally:
        other_server.shutdown()
        thread.join()
        other_server.close()
        other.drain(timeout=30.0)


def test_gossip_peer_cap(tmp_path):
    from repro.dist import MAX_GOSSIP_PEERS, PeerList
    peer_list = PeerList(str(tmp_path / "root"))
    for i in range(MAX_GOSSIP_PEERS + 4):
        peer_list.add("10.0.0.1", 7000 + i, via="gossip")
    records = peer_list.records()
    assert sum(r["via"] == "gossip" for r in records) == MAX_GOSSIP_PEERS
    # Joins are exempt from the cap, and upgrade gossip records.
    assert peer_list.add("10.0.0.2", 9000) is True
    assert peer_list.add("10.0.0.1", 7000) is False     # already listed
    assert PeerList(str(tmp_path / "root")).records()[0]["via"] == "join"


def test_peers_output_marks_discovered(tmp_path, capsys):
    from repro.dist import PeerList
    root = str(tmp_path / "root")
    PeerList(root).add("127.0.0.1", 1)                  # joined, dead
    PeerList(root).add("127.0.0.1", 2, via="gossip")    # discovered, dead
    assert main(["peers", "--root", root]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert "[discovered]" not in lines[0]
    assert "[discovered]" in lines[1]


# -- generate --peers ---------------------------------------------------------
def test_generate_peers_needs_campaign_engine(capsys):
    # Shards are the unit of distribution; any other engine with
    # --peers is a usage error, exit 2, before any peer is contacted.
    assert main(["--scale", "smoke", "generate", "mnist",
                 "--engine", "batch", "--peers", "127.0.0.1:7001",
                 "--seeds", "2"]) == 2
    assert "--engine campaign" in capsys.readouterr().err


def test_generate_peers_bad_address_is_user_error(capsys):
    assert main(["--scale", "smoke", "generate", "mnist",
                 "--engine", "campaign", "--peers", "nope",
                 "--seeds", "2"]) == 1
    assert "peer" in capsys.readouterr().err


def test_generate_peers_falls_back_when_peer_down(tmp_path, capsys):
    """A dead peer must not fail the run — shards fall back to local
    execution and the retirement is reported on stderr."""
    assert main(["--scale", "smoke", "generate", "mnist",
                 "--engine", "campaign", "--peers", "127.0.0.1:1",
                 "--seeds", "4", "--shard-size", "2",
                 "--corpus", str(tmp_path / "corpus")]) == 0
    captured = capsys.readouterr()
    assert "0/2 shards ran remotely" in captured.out
    assert "retired" in captured.err
