"""Benchmark: Table 8 — time and seeds to reach full neuron coverage."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_coverage_runtime


def test_table8_full_coverage(benchmark):
    result = run_once(benchmark, run_coverage_runtime, scale=SCALE,
                      seed=SEED)
    assert len(result.rows) == 5
