"""Joint-optimization objectives: values and gradients (Equations 2-3)."""

import numpy as np
import pytest

from repro.core import (CoverageObjective, DifferentialObjective,
                        JointObjective, RegressionDifferentialObjective)
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.nn import Dense, Network
from repro.utils.rng import as_rng


def _make_models(n=3, seed=0):
    models = []
    for i in range(n):
        rng = np.random.default_rng(seed + i)
        models.append(Network([
            Dense(4, 6, rng=rng, name="h"),
            Dense(6, 3, activation="softmax", rng=rng, name="o"),
        ], (4,), name=f"m{i}"))
    return models


def test_differential_value_definition():
    models = _make_models()
    x = np.random.default_rng(9).random((1, 4))
    obj = DifferentialObjective(models, target_index=1, seed_class=2,
                                lambda1=1.5)
    expected = (models[0].predict(x)[0, 2] + models[2].predict(x)[0, 2]
                - 1.5 * models[1].predict(x)[0, 2])
    assert obj.value(x) == pytest.approx(expected)


def test_differential_gradient_matches_numeric():
    models = _make_models()
    x = np.random.default_rng(10).random((1, 4))
    obj = DifferentialObjective(models, target_index=0, seed_class=1,
                                lambda1=2.0)
    grad = obj.gradient(x)
    eps = 1e-6
    for j in range(4):
        xp = x.copy(); xp[0, j] += eps
        xm = x.copy(); xm[0, j] -= eps
        numeric = (obj.value(xp) - obj.value(xm)) / (2 * eps)
        assert abs(grad[0, j] - numeric) < 1e-7


def test_differential_target_validation():
    models = _make_models()
    with pytest.raises(ConfigError):
        DifferentialObjective(models, target_index=5, seed_class=0,
                              lambda1=1.0)


def _make_regressors(n=2, seed=3):
    models = []
    for i in range(n):
        rng = np.random.default_rng(seed + i)
        models.append(Network([
            Dense(4, 6, rng=rng, name="h"),
            Dense(6, 1, activation="atan", rng=rng, name="o"),
        ], (4,), name=f"r{i}"))
    return models


def test_regression_objective_gradient():
    models = _make_regressors()
    x = np.random.default_rng(11).random((1, 4))
    obj = RegressionDifferentialObjective(models, target_index=1,
                                          lambda1=1.0)
    grad = obj.gradient(x)
    eps = 1e-6
    for j in range(4):
        xp = x.copy(); xp[0, j] += eps
        xm = x.copy(); xm[0, j] -= eps
        numeric = (obj.value(xp) - obj.value(xm)) / (2 * eps)
        assert abs(grad[0, j] - numeric) < 1e-7


def test_coverage_objective_targets_uncovered():
    models = _make_models(2)
    trackers = [NeuronCoverageTracker(m, threshold=0.5) for m in models]
    obj = CoverageObjective(trackers, rng=as_rng(0))
    targets = obj.pick()
    assert len(targets) == 2
    for tracker, target in zip(trackers, targets):
        assert target in set(tracker.uncovered_ids())


def test_coverage_objective_gradient_matches_numeric():
    models = _make_models(2)
    trackers = [NeuronCoverageTracker(m, threshold=0.5) for m in models]
    obj = CoverageObjective(trackers, rng=as_rng(1))
    obj.pick()
    x = np.random.default_rng(12).random((1, 4))
    grad = obj.gradient(x)
    eps = 1e-6
    for j in range(4):
        xp = x.copy(); xp[0, j] += eps
        xm = x.copy(); xm[0, j] -= eps
        numeric = (obj.value(xp) - obj.value(xm)) / (2 * eps)
        assert abs(grad[0, j] - numeric) < 1e-6


def test_coverage_objective_handles_full_coverage():
    models = _make_models(2)
    trackers = [NeuronCoverageTracker(m, threshold=-1e9, scaled=False)
                for m in models]
    x = np.random.default_rng(13).random((1, 4))
    for t in trackers:
        t.update(x)
    obj = CoverageObjective(trackers, rng=as_rng(2))
    assert obj.pick() == [None, None]
    np.testing.assert_array_equal(obj.gradient(x), 0.0)
    assert obj.value(x) == 0.0


def test_joint_objective_combines():
    models = _make_models()
    trackers = [NeuronCoverageTracker(m, threshold=0.5) for m in models]
    diff = DifferentialObjective(models, 0, 1, lambda1=1.0)
    cov = CoverageObjective(trackers, rng=as_rng(3))
    joint = JointObjective(diff, cov, lambda2=0.7)
    x = np.random.default_rng(14).random((1, 4))
    grad = joint.step_gradient(x)
    assert grad.shape == x.shape
    # lambda2 = 0 short-circuits the coverage term entirely.
    joint0 = JointObjective(diff, None, lambda2=0.0)
    np.testing.assert_allclose(joint0.step_gradient(x), diff.gradient(x))
    assert joint0.value(x) == pytest.approx(diff.value(x))
