"""Forward-pass accounting for the generation engines.

The single-forward execution refactor promises that each ascent
iteration runs every model exactly once — the differential objective,
coverage objective, oracle check, and tracker update all derive from the
same :class:`~repro.nn.tape.ForwardPass`.  This benchmark pins that
accounting with :class:`repro.nn.PassCounter` at the same scale as
``test_batch_throughput.py`` and records the wall-clock alongside.

The pre-tape engine paid ~3-4 forwards per model per iteration (oracle
predict, class gradient, neuron gradient, plus coverage re-runs on every
absorbed test); the ``forwards/iter`` column documents the new cost.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import (BatchDeepXplore, DeepXplore, LightingConstraint,
                        PAPER_HYPERPARAMS)
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.nn import PassCounter
from repro.utils.tables import render_table


@pytest.mark.parametrize("mode", ["sequential", "batched"])
def test_forward_reuse(benchmark, mode):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(25, np.random.default_rng(171))
    hp = PAPER_HYPERPARAMS["mnist"]
    engine_cls = DeepXplore if mode == "sequential" else BatchDeepXplore

    def run():
        engine = engine_cls(models, hp, LightingConstraint(), rng=73)
        counter = PassCounter()
        start = time.perf_counter()
        with counter:
            result = engine.run(seeds)
        return result, counter, time.perf_counter() - start

    result, counter, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.difference_count > 0

    if mode == "sequential":
        # One forward per model per seed visit (the oracle check on the
        # seed itself) plus exactly one per ascent iteration.
        iterations = (sum(t.iterations for t in result.tests)
                      + result.seeds_exhausted * hp.max_iterations)
        expected = result.seeds_processed + iterations
    else:
        # One forward per model for the seed batch, then one per loop
        # iteration over the shrinking active batch.
        if result.seeds_exhausted:
            loop_iterations = hp.max_iterations
        else:
            loop_iterations = max(
                (t.iterations for t in result.tests), default=0)
        iterations = loop_iterations
        expected = 1 + loop_iterations

    for model in models:
        assert counter.forwards[model.name] == expected, (
            f"{mode}/{model.name}: {counter.forwards[model.name]} forwards, "
            f"expected {expected}")

    per_iter = (counter.total_forwards() / (3 * max(iterations, 1)))
    print()
    print(render_table(
        ["mode", "seeds", "# diffs", "iters", "fwd/model", "fwd/iter",
         "backwards", "seconds"],
        [[mode, result.seeds_processed, result.difference_count,
          iterations, expected, round(per_iter, 2),
          counter.total_backwards(), round(elapsed, 2)]],
        title="[engine] forward passes per ascent iteration"))
