"""Synthetic stand-ins for the paper's five datasets, plus a disk cache.

``load_dataset(name, scale, seed)`` is the single entry point used by the
model zoo and the experiment harness; generated datasets are cached as
``.npz`` files so repeated experiment runs do not pay generation cost.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from repro.datasets.base import Dataset, SCALES, resolve_scale, train_test_split
from repro.datasets.drebin import generate_drebin
from repro.datasets.driving import generate_driving
from repro.datasets.imagenet import generate_imagenet
from repro.datasets.mnist import generate_mnist
from repro.datasets.pdfmalware import generate_pdf
from repro.datasets.pollution import pollute_labels
from repro.errors import DatasetError

__all__ = [
    "Dataset", "SCALES", "resolve_scale", "train_test_split",
    "generate_mnist", "generate_imagenet", "generate_driving",
    "generate_pdf", "generate_drebin", "pollute_labels",
    "load_dataset", "dataset_names", "cache_dir",
]

_GENERATORS = {
    "mnist": generate_mnist,
    "imagenet": generate_imagenet,
    "driving": generate_driving,
    "pdf": generate_pdf,
    "drebin": generate_drebin,
}


def dataset_names():
    """Names of the five datasets, in the paper's Table 1 order."""
    return ["mnist", "imagenet", "driving", "pdf", "drebin"]


def cache_dir():
    """Directory for dataset and model caches (override: REPRO_CACHE_DIR)."""
    path = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-deepxplore"))
    os.makedirs(path, exist_ok=True)
    return path


def load_dataset(name, scale="small", seed=0, use_cache=True):
    """Load (generating and caching on first use) a dataset by name."""
    if name not in _GENERATORS:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_GENERATORS)}")
    resolve_scale(scale)
    path = os.path.join(cache_dir(), f"dataset-{name}-{scale}-{seed}.pkl")
    if use_cache and os.path.exists(path):
        with open(path, "rb") as fh:
            return pickle.load(fh)
    dataset = _GENERATORS[name](scale=scale, seed=seed)
    if use_cache:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(dataset, fh)
        os.replace(tmp, path)
    return dataset
