"""Corpus sync laws: idempotent, commutative, crash-safe, wire-safe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusStore
from repro.corpus.store import coverage_from_bytes, coverage_to_bytes
from repro.dist import (LocalSource, RemoteSource, decode_array,
                        decode_coverage, encode_array, encode_coverage,
                        pull, push)
from repro.errors import ConfigError, FarmError
from repro.farm import PeerClient
from repro.utils.faults import InjectedFault, inject, reset_faults


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def test_array_codec_roundtrip():
    rng = np.random.default_rng(3)
    for arr in (rng.normal(size=(5, 4)),
                rng.normal(size=(2, 3, 3)).astype(np.float32),
                np.arange(7, dtype=np.int64)):
        got = decode_array(encode_array(arr))
        assert got.dtype == arr.dtype
        np.testing.assert_array_equal(got, arr)


def test_coverage_codec_roundtrip(synth_coverage):
    state = synth_coverage((1, 3, 5))
    got = decode_coverage(encode_coverage(state))
    assert got["network"] == state["network"]
    np.testing.assert_array_equal(got["covered"], state["covered"])
    # And the public byte helpers are the exact committed npz format.
    got2 = coverage_from_bytes(coverage_to_bytes(state))
    np.testing.assert_array_equal(got2["covered"], state["covered"])


def test_pull_is_idempotent(tmp_path, make_store, assert_stores_identical):
    make_store(tmp_path / "src", 6, seed=1, covered_idx=(0, 2))
    dest = CorpusStore(tmp_path / "dest")
    assert pull(dest, tmp_path / "src") == 6
    assert pull(dest, tmp_path / "src") == 0
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_pull_is_commutative(tmp_path, make_store):
    """a←b then b←a yields the same union corpus + OR'd coverage."""
    make_store(tmp_path / "a", 4, seed=1, covered_idx=(0, 1))
    make_store(tmp_path / "b", 4, seed=2, covered_idx=(6, 7))
    a, b = CorpusStore(tmp_path / "a"), CorpusStore(tmp_path / "b")
    pull(a, tmp_path / "b")
    pull(b, tmp_path / "a")
    assert {e["hash"] for e in a.entries()} == \
        {e["hash"] for e in b.entries()}
    np.testing.assert_array_equal(
        a.coverage_states()["SYN_A"]["covered"],
        b.coverage_states()["SYN_A"]["covered"])
    assert a.coverage_states()["SYN_A"]["covered"][[0, 1, 6, 7]].all()


def test_pull_refuses_mixed_configs(tmp_path, make_store, synth_config):
    make_store(tmp_path / "src", 2)
    dest = CorpusStore(tmp_path / "dest")
    other = dict(synth_config, models=["OTHER"])
    dest.bind_config(other)
    with pytest.raises(ConfigError):
        pull(dest, tmp_path / "src")
    assert len(dest) == 0


def test_pull_crash_mid_transfer_converges(tmp_path, make_store,
                                           assert_stores_identical):
    """A sync killed between entries resumes to the same final state."""
    make_store(tmp_path / "src", 5, covered_idx=(0, 4))
    dest = CorpusStore(tmp_path / "dest")
    with inject("dist.pull.entry", countdown=3, action="raise"):
        with pytest.raises(InjectedFault):
            pull(dest, tmp_path / "src")
    # Two entries landed, nothing committed — and the re-pull converges.
    assert pull(CorpusStore(tmp_path / "dest"), tmp_path / "src") == 3
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_pull_crash_before_commit_converges(tmp_path, make_store,
                                            assert_stores_identical):
    """All entries in, coverage commit missed: re-pull adds 0, commits."""
    make_store(tmp_path / "src", 3, covered_idx=(2,))
    dest = CorpusStore(tmp_path / "dest")
    with inject("dist.sync.mid", countdown=1, action="raise"):
        with pytest.raises(InjectedFault):
            pull(dest, tmp_path / "src")
    assert pull(CorpusStore(tmp_path / "dest"), tmp_path / "src") == 0
    assert_stores_identical(tmp_path / "src", tmp_path / "dest")


def test_local_source_describe(tmp_path, make_store, synth_config):
    make_store(tmp_path / "src", 3)
    source = LocalSource(tmp_path / "src")
    manifest = source.manifest()
    assert len(manifest["entries"]) == 3
    assert manifest["config"] == synth_config


# -- over the wire -----------------------------------------------------------
def test_remote_pull_and_push(tmp_path, make_store, live_peer,
                              assert_stores_identical):
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 5, covered_idx=(1, 2))

    dest = CorpusStore(tmp_path / "local")
    source = RemoteSource("127.0.0.1", port, "shared")
    assert pull(dest, source) == 5
    assert pull(CorpusStore(tmp_path / "local"), source) == 0
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")

    # Push new local work back up; the remote converges to the union.
    rng = np.random.default_rng(9)
    dest = CorpusStore(tmp_path / "local")
    for i in range(3):
        dest.add_entry(rng.normal(size=(4, 4)), "seed", origin=100 + i)
    dest.commit(coverage_states=dest.coverage_states(),
                fuzz_state=dest.fuzz_state())
    assert push(tmp_path / "local", "127.0.0.1", port, "shared") == 3
    assert push(tmp_path / "local", "127.0.0.1", port, "shared") == 0
    assert_stores_identical(daemon.store_path("shared"),
                            tmp_path / "local")


def test_remote_verbs_reject_unknown_store(live_peer):
    _daemon, _server, port = live_peer
    client = PeerClient("127.0.0.1", port)
    with pytest.raises(FarmError):
        client.store_manifest("nope")
    with pytest.raises(FarmError):
        client.store_entry("nope", "deadbeef")


def test_busy_store_fails_fast(tmp_path, make_store, live_peer,
                               synth_config):
    """A write verb against a store a job is using is a retryable
    rejection, not a blocked server thread."""
    daemon, _server, port = live_peer
    make_store(daemon.store_path("busy"), 1)
    guard = daemon._store_guard("busy")
    guard.acquire()
    try:
        client = PeerClient("127.0.0.1", port)
        with pytest.raises(FarmError, match="busy"):
            client.store_push("busy", {"hash": "x", "kind": "seed"},
                              encode_array(np.zeros((4, 4))),
                              config=synth_config)
    finally:
        guard.release()


def test_push_detects_corrupt_wire(tmp_path, make_store, live_peer,
                                   synth_config):
    daemon, _server, port = live_peer
    make_store(daemon.store_path("shared"), 1)
    client = PeerClient("127.0.0.1", port)
    with pytest.raises(FarmError, match="corrupt"):
        client.store_push("shared",
                          {"hash": "0" * 64, "kind": "seed"},
                          encode_array(np.ones((4, 4))),
                          config=synth_config)
