"""The :class:`ForwardPass` tape: one recorded forward, many backwards.

DeepXplore's joint-optimization loop needs four views of the same
execution — output probabilities (oracle), hidden-neuron activations
(coverage), the gradient of a class score, and the gradient of a hidden
neuron (objectives).  The original substrate recomputed a forward pass
for each view and stashed backward state on the :class:`Network` and its
layers, which made the engine non-reentrant.

:meth:`Network.run` instead returns a ``ForwardPass``: an immutable tape
owning every layer's output and backward context.  All derived views are
methods on the tape; none of them touch the network or layers, so any
number of backwards can be taken from one forward, in any order,
interleaved with other tapes on the same network.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import instrumentation

__all__ = ["ForwardPass", "scale_layerwise"]


def scale_layerwise(activations, neuron_layers):
    """Scale each layer's slice of ``activations`` to [0, 1] per input.

    ``activations`` has shape ``(batch, total_neurons)``; ``neuron_layers``
    is the network's flat neuron table.  Layers whose outputs are constant
    for an input scale to all-zeros (nothing is "more activated").
    """
    scaled = np.empty_like(activations)
    for entry in neuron_layers:
        block = activations[:, entry.offset:entry.offset + entry.count]
        lo = block.min(axis=1, keepdims=True)
        hi = block.max(axis=1, keepdims=True)
        span = hi - lo
        safe = np.where(span > 0, span, 1.0)
        scaled[:, entry.offset:entry.offset + entry.count] = \
            np.where(span > 0, (block - lo) / safe, 0.0)
    return scaled


class ForwardPass:
    """Immutable record of one forward pass through a :class:`Network`.

    Construction happens in :meth:`repro.nn.network.Network.run`; all
    attributes are read-only by convention and the per-layer tuples are
    never mutated.  Backward methods replay the tape without writing to
    the network, its layers, or the tape itself — parameter gradients are
    only accumulated when explicitly requested (``accumulate=True``,
    used by training).
    """

    __slots__ = ("network", "x", "training", "_layer_outputs", "_contexts",
                 "_workspace")

    def __init__(self, network, x, layer_outputs, contexts, training,
                 workspace=None):
        self.network = network
        self.x = x
        self.training = bool(training)
        self._layer_outputs = tuple(layer_outputs)
        self._contexts = tuple(contexts)
        self._workspace = workspace

    @property
    def dtype(self):
        """The dtype this pass was computed in."""
        return self.x.dtype

    # -- forward views ------------------------------------------------------
    @property
    def batch_size(self):
        return int(self.x.shape[0])

    def outputs(self):
        """The network's final output for the recorded input."""
        if not self._layer_outputs:
            return self.x
        return self._layer_outputs[-1]

    def layer_output(self, layer_index):
        """The recorded raw output of one layer."""
        return self._layer_outputs[layer_index]

    def neuron_activations(self, scaled=False):
        """Per-neuron outputs, shape ``(batch, total_neurons)``.

        Conv channels are reduced to their spatial mean, matching the
        original DeepXplore's definition of a neuron's output value.
        With ``scaled=True`` each layer's slice is min-max scaled to
        [0, 1] per input (the paper's §7.1 convention, used by
        :class:`~repro.coverage.NeuronCoverageTracker`).
        """
        network = self.network
        entries = network._neuron_layers
        cols = [network.layers[e.layer_index].neuron_outputs(
            self._layer_outputs[e.layer_index]) for e in entries]
        if cols:
            acts = np.concatenate(cols, axis=1)
        else:
            acts = np.zeros((self.batch_size, 0))
        if scaled:
            acts = scale_layerwise(acts, entries)
        return acts

    def neuron_value(self, flat_neuron_index):
        """One neuron's scalar output per batch element.

        Unlike :meth:`neuron_activations`, only the owning layer's neuron
        outputs are computed and the requested column sliced out.
        """
        entry, local = self.network.neuron_layer_of(flat_neuron_index)
        layer = self.network.layers[entry.layer_index]
        return layer.neuron_outputs(
            self._layer_outputs[entry.layer_index])[:, local]

    # -- backward views -----------------------------------------------------
    def _backward_from(self, layer_index, grad, accumulate=False,
                       inject=None):
        layers = self.network.layers
        for i in range(layer_index, -1, -1):
            if inject is not None and i == inject[0]:
                # Linearity: adding a seed where the sweep passes its
                # layer equals running a second backward from there.
                grad = grad + inject[1]
            grad = layers[i].backward(self._contexts[i], grad,
                                      accumulate=accumulate)
        instrumentation.record_backward(self.network, self.batch_size)
        if self._workspace is not None:
            # Workspace-backed layers may return views into reusable
            # buffers; hand the caller an owned copy so the gradient
            # survives the next pass.
            grad = np.array(grad, copy=True)
        return grad

    def backward(self, grad_outputs, accumulate=True):
        """Full backward from the network output (the training path).

        ``grad_outputs`` is the gradient of a scalar loss with respect to
        :meth:`outputs`; returns the gradient with respect to the input.
        Parameter gradients are accumulated unless ``accumulate=False``.
        """
        if not self._layer_outputs:
            return np.asarray(grad_outputs, dtype=self.dtype)
        return self._backward_from(len(self._layer_outputs) - 1,
                                   grad_outputs, accumulate=accumulate)

    def gradient_of_output(self, seed, accumulate=False):
        """d(seed . output)/dx for the recorded input.

        ``seed`` is broadcast against the network output, so it can be a
        single unbatched seed shared by the batch or a full per-sample
        seed array (one backward computes per-sample functionals of the
        output — e.g. each sample's own class score).
        """
        out = self.outputs()
        grad = np.broadcast_to(np.asarray(seed, dtype=self.dtype),
                               out.shape).copy()
        if not self._layer_outputs:
            return grad
        return self._backward_from(len(self._layer_outputs) - 1, grad,
                                   accumulate=accumulate)

    def gradient_of_class(self, class_index, accumulate=False):
        """Gradient of ``output[:, class_index]`` with respect to the input."""
        network = self.network
        if network.output_shape != (int(np.prod(network.output_shape)),):
            raise ShapeError(
                f"{network.name}: class gradients need a flat output, "
                f"got {network.output_shape}")
        seed = np.zeros(network.output_shape, dtype=self.dtype)
        seed[class_index] = 1.0
        return self.gradient_of_output(seed, accumulate=accumulate)

    def gradient_joint(self, seed, neuron=None, scale=1.0,
                       accumulate=False):
        """d(seed . output + scale * neuron_value)/dx in ONE sweep.

        By linearity this equals ``gradient_of_output(seed) + scale *
        gradient_of_neuron(neuron)``: the neuron's seed is injected as
        the backward sweep passes its layer, so the second sweep never
        runs.  The single sweep accumulates in a different float order
        than the two-sweep sum, so the bit-pinned float64 golden path
        keeps calling the separate methods.
        """
        if neuron is None:
            return self.gradient_of_output(seed, accumulate=accumulate)
        out = self.outputs()
        grad = np.broadcast_to(np.asarray(seed, dtype=self.dtype),
                               out.shape).copy()
        if not self._layer_outputs:
            return grad
        network = self.network
        entry, local = network.neuron_layer_of(neuron)
        layer = network.layers[entry.layer_index]
        out_shape = network._output_shapes[entry.layer_index]
        seed_one = layer.neuron_seed(out_shape, local, dtype=self.dtype)
        return self._backward_from(
            len(self._layer_outputs) - 1, grad, accumulate=accumulate,
            inject=(entry.layer_index,
                    np.asarray(scale * seed_one, dtype=self.dtype)))

    def gradient_of_neuron(self, flat_neuron_index, accumulate=False):
        """Gradient of one hidden neuron's scalar output w.r.t. the input."""
        network = self.network
        entry, local = network.neuron_layer_of(flat_neuron_index)
        layer = network.layers[entry.layer_index]
        out_shape = network._output_shapes[entry.layer_index]
        seed_one = layer.neuron_seed(out_shape, local, dtype=self.dtype)
        grad = np.broadcast_to(
            seed_one, (self.batch_size,) + tuple(out_shape)).copy()
        return self._backward_from(entry.layer_index, grad,
                                   accumulate=accumulate)

    def __repr__(self):
        return (f"ForwardPass(network={self.network.name!r}, "
                f"batch={self.batch_size}, training={self.training})")
