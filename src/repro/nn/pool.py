"""Pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


def _check_divisible(shape, pool):
    _, _, h, w = shape
    ph, pw = pool
    if h % ph or w % pw:
        raise ShapeError(
            f"pool {pool} does not evenly divide spatial dims {(h, w)}")


class MaxPool2D(Layer):
    """Non-overlapping max pooling with window == stride.

    All architectures in the zoo use non-overlapping windows, so the layer
    requires the spatial dims to be divisible by the pool size and exploits
    that with a reshape-based implementation.
    """

    def __init__(self, pool_size=2, name=None):
        super().__init__(name=name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = tuple(int(p) for p in pool_size)

    def forward(self, x, training=False, workspace=None):
        _check_divisible(x.shape, self.pool_size)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        shape = (n, c, h // ph, w // pw)
        # Strided-slice max over the ph*pw window positions: no
        # transpose/reshape copies, no argmax.  np.maximum of the same
        # elements is the same max, so outputs are bit-identical to the
        # historical windowed argmax implementation.
        if workspace is None:
            out = np.empty(shape, dtype=x.dtype)
        else:
            out = workspace.get((id(self), "out"), shape, x.dtype)
        np.copyto(out, x[:, :, 0::ph, 0::pw])
        for a in range(ph):
            for b in range(pw):
                if a or b:
                    np.maximum(out, x[:, :, a::ph, b::pw], out=out)
        # The memo caches the winner masks across repeated backwards
        # from one tape (differential + coverage reuse the same ctx).
        return out, (x, out, workspace, [])

    def backward(self, ctx, grad_out, accumulate=True):
        x, out, workspace, memo = ctx
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        if not memo:
            # First-max-wins masks in window row-major order — the same
            # tie-breaking as the historical argmax, so gradient routing
            # (and the float64 goldens) stay bit-identical.
            masks, taken = [], None
            for a in range(ph):
                for b in range(pw):
                    mask = x[:, :, a::ph, b::pw] == out
                    if taken is None:
                        taken = mask.copy()
                    else:
                        mask &= ~taken
                        taken |= mask
                    masks.append(mask)
            memo.append(masks)
        masks = memo[0]
        if workspace is None:
            grad_x = np.empty((n, c, h, w), dtype=grad_out.dtype)
        else:
            grad_x = workspace.get((id(self), "gx"), (n, c, h, w),
                                   grad_out.dtype)
        k = 0
        for a in range(ph):
            for b in range(pw):
                np.multiply(grad_out, masks[k],
                            out=grad_x[:, :, a::ph, b::pw])
                k += 1
        return grad_x

    def output_shape(self, input_shape):
        c, h, w = input_shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ShapeError(
                f"pool {self.pool_size} does not divide {(h, w)}")
        return (c, h // ph, w // pw)


class AvgPool2D(Layer):
    """Non-overlapping average pooling with window == stride."""

    def __init__(self, pool_size=2, name=None):
        super().__init__(name=name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = tuple(int(p) for p in pool_size)

    def forward(self, x, training=False, workspace=None):
        _check_divisible(x.shape, self.pool_size)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        out = (x.reshape(n, c, h // ph, ph, w // pw, pw)
               .mean(axis=(3, 5)))
        return out, x.shape

    def backward(self, ctx, grad_out, accumulate=True):
        n, c, h, w = ctx
        ph, pw = self.pool_size
        scale = 1.0 / (ph * pw)
        expanded = np.repeat(np.repeat(grad_out, ph, axis=2), pw, axis=3)
        return expanded * scale

    def output_shape(self, input_shape):
        c, h, w = input_shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ShapeError(
                f"pool {self.pool_size} does not divide {(h, w)}")
        return (c, h // ph, w // pw)


class GlobalAvgPool2D(Layer):
    """Average each channel over all spatial positions: (N,C,H,W)->(N,C)."""

    def forward(self, x, training=False, workspace=None):
        return x.mean(axis=(2, 3)), x.shape

    def backward(self, ctx, grad_out, accumulate=True):
        n, c, h, w = ctx
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)).copy()

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c,)
