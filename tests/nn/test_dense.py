"""Dense layer: shapes, gradient checks, neuron bookkeeping."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Dense

from tests.nn.gradcheck import check_layer_gradients


def test_forward_shape_and_value():
    rng = np.random.default_rng(0)
    layer = Dense(4, 3, activation="linear", rng=rng)
    x = rng.normal(size=(5, 4))
    out = layer.apply(x)
    assert out.shape == (5, 3)
    expected = x @ layer.weight.value.T + layer.bias.value
    np.testing.assert_allclose(out, expected)


def test_rejects_wrong_input_shape():
    layer = Dense(4, 3, rng=0)
    with pytest.raises(ShapeError):
        layer.apply(np.zeros((2, 5)))


@pytest.mark.parametrize("activation", ["linear", "relu", "sigmoid", "tanh",
                                        "softmax", "atan"])
def test_gradients(activation):
    rng = np.random.default_rng(1)
    layer = Dense(6, 4, activation=activation, rng=rng)
    x = rng.normal(size=(3, 6))
    check_layer_gradients(layer, x, rng)


def test_gradients_accumulate_until_zeroed():
    rng = np.random.default_rng(2)
    layer = Dense(3, 2, activation="linear", rng=rng)
    x = rng.normal(size=(2, 3))
    _, ctx = layer.forward(x)
    layer.backward(ctx, np.ones((2, 2)))
    first = layer.weight.grad.copy()
    _, ctx = layer.forward(x)
    layer.backward(ctx, np.ones((2, 2)))
    np.testing.assert_allclose(layer.weight.grad, 2 * first)
    layer.weight.zero_grad()
    assert np.all(layer.weight.grad == 0.0)


def test_neuron_bookkeeping():
    layer = Dense(5, 7, rng=0)
    assert layer.exposes_neurons
    assert layer.neuron_count((5,)) == 7
    out = np.arange(14, dtype=float).reshape(2, 7)
    np.testing.assert_array_equal(layer.neuron_outputs(out), out)
    seed = layer.neuron_seed((7,), 3)
    assert seed.shape == (7,)
    assert seed[3] == 1.0 and seed.sum() == 1.0


def test_output_shape():
    assert Dense(5, 7, rng=0).output_shape((5,)) == (7,)
