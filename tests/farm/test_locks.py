"""Store locks: exclusion, liveness-checked staleness, kill -9 healing."""

import json
import os

import pytest

from repro.farm import StoreLock, StoreLockedError, lock_holder
from repro.farm.locks import LOCK_NAME


def write_lock(path, pid, owner="someone"):
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, LOCK_NAME), "w",
              encoding="utf-8") as handle:
        json.dump({"pid": pid, "owner": owner}, handle)


def test_acquire_release_round_trip(tmp_path):
    store = str(tmp_path / "s")
    with StoreLock(store, owner="test") as lock:
        assert os.path.exists(lock.lock_path)
        with open(lock.lock_path, encoding="utf-8") as handle:
            holder = json.load(handle)
        assert holder["pid"] == os.getpid()
    assert not os.path.exists(lock.lock_path)


def test_live_foreign_holder_blocks(tmp_path):
    """Pid 1 is always alive and never us: the canonical live outsider."""
    store = str(tmp_path / "s")
    write_lock(store, pid=1)
    assert lock_holder(store)["pid"] == 1
    with pytest.raises(StoreLockedError):
        StoreLock(store).acquire()


def test_stale_lock_from_dead_pid_is_broken(tmp_path):
    """The kill -9 aftermath: a lock naming a dead pid self-heals."""
    store = str(tmp_path / "s")
    write_lock(store, pid=2 ** 22 + 12345)      # beyond default pid_max
    assert lock_holder(store) is None
    with StoreLock(store) as lock:
        with open(lock.lock_path, encoding="utf-8") as handle:
            assert json.load(handle)["pid"] == os.getpid()


def test_own_pid_lock_is_not_a_conflict(tmp_path):
    store = str(tmp_path / "s")
    write_lock(store, pid=os.getpid())
    assert lock_holder(store) is None


def test_torn_lock_file_reads_as_free(tmp_path):
    store = str(tmp_path / "s")
    os.makedirs(store)
    with open(os.path.join(store, LOCK_NAME), "w",
              encoding="utf-8") as handle:
        handle.write('{"pid": 12')              # torn mid-write
    assert lock_holder(store) is None
    with StoreLock(store):
        pass


def test_release_is_idempotent(tmp_path):
    lock = StoreLock(str(tmp_path / "s"))
    lock.acquire()
    lock.release()
    lock.release()
