"""Scaled-down Nvidia DAVE-2 self-driving models (paper's DRV_C1..C3).

All three regress a steering angle from a forward camera frame with an
``atan`` head.  Their differences follow §6.1 of the paper:

* **DAVE-orig** replicates the original pipeline: input batch
  normalization, a convolutional stack, and a deep fully connected head.
* **DAVE-norminit** drops the first batch-normalization layer and instead
  normalizes the randomly initialized weights (row-normalized init).
* **DAVE-dropout** cuts convolutional and fully connected layers and adds
  two dropout layers between the final fully connected layers.
"""

from __future__ import annotations

from repro.nn import (BatchNorm, Conv2D, Dense, Dropout, Flatten, MaxPool2D,
                      Network)
from repro.utils.rng import as_rng

__all__ = ["build_dave_orig", "build_dave_norminit", "build_dave_dropout"]

_INPUT_SHAPE = (1, 16, 32)


def build_dave_orig(rng=None, name="dave_orig"):
    """DAVE-orig: BN + three conv layers + three-layer FC head."""
    rng = as_rng(rng)
    layers = [
        BatchNorm(1, name="input_bn"),
        Conv2D(1, 8, 5, stride=2, padding=2, rng=rng, name="conv1"),  # 8x16
        Conv2D(8, 12, 5, stride=2, padding=2, rng=rng, name="conv2"),  # 4x8
        Conv2D(12, 16, 3, padding=1, rng=rng, name="conv3"),           # 4x8
        Flatten(name="flatten"),
        Dense(16 * 4 * 8, 64, rng=rng, name="fc1"),
        Dense(64, 32, rng=rng, name="fc2"),
        Dense(32, 10, rng=rng, name="fc3"),
        Dense(10, 1, activation="atan", rng=rng, name="steer"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)


def build_dave_norminit(rng=None, name="dave_norminit"):
    """DAVE-norminit: no input BN; row-normalized weight init."""
    rng = as_rng(rng)
    init = "row_normalized"
    layers = [
        Conv2D(1, 8, 5, stride=2, padding=2, initializer=init, rng=rng,
               name="conv1"),
        Conv2D(8, 12, 5, stride=2, padding=2, initializer=init, rng=rng,
               name="conv2"),
        Conv2D(12, 16, 3, padding=1, initializer=init, rng=rng, name="conv3"),
        Flatten(name="flatten"),
        Dense(16 * 4 * 8, 64, initializer=init, rng=rng, name="fc1"),
        Dense(64, 32, initializer=init, rng=rng, name="fc2"),
        Dense(32, 10, initializer=init, rng=rng, name="fc3"),
        Dense(10, 1, activation="atan", initializer=init, rng=rng,
              name="steer"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)


def build_dave_dropout(rng=None, name="dave_dropout"):
    """DAVE-dropout: shallower stack with dropout in the FC head."""
    rng = as_rng(rng)
    layers = [
        Conv2D(1, 8, 5, stride=2, padding=2, rng=rng, name="conv1"),  # 8x16
        MaxPool2D(2, name="pool1"),                                    # 4x8
        Conv2D(8, 12, 3, padding=1, rng=rng, name="conv2"),            # 4x8
        Flatten(name="flatten"),
        Dense(12 * 4 * 8, 48, rng=rng, name="fc1"),
        Dropout(0.25, rng=rng, name="drop1"),
        Dense(48, 16, rng=rng, name="fc2"),
        Dropout(0.25, rng=rng, name="drop2"),
        Dense(16, 1, activation="atan", rng=rng, name="steer"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)
