"""Plain-text table rendering for experiment reports.

Experiments return structured results; the harness renders them with
:func:`render_table` so that the benchmark output visually mirrors the
tables in the paper.
"""

from __future__ import annotations

__all__ = ["render_table"]


def _format_cell(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers, rows, title=None):
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    ``rows`` is an iterable of sequences; cells may be any type and floats
    are formatted compactly.  Returns the table as a single string.
    """
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(str_headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
