"""BatchNorm: statistics, modes, gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import BatchNorm

from tests.nn.gradcheck import check_layer_gradients


def test_training_normalizes_batch():
    rng = np.random.default_rng(0)
    layer = BatchNorm(4)
    x = rng.normal(loc=3.0, scale=2.0, size=(64, 4))
    out = layer.apply(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)


def test_running_stats_converge():
    rng = np.random.default_rng(1)
    layer = BatchNorm(2, momentum=0.5)
    for _ in range(30):
        layer.apply(rng.normal(loc=5.0, size=(128, 2)), training=True)
    np.testing.assert_allclose(layer.running_mean, 5.0, atol=0.2)
    np.testing.assert_allclose(layer.running_var, 1.0, atol=0.2)


def test_inference_uses_running_stats():
    layer = BatchNorm(2)
    layer.running_mean[:] = [1.0, -1.0]
    layer.running_var[:] = [4.0, 0.25]
    x = np.array([[3.0, 0.0]])
    out = layer.apply(x, training=False)
    np.testing.assert_allclose(out, [[1.0, 2.0]], atol=1e-4)


def test_conv_mode_normalizes_per_channel():
    rng = np.random.default_rng(2)
    layer = BatchNorm(3)
    x = rng.normal(loc=2.0, size=(16, 3, 5, 5))
    out = layer.apply(x, training=True)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)


@pytest.mark.parametrize("training", [True, False])
@pytest.mark.parametrize("shape", [(8, 3), (4, 3, 4, 4)])
def test_gradients(training, shape):
    rng = np.random.default_rng(3)
    layer = BatchNorm(3)
    # Give gamma/beta non-trivial values so their gradients are exercised.
    layer.gamma.value[:] = rng.uniform(0.5, 1.5, size=3)
    layer.beta.value[:] = rng.normal(size=3)
    layer.running_mean[:] = rng.normal(size=3)
    layer.running_var[:] = rng.uniform(0.5, 2.0, size=3)
    x = rng.normal(size=shape)
    check_layer_gradients(layer, x, rng, atol=1e-6, training=training)


def test_buffers_serialized():
    layer = BatchNorm(2, name="bn")
    buffers = layer.buffers()
    assert set(buffers) == {"bn.running_mean", "bn.running_var"}
    buffers["bn.running_mean"][:] = 7.0
    assert layer.running_mean[0] == 7.0  # same array, not a copy


def test_rejects_wrong_features():
    with pytest.raises(ShapeError):
        BatchNorm(3).apply(np.zeros((2, 4)))
