"""Activation functions as forward/backward strategy objects.

Layers with built-in activations (Dense, Conv2D) compose one of these so
that neuron coverage — which the paper measures on *post-activation*
outputs, matching the Keras convention — sees the activated values.

Each activation implements ``forward(z)`` and ``backward(grad, z, a)``
where ``z`` is the pre-activation, ``a`` the cached activation output, and
``grad`` the upstream gradient with respect to ``a``.  ``backward`` returns
the gradient with respect to ``z``.

Fused epilogues: layers that run the activation as a GEMM epilogue call
:meth:`Activation.forward_into` with ``out`` aliasing ``z``, overwriting
the pre-activation in place and dropping it from the backward context.
That is only legal when :attr:`Activation.needs_preactivation` is false —
i.e. ``backward`` can be computed from ``a`` (and ``grad``) alone, with
**bit-identical** results to the ``z``-based formula.  ``backward`` then
receives ``z=None``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Activation",
    "Linear",
    "Relu",
    "LeakyRelu",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Atan",
    "Elu",
    "Softplus",
    "get_activation",
]


class Activation:
    """Base class for activation strategies."""

    name = "activation"

    #: True when :meth:`backward` needs the pre-activation ``z``.  When
    #: false, fused layers may overwrite ``z`` in place and pass
    #: ``z=None`` to backward.
    needs_preactivation = True

    def forward(self, z):
        raise NotImplementedError

    def forward_into(self, z, out):
        """Compute the activation into ``out`` (which may alias ``z``).

        The generic fallback materializes :meth:`forward` and copies;
        cheap elementwise activations override with a true in-place
        kernel.  Values are bit-identical to :meth:`forward` either way.
        """
        result = self.forward(z)
        if result is not out:
            out[...] = result
        return out

    def backward(self, grad, z, a):
        raise NotImplementedError

    def backward_into(self, grad, z, a, out, mask=None):
        """Backward pass into a preallocated ``out`` buffer.

        ``mask`` is an optional preallocated bool scratch of the same
        shape; activations that can use it avoid every temporary.  The
        default falls back to :meth:`backward` plus a copy, so values
        are bit-identical either way.
        """
        result = self.backward(grad, z, a)
        if result is not out:
            out[...] = result
        return out

    def __repr__(self):
        return f"{type(self).__name__}()"


class Linear(Activation):
    """Identity activation."""

    name = "linear"
    needs_preactivation = False

    def forward(self, z):
        return z

    def forward_into(self, z, out):
        if out is not z:
            out[...] = z
        return out

    def backward(self, grad, z, a):
        return grad


class Relu(Activation):
    """Rectified linear unit: max(0, z)."""

    name = "relu"
    needs_preactivation = False

    def forward(self, z):
        return np.maximum(z, 0.0)

    def forward_into(self, z, out):
        return np.maximum(z, 0.0, out=out)

    def backward(self, grad, z, a):
        # a = max(z, 0) makes (a > 0) ⟺ (z > 0): identical either way.
        return grad * (a > 0.0)

    def backward_into(self, grad, z, a, out, mask=None):
        if mask is None:
            return super().backward_into(grad, z, a, out)
        np.greater(a, 0.0, out=mask)
        return np.multiply(grad, mask, out=out)


class LeakyRelu(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, alpha=0.1):
        self.alpha = float(alpha)

    @property
    def needs_preactivation(self):
        # For alpha > 0 the sign of a matches the sign of z, so backward
        # can recover the mask from a alone; alpha <= 0 folds signs.
        return self.alpha <= 0.0

    def forward(self, z):
        return np.where(z > 0.0, z, self.alpha * z)

    def backward(self, grad, z, a):
        ref = z if z is not None else a
        return grad * np.where(ref > 0.0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"
    needs_preactivation = False

    def forward(self, z):
        out = np.empty_like(z)
        self._compute(z, out)
        return out

    @staticmethod
    def _compute(z, out):
        # Masked writes: the pos mask is materialized (fancy indexing
        # copies) before any element of out — possibly aliasing z — is
        # written, so in-place use is safe and bit-identical.
        pos = z >= 0.0
        neg_ez = np.exp(z[~pos])
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        out[~pos] = neg_ez / (1.0 + neg_ez)
        return out

    def forward_into(self, z, out):
        return self._compute(z, out)

    def backward(self, grad, z, a):
        return grad * a * (1.0 - a)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"
    needs_preactivation = False

    def forward(self, z):
        return np.tanh(z)

    def forward_into(self, z, out):
        return np.tanh(z, out=out)

    def backward(self, grad, z, a):
        return grad * (1.0 - a * a)


class Atan(Activation):
    """Arctangent activation, used by the DAVE steering head.

    The Nvidia DAVE-2 architecture emits ``atan(z)`` so the steering angle
    is bounded to (-pi/2, pi/2); the original DeepXplore models multiply by
    2 but the bounded shape is what matters for gradient ascent.
    """

    name = "atan"

    def forward(self, z):
        return np.arctan(z)

    def backward(self, grad, z, a):
        return grad / (1.0 + z * z)


class Elu(Activation):
    """Exponential linear unit: smooth negative saturation."""

    name = "elu"

    def __init__(self, alpha=1.0):
        self.alpha = float(alpha)

    @property
    def needs_preactivation(self):
        # Same sign argument as LeakyRelu: for alpha > 0, a > 0 ⟺ z > 0.
        return self.alpha <= 0.0

    def forward(self, z):
        return np.where(z > 0.0, z, self.alpha * (np.exp(np.minimum(z, 0.0))
                                                  - 1.0))

    def backward(self, grad, z, a):
        ref = z if z is not None else a
        return grad * np.where(ref > 0.0, 1.0, a + self.alpha)


class Softplus(Activation):
    """log(1 + e^z), a smooth ReLU."""

    name = "softplus"

    def forward(self, z):
        return np.logaddexp(0.0, z)

    def backward(self, grad, z, a):
        return grad * Sigmoid().forward(z)


class Softmax(Activation):
    """Softmax over the last axis, with an exact Jacobian-vector backward.

    The exact backward (rather than the fused cross-entropy shortcut) is
    required because DeepXplore differentiates *individual class
    probabilities* with respect to the input (Equation 2 of the paper), not
    just the training loss.
    """

    name = "softmax"
    needs_preactivation = False

    def forward(self, z):
        shifted = z - z.max(axis=-1, keepdims=True)
        ez = np.exp(shifted)
        return ez / ez.sum(axis=-1, keepdims=True)

    def backward(self, grad, z, a):
        inner = (grad * a).sum(axis=-1, keepdims=True)
        return a * (grad - inner)


_ACTIVATIONS = {
    "linear": Linear,
    "relu": Relu,
    "leaky_relu": LeakyRelu,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
    "atan": Atan,
    "elu": Elu,
    "softplus": Softplus,
}


def get_activation(spec):
    """Resolve ``spec`` (name, class instance, or ``None``) to an instance."""
    if spec is None:
        return Linear()
    if isinstance(spec, Activation):
        return spec
    try:
        return _ACTIVATIONS[spec]()
    except KeyError:
        known = ", ".join(sorted(_ACTIVATIONS))
        raise ConfigError(f"unknown activation {spec!r}; known: {known}") from None
