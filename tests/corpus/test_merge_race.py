"""Regression: CorpusStore.merge against a source mutating mid-merge.

Before the snapshot-based merge, iterating a live source's entry dict
while another thread appended to it could raise ``RuntimeError:
dictionary changed size during iteration``, and reading its coverage
while a concurrent commit ran its generation GC could raise
``FileNotFoundError`` on a just-deleted ``.npz``.  ``snapshot()`` fixes
both: merge sees a crash-consistent prefix of the source and a later
merge picks up the rest.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.corpus import CorpusStore

CONFIG = {"models": ["SYN_A"], "neurons": [6], "threshold": 0.25,
          "scaled": True, "task": "classification"}


def _coverage(bit):
    covered = np.zeros(6, dtype=bool)
    covered[bit % 6] = True
    return {"SYN_A": {"network": "SYN_A", "total_neurons": 6,
                      "threshold": 0.25, "scaled": True,
                      "tracked": np.ones(6, dtype=bool),
                      "covered": covered}}


@pytest.mark.parametrize("total", [120])
def test_merge_survives_concurrent_writer(tmp_path, total):
    source = CorpusStore(tmp_path / "src")
    source.bind_config(CONFIG)
    rng = np.random.default_rng(0)
    for i in range(10):
        source.add_entry(rng.normal(size=(4, 4)), "seed", origin=int(i))
    source.commit(coverage_states=source.merge_coverage(_coverage(0)),
                  fuzz_state=None)

    dest = CorpusStore(tmp_path / "dest")
    errors = []
    done = threading.Event()

    def writer():
        # Same handle the merge reads from on disk: appends entries and
        # churns coverage generations (each commit GCs the previous
        # generation's .npz — the exact race snapshot() retries over).
        try:
            w = CorpusStore(tmp_path / "src")
            w.bind_config(CONFIG)
            wrng = np.random.default_rng(1)
            for i in range(10, total):
                w.add_entry(wrng.normal(size=(4, 4)), "seed",
                            origin=int(i))
                if i % 7 == 0:
                    w.commit(coverage_states=w.merge_coverage(
                        _coverage(i)), fuzz_state=None)
        except BaseException as error:     # noqa: BLE001
            errors.append(error)
        finally:
            done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    merges = 0
    while not done.is_set():
        dest.merge(tmp_path / "src")       # must never raise mid-churn
        merges += 1
    thread.join()
    assert not errors
    assert merges >= 1

    # One final quiescent merge converges on everything the writer made.
    dest.merge(tmp_path / "src")
    src = CorpusStore(tmp_path / "src")
    assert {e["hash"] for e in dest.entries()} == \
        {e["hash"] for e in src.entries()}
    assert len(dest) == total
    np.testing.assert_array_equal(
        dest.coverage_states()["SYN_A"]["covered"],
        src.coverage_states()["SYN_A"]["covered"])


def test_snapshot_entries_cover_checkpoint(tmp_path):
    """snapshot() entry list is a superset of what its coverage saw —
    the crash-consistency direction that makes pull/merge safe."""
    store = CorpusStore(tmp_path / "s")
    store.bind_config(CONFIG)
    rng = np.random.default_rng(2)
    for i in range(5):
        store.add_entry(rng.normal(size=(4, 4)), "seed", origin=int(i))
    store.commit(coverage_states=store.merge_coverage(_coverage(1)),
                 fuzz_state=None)
    # Entries appended after the commit still show up (append-only log).
    store.add_entry(rng.normal(size=(4, 4)), "seed", origin=99)
    snap = store.snapshot()
    assert len(snap["entries"]) == 6
    assert snap["generation"] == 1
    assert set(snap["coverage"]) == {"SYN_A"}
