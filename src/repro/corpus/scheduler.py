"""Coverage-guided seed scheduling (the fuzzer's priority queue).

libFuzzer-style energy assignment over corpus entries: seeds that keep
paying (novel coverage, fresh differences nearby) stay hot, seeds that
stop paying decay away, and seeds that already produced a
difference-inducing test retire — re-ascending them burns forwards to
rediscover what the store already holds.  This is what makes a second
``repro fuzz`` run over a saved corpus *strictly cheaper* than the
first: the resolved part of the pool is never re-run.

Energy rules (see docs/CORPUS.md for the worked example):

1. A new seed enters with energy ``INITIAL_ENERGY`` (1.0).
2. Each time a seed is scheduled its energy is multiplied by
   ``VISIT_DECAY`` (0.5) — unproductive seeds halve away.
3. If the wave it ran in covered new neurons, each surviving scheduled
   seed's energy is additionally scaled by ``1 + NOVELTY_WEIGHT * f``
   where ``f`` is the fraction of tracked neurons newly covered — seeds
   sitting in productive regions get revisited sooner.
4. A seed whose ascent yielded a difference-inducing test (or that
   pre-disagreed) retires: energy 0, never rescheduled.  Its test is
   archived in the store for regression value.
5. Energy at or below ``ENERGY_EPSILON`` (1/64 — reached by the sixth
   dry visit) retires the seed as exhausted.

Everything is deterministic: energies are pure functions of the wave
history, ties break by store insertion order, and the whole state
round-trips through JSON (``state_dict``/``load_state_dict``) so a
checkpointed session resumes with bit-identical scheduling decisions.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError

__all__ = ["SeedScheduler", "INITIAL_ENERGY", "VISIT_DECAY",
           "NOVELTY_WEIGHT", "ENERGY_EPSILON"]

INITIAL_ENERGY = 1.0
VISIT_DECAY = 0.5
NOVELTY_WEIGHT = 4.0
ENERGY_EPSILON = 1.0 / 64.0


class SeedScheduler:
    """Deterministic energy-based priority queue over corpus entries."""

    def __init__(self):
        self._stats = {}    # hash -> {energy, visits, retired}, insertion order

    # -- pool management ----------------------------------------------------
    def add(self, entry_hash, schedulable=True):
        """Register one corpus entry; returns True if it was new.

        ``schedulable=False`` archives the entry immediately (generated
        tests enter this way: they are already difference-inducing, so
        ascending from them again cannot find anything the store does
        not hold).
        """
        if entry_hash in self._stats:
            return False
        self._stats[entry_hash] = {
            "energy": INITIAL_ENERGY if schedulable else 0.0,
            "visits": 0,
            "retired": not schedulable,
        }
        return True

    def __contains__(self, entry_hash):
        return entry_hash in self._stats

    def __len__(self):
        return len(self._stats)

    def stats(self, entry_hash):
        return dict(self._stats[entry_hash])

    def pending_count(self):
        """Entries still eligible for scheduling."""
        return sum(1 for s in self._stats.values()
                   if not s["retired"] and s["energy"] >= ENERGY_EPSILON)

    def retired_count(self):
        return sum(1 for s in self._stats.values() if s["retired"])

    # -- scheduling ---------------------------------------------------------
    def next_wave(self, wave_size):
        """The next wave: up to ``wave_size`` hashes, hottest first.

        Sorting is stable on (-energy, insertion order), so equal-energy
        seeds run in the order they entered the corpus — the whole
        schedule is a pure function of the recorded history.
        """
        if wave_size < 1:
            raise ConfigError(f"wave_size must be >= 1, got {wave_size}")
        candidates = [
            (stats["energy"], order, entry_hash)
            for order, (entry_hash, stats) in enumerate(self._stats.items())
            if not stats["retired"] and stats["energy"] >= ENERGY_EPSILON]
        candidates.sort(key=lambda c: (-c[0], c[1]))
        return [entry_hash for _, _, entry_hash in candidates[:wave_size]]

    @staticmethod
    def shard_plan(wave, shard_size):
        """Deterministic partition of a scheduled wave into shard units.

        The distribution layer's ledger keys (``repro.dist.shards``)
        are defined by this plan: contiguous ``shard_size`` chunks in
        wave order — the exact slicing
        :func:`repro.core.campaign.shard_corpus` applies to the loaded
        inputs — each with a SHA-256 digest over its member entry
        hashes.  Because entry hashes are content addresses, a shard's
        digest equals the digest a host computes from the seed *arrays*
        it is about to execute, so two hosts that scheduled the same
        wave agree on every shard id and digest, and a host whose
        scheduler diverged is caught by a digest mismatch instead of
        silently corrupting the merged campaign.
        """
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        plan = []
        for index, start in enumerate(range(0, len(wave), int(shard_size))):
            hashes = list(wave[start:start + int(shard_size)])
            digest = hashlib.sha256(
                "|".join(hashes).encode("utf-8")).hexdigest()
            plan.append({"shard_index": index, "hashes": hashes,
                         "digest": digest})
        return plan

    def record_wave(self, wave, yielded, novelty_fraction):
        """Fold one executed wave back into the pool.

        ``wave`` is the scheduled hash list, ``yielded`` the subset that
        produced a difference-inducing test, ``novelty_fraction`` the
        fraction of tracked neurons the wave newly covered (across all
        models).
        """
        yielded = set(yielded)
        boost = 1.0 + NOVELTY_WEIGHT * float(novelty_fraction)
        for entry_hash in wave:
            stats = self._stats[entry_hash]
            stats["visits"] += 1
            if entry_hash in yielded:
                stats["energy"] = 0.0
                stats["retired"] = True
                continue
            stats["energy"] *= VISIT_DECAY * boost
            if stats["energy"] <= ENERGY_EPSILON:
                stats["energy"] = 0.0
                stats["retired"] = True

    # -- persistence --------------------------------------------------------
    # Energies are products of exactly-representable factors operated on
    # in IEEE double; Python's json round-trips doubles exactly, so a
    # reloaded scheduler makes bit-identical decisions.

    def state_dict(self):
        return {"entries": [dict(stats, hash=entry_hash)
                            for entry_hash, stats in self._stats.items()]}

    @classmethod
    def from_state(cls, state):
        scheduler = cls()
        for record in state["entries"]:
            entry_hash = record["hash"]
            scheduler._stats[entry_hash] = {
                "energy": float(record["energy"]),
                "visits": int(record["visits"]),
                "retired": bool(record["retired"]),
            }
        return scheduler
