"""The unified AscentEngine: rule contract, golden equivalence to the
pre-unification engines, retire-and-compact, and the shim policy.

The golden matrix in ``tests/data/golden_engines.json`` was captured
from the repo *before* the three engine classes were collapsed onto one
loop (see ``tools/capture_engine_goldens.py``), so the tests here prove
the refactor is bit-identical under fixed RNG:

(a) unified vanilla batch-of-1 (``DeepXplore``)  ≡ seed ``DeepXplore``
(b) unified vectorized run (``AscentEngine``)    ≡ seed ``BatchDeepXplore``
(c) ``MomentumRule`` batch-of-1                  ≡ seed ``MomentumDeepXplore``
(d) campaign ``workers=2`` with momentum         ≡ ``workers=1``
"""

import inspect
import json
import os
import sys
import warnings

import numpy as np
import pytest

from repro.core import (AscentEngine, AscentRule, BatchDeepXplore, Campaign,
                        DeepXplore, LightingConstraint, MomentumRule,
                        PAPER_HYPERPARAMS, VanillaRule,
                        constraint_for_dataset, make_rule, run_ascent)
from repro.errors import ConfigError
from repro.nn.instrumentation import PassCounter

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, os.pardir)
sys.path.insert(0, os.path.join(_REPO_ROOT, "tools"))
# The capture tool is the single source of truth for the golden matrix
# (config list + result fingerprint); importing it keeps this test and
# a golden regeneration structurally in lockstep.
from capture_engine_goldens import CONFIGS, GOLDEN_PATH, \
    assert_matches_golden, digest_result  # noqa: E402

GOLDEN_CONFIGS = {name: spec for (name, *spec) in CONFIGS}


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)["configs"]


def _run_config(name, request):
    (dataset_name, task, driver, (ascent, beta), draw_seed, engine_rng,
     n_seeds) = GOLDEN_CONFIGS[name]
    dataset = request.getfixturevalue(f"{dataset_name}_smoke")
    trio = request.getfixturevalue(f"{dataset_name}_trio")
    seeds, _ = dataset.sample_seeds(n_seeds,
                                    np.random.default_rng(draw_seed))
    constraint = (LightingConstraint() if dataset_name == "mnist"
                  else constraint_for_dataset(dataset))
    cls = DeepXplore if driver == "sequential" else AscentEngine
    # absorb_exhausted=False: the pre-unification engines never folded
    # exhausted seeds' tapes, so the paper-exact mode is the comparable
    # one.
    engine = cls(trio, PAPER_HYPERPARAMS[dataset_name], constraint,
                 task=task, rng=engine_rng,
                 rule=make_rule(ascent, beta=beta),
                 absorb_exhausted=False)
    with PassCounter() as passes:
        result = engine.run(seeds)
    golden = digest_result(result, engine.trackers)
    golden["forwards"] = int(passes.total_forwards())
    return golden


class TestGoldenEquivalence:
    """The unified engine reproduces the seed engines bit-for-bit —
    tests, coverage masks, AND forward-pass counts."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_matches_pre_unification_golden(self, name, goldens, request):
        assert_matches_golden(name, _run_config(name, request),
                              goldens[name])

    def test_golden_mismatch_names_rule_and_field(self):
        """A golden regression reads as 'which config, which field', not
        a bare nested-dict diff."""
        golden = {"tests": [{"seed_index": 0, "iterations": 4}],
                  "seeds_exhausted": 0}
        actual = {"tests": [{"seed_index": 0, "iterations": 7}],
                  "seeds_exhausted": 0}
        with pytest.raises(AssertionError) as err:
            assert_matches_golden("deepfool-batch-mnist", actual, golden)
        message = str(err.value)
        assert "deepfool-batch-mnist" in message
        assert "tests[0].iterations" in message

    def test_batch_alias_is_the_engine(self, mnist_trio, mnist_smoke,
                                       goldens):
        """(b) with the historical name: BatchDeepXplore is a pure alias."""
        seeds, _ = mnist_smoke.sample_seeds(10, np.random.default_rng(3))
        engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                                 LightingConstraint(), rng=5,
                                 absorb_exhausted=False)
        with PassCounter() as passes:
            result = engine.run(seeds)
        golden = digest_result(result, engine.trackers)
        golden["forwards"] = int(passes.total_forwards())
        assert golden == goldens["vanilla-batch-mnist"]


class TestFloat32Equivalence:
    """The float32 fast path finds the same behavior as the float64
    golden path — tolerance-based on the generated inputs, exact on the
    discrete outcomes (which seeds differ, when, and what the models
    predict) and on the coverage masks."""

    def test_float32_run_matches_float64(self, mnist_trio, mnist_smoke):
        from repro.core import resolve_models
        seeds, _ = mnist_smoke.sample_seeds(10, np.random.default_rng(3))

        def run(models):
            engine = AscentEngine(models, PAPER_HYPERPARAMS["mnist"],
                                  LightingConstraint(), rng=5,
                                  absorb_exhausted=False)
            return engine.run(seeds), engine.trackers

        r64, trackers64 = run(mnist_trio)
        r32, trackers32 = run(resolve_models(mnist_trio, dtype=np.float32))
        assert len(r64.tests) == len(r32.tests) > 0
        for t64, t32 in zip(r64.tests, r32.tests):
            assert t32.x.dtype == np.float32
            assert t64.seed_index == t32.seed_index
            assert t64.iterations == t32.iterations
            np.testing.assert_array_equal(t64.predictions, t32.predictions)
            np.testing.assert_allclose(t64.x, t32.x, atol=1e-5)
        for a, b in zip(trackers64, trackers32):
            np.testing.assert_array_equal(a.state_dict()["covered"],
                                          b.state_dict()["covered"])


def test_campaign_momentum_worker_invariance(mnist_trio, mnist_smoke):
    """(d): momentum campaigns are worker-count invariant — the scenario
    combination (momentum x campaign) that did not exist before the
    unification."""
    seeds, _ = mnist_smoke.sample_seeds(20, np.random.default_rng(21))
    results, states = [], []
    for workers in (1, 2):
        campaign = Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), workers=workers,
                            shard_size=8, seed=9, rule=MomentumRule(0.8))
        results.append(campaign.run(seeds))
        states.append([t.state_dict() for t in campaign.trackers])
    r1, r2 = results
    assert len(r1.tests) == len(r2.tests) > 0
    for ta, tb in zip(r1.tests, r2.tests):
        assert ta.seed_index == tb.seed_index
        assert ta.iterations == tb.iterations
        np.testing.assert_array_equal(ta.x, tb.x)
    for sa, sb in zip(*states):
        np.testing.assert_array_equal(sa["covered"], sb["covered"])


class TestAscentRules:
    def test_make_rule(self):
        from repro.core.engine import (AdamRule, AdaptiveStepRule,
                                       DeepFoolRule, NesterovRule)
        assert isinstance(make_rule("vanilla"), VanillaRule)
        rule = make_rule("momentum", beta=0.5)
        assert isinstance(rule, MomentumRule) and rule.beta == 0.5
        assert make_rule("momentum").beta == 0.9
        assert isinstance(make_rule("nesterov"), NesterovRule)
        assert make_rule("nesterov", beta=0.7).beta == 0.7
        assert isinstance(make_rule("adam"), AdamRule)
        assert isinstance(make_rule("adaptive"), AdaptiveStepRule)
        fool = make_rule("deepfool", overshoot=0.05)
        assert isinstance(fool, DeepFoolRule) and fool.overshoot == 0.05
        explicit = MomentumRule(0.3)
        assert make_rule(explicit) is explicit
        with pytest.raises(ConfigError):
            make_rule("rmsprop")
        with pytest.raises(ConfigError):
            make_rule("vanilla", beta=0.5)
        with pytest.raises(ConfigError):
            make_rule("adam", beta=0.5)
        with pytest.raises(ConfigError):
            make_rule("momentum", overshoot=0.1)
        with pytest.raises(ConfigError):
            make_rule(explicit, beta=0.5)

    def test_beta_validation(self):
        with pytest.raises(ConfigError):
            MomentumRule(beta=1.0)
        with pytest.raises(ConfigError):
            MomentumRule(beta=-0.1)

    def test_identity_strings(self):
        from repro.core.engine import (AdamRule, AdaptiveStepRule,
                                       DeepFoolRule, NesterovRule)
        assert VanillaRule().identity() == "vanilla"
        assert MomentumRule(0.8).identity() == "momentum(beta=0.8)"
        assert NesterovRule(0.8).identity() == "nesterov(beta=0.8)"
        assert (AdamRule().identity()
                == "adam(beta1=0.9,beta2=0.999,eps=1e-08)")
        assert DeepFoolRule(0.02).identity() == "deepfool(overshoot=0.02)"
        assert (AdaptiveStepRule(MomentumRule(0.8)).identity()
                == "adaptive(momentum(beta=0.8),gamma=0.5,max_scale=4.0)")

    def test_momentum_state_compacts_with_retiring_seeds(self):
        rule = MomentumRule(0.5)
        x = np.zeros((4, 3))
        rule.reset(x)
        v = rule.update(np.ones((4, 3)))
        np.testing.assert_array_equal(v, np.ones((4, 3)))
        rule.compact(np.array([True, False, True, False]))
        v = rule.update(np.ones((2, 3)))
        np.testing.assert_array_equal(v, np.full((2, 3), 1.5))

    def test_clone_is_independent(self):
        rule = MomentumRule(0.5)
        rule.reset(np.zeros((2, 2)))
        rule.update(np.ones((2, 2)))
        clone = rule.clone()
        clone.update(np.ones((2, 2)))
        np.testing.assert_array_equal(rule._velocity, np.ones((2, 2)))

    def test_engine_rejects_non_rule(self, mnist_trio):
        with pytest.raises(ConfigError):
            AscentEngine(mnist_trio, rule="momentum")


class TestRunAscentLoop:
    """run_ascent is the repo's only ascent-iteration loop body."""

    def test_plain_iteration(self):
        x = run_ascent(np.zeros((2, 3)), 4,
                       lambda x, it: np.ones_like(x),
                       step=0.5, direction=None)
        np.testing.assert_allclose(x, np.full((2, 3), 2.0))

    def test_retire_and_compact(self):
        retired = []

        def on_step(x, iteration):
            keep = x[:, 0] < 3.0   # a row finishes when it reaches 3
            retired.extend((iteration, float(v)) for v in x[~keep, 0])
            return keep

        start = np.array([[0.0], [1.0], [2.0]])
        remaining = run_ascent(start.copy(), 10,
                               lambda x, it: np.ones_like(x), step=1.0,
                               direction=None, on_step=on_step)
        assert remaining.shape[0] == 0              # every row retired
        assert retired == [(1, 3.0), (2, 3.0), (3, 3.0)]

    def test_single_loop_body_in_the_repo(self):
        """Grep-level acceptance: the historical engine modules contain
        no ascent-iteration loop of their own anymore."""
        import repro.baselines.adversarial
        import repro.core.batch
        import repro.core.engine
        import repro.core.generator
        import repro.extensions.momentum
        for module in (repro.core.generator, repro.core.batch,
                       repro.extensions.momentum,
                       repro.baselines.adversarial):
            assert "for iteration in range" not in inspect.getsource(module)
        assert inspect.getsource(repro.core.engine).count(
            "for iteration in range") == 1


class TestExhaustedSeedCoverage:
    """Exhausted seeds fold their final tape into the trackers — the
    same way for every rule and driver (regression: the old momentum
    engine, like all pre-unification engines, silently dropped them)."""

    @pytest.fixture(scope="class")
    def exhausted_seed(self, mnist_trio, mnist_smoke):
        """A seed no engine resolves within a 2-iteration budget."""
        hp = PAPER_HYPERPARAMS["mnist"].with_(max_iterations=2)
        seeds, _ = mnist_smoke.sample_seeds(30, np.random.default_rng(3))
        for i in range(seeds.shape[0]):
            engine = DeepXplore(mnist_trio, hp, LightingConstraint(), rng=5)
            if engine.generate_from_seed(seeds[i]) is None:
                return seeds[i]
        pytest.fail("no exhausting seed found at max_iterations=2")

    def _coverage_after(self, mnist_trio, exhausted_seed, **engine_kwargs):
        hp = PAPER_HYPERPARAMS["mnist"].with_(max_iterations=2)
        engine = DeepXplore(mnist_trio, hp, LightingConstraint(), rng=5,
                            **engine_kwargs)
        assert engine.generate_from_seed(exhausted_seed) is None
        return [t.state_dict()["covered"] for t in engine.trackers]

    def test_exhausted_tape_is_folded(self, mnist_trio, exhausted_seed):
        covered = self._coverage_after(mnist_trio, exhausted_seed)
        assert sum(int(m.sum()) for m in covered) > 0

    def test_paper_exact_mode_does_not_fold(self, mnist_trio,
                                            exhausted_seed):
        covered = self._coverage_after(mnist_trio, exhausted_seed,
                                       absorb_exhausted=False)
        assert sum(int(m.sum()) for m in covered) == 0

    def test_identical_across_rules_and_drivers(self, mnist_trio,
                                                exhausted_seed):
        """Coverage after an exhausted seed is the same whether the seed
        ran under the vanilla facade, momentum(beta=0), or the
        vectorized driver."""
        vanilla = self._coverage_after(mnist_trio, exhausted_seed)
        momentum = self._coverage_after(mnist_trio, exhausted_seed,
                                        rule=MomentumRule(0.0))
        hp = PAPER_HYPERPARAMS["mnist"].with_(max_iterations=2)
        batch = AscentEngine(mnist_trio, hp, LightingConstraint(), rng=5)
        result = batch.run(exhausted_seed[None])
        assert result.seeds_exhausted == 1
        vectorized = [t.state_dict()["covered"] for t in batch.trackers]
        for a, b, c in zip(vanilla, momentum, vectorized):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_momentum_beta_positive_also_folds(self, mnist_trio,
                                               exhausted_seed):
        covered = self._coverage_after(mnist_trio, exhausted_seed,
                                       rule=MomentumRule(0.9))
        assert sum(int(m.sum()) for m in covered) > 0

    def test_paper_exact_mode_reachable_via_make_engine(self, mnist_trio):
        """absorb_exhausted plumbs through the one engine selector for
        every driver — the knob is not construct-by-hand only."""
        from repro.core import make_engine
        hp = PAPER_HYPERPARAMS["mnist"]
        for kind in ("sequential", "batch", "campaign"):
            engine = make_engine(kind, mnist_trio, hp,
                                 LightingConstraint(), "classification",
                                 0, absorb_exhausted=False)
            assert engine.absorb_exhausted is False


class TestShimPolicy:
    """Old import paths construct; only the momentum shim deprecates."""

    def test_legacy_import_paths(self):
        from repro.core.batch import BatchDeepXplore as legacy_batch
        from repro.core.generator import DeepXplore as legacy_seq
        from repro.extensions.momentum import \
            MomentumDeepXplore as legacy_mom
        assert legacy_batch is BatchDeepXplore
        assert legacy_seq is DeepXplore
        assert issubclass(legacy_mom, DeepXplore)

    def test_facades_construct_without_warnings(self, mnist_trio):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"])
            BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"])

    def test_momentum_shim_warns_and_composes_the_rule(self, mnist_trio):
        from repro.extensions import MomentumDeepXplore
        with pytest.warns(DeprecationWarning):
            shim = MomentumDeepXplore(mnist_trio,
                                      PAPER_HYPERPARAMS["mnist"], beta=0.7)
        assert isinstance(shim.rule, MomentumRule)
        assert shim.beta == 0.7
        with pytest.raises(ConfigError):
            MomentumDeepXplore(mnist_trio, beta=1.0)
        with pytest.raises(TypeError):
            MomentumDeepXplore(mnist_trio, rule=VanillaRule())

    def test_shim_matches_rule_composition(self, mnist_trio, mnist_smoke):
        from repro.extensions import MomentumDeepXplore
        seeds, _ = mnist_smoke.sample_seeds(6, np.random.default_rng(8))
        with pytest.warns(DeprecationWarning):
            shim = MomentumDeepXplore(mnist_trio,
                                      PAPER_HYPERPARAMS["mnist"],
                                      LightingConstraint(), beta=0.8, rng=9)
        composed = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              LightingConstraint(), rng=9,
                              rule=MomentumRule(0.8))
        ra, rb = shim.run(seeds), composed.run(seeds)
        assert len(ra.tests) == len(rb.tests)
        for ta, tb in zip(ra.tests, rb.tests):
            np.testing.assert_array_equal(ta.x, tb.x)


class TestRuleComposability:
    """Extensions compose with any rule on the unified engine."""

    def test_multi_neuron_objective_with_momentum_batch(self, mnist_trio,
                                                        mnist_smoke):
        from repro.extensions import MultiNeuronCoverageObjective
        seeds, _ = mnist_smoke.sample_seeds(10, np.random.default_rng(2))
        engine = AscentEngine(
            mnist_trio, PAPER_HYPERPARAMS["mnist"], LightingConstraint(),
            rng=3, rule=MomentumRule(0.8),
            coverage_factory=lambda trackers, rng:
                MultiNeuronCoverageObjective(trackers, neurons_per_model=3,
                                             rng=rng))
        result = engine.run(seeds)
        assert result.seeds_processed == 10

    def test_soft_constraint_with_momentum_batch(self, mnist_trio,
                                                 mnist_smoke):
        from repro.extensions import SoftBoxConstraint
        seeds, _ = mnist_smoke.sample_seeds(8, np.random.default_rng(4))
        engine = AscentEngine(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              SoftBoxConstraint(mu=10.0), rng=5,
                              rule=MomentumRule(0.5))
        result = engine.run(seeds)
        for test in result.tests:
            assert test.x.min() >= -0.05 and test.x.max() <= 1.05

    def test_per_seed_occlusion_with_momentum(self, mnist_trio,
                                              mnist_smoke):
        from repro.core import SingleRectOcclusion
        seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(13))
        engine = AscentEngine(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              SingleRectOcclusion(8, 8), rng=14,
                              rule=MomentumRule(0.8))
        result = engine.run(seeds)
        for test in result.tests:
            if test.iterations == 0:
                continue
            delta = np.abs(test.x - seeds[test.seed_index])[0]
            rows_hit, cols_hit = np.nonzero(delta > 1e-12)
            if rows_hit.size:
                assert rows_hit.max() - rows_hit.min() + 1 <= 8
                assert cols_hit.max() - cols_hit.min() + 1 <= 8
