"""Activation functions as forward/backward strategy objects.

Layers with built-in activations (Dense, Conv2D) compose one of these so
that neuron coverage — which the paper measures on *post-activation*
outputs, matching the Keras convention — sees the activated values.

Each activation implements ``forward(z)`` and ``backward(grad, z, a)``
where ``z`` is the pre-activation, ``a`` the cached activation output, and
``grad`` the upstream gradient with respect to ``a``.  ``backward`` returns
the gradient with respect to ``z``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Activation",
    "Linear",
    "Relu",
    "LeakyRelu",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Atan",
    "Elu",
    "Softplus",
    "get_activation",
]


class Activation:
    """Base class for activation strategies."""

    name = "activation"

    def forward(self, z):
        raise NotImplementedError

    def backward(self, grad, z, a):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class Linear(Activation):
    """Identity activation."""

    name = "linear"

    def forward(self, z):
        return z

    def backward(self, grad, z, a):
        return grad


class Relu(Activation):
    """Rectified linear unit: max(0, z)."""

    name = "relu"

    def forward(self, z):
        return np.maximum(z, 0.0)

    def backward(self, grad, z, a):
        return grad * (z > 0.0)


class LeakyRelu(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, alpha=0.1):
        self.alpha = float(alpha)

    def forward(self, z):
        return np.where(z > 0.0, z, self.alpha * z)

    def backward(self, grad, z, a):
        return grad * np.where(z > 0.0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, z):
        out = np.empty_like(z)
        pos = z >= 0.0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def backward(self, grad, z, a):
        return grad * a * (1.0 - a)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z):
        return np.tanh(z)

    def backward(self, grad, z, a):
        return grad * (1.0 - a * a)


class Atan(Activation):
    """Arctangent activation, used by the DAVE steering head.

    The Nvidia DAVE-2 architecture emits ``atan(z)`` so the steering angle
    is bounded to (-pi/2, pi/2); the original DeepXplore models multiply by
    2 but the bounded shape is what matters for gradient ascent.
    """

    name = "atan"

    def forward(self, z):
        return np.arctan(z)

    def backward(self, grad, z, a):
        return grad / (1.0 + z * z)


class Elu(Activation):
    """Exponential linear unit: smooth negative saturation."""

    name = "elu"

    def __init__(self, alpha=1.0):
        self.alpha = float(alpha)

    def forward(self, z):
        return np.where(z > 0.0, z, self.alpha * (np.exp(np.minimum(z, 0.0))
                                                  - 1.0))

    def backward(self, grad, z, a):
        return grad * np.where(z > 0.0, 1.0, a + self.alpha)


class Softplus(Activation):
    """log(1 + e^z), a smooth ReLU."""

    name = "softplus"

    def forward(self, z):
        return np.logaddexp(0.0, z)

    def backward(self, grad, z, a):
        return grad * Sigmoid().forward(z)


class Softmax(Activation):
    """Softmax over the last axis, with an exact Jacobian-vector backward.

    The exact backward (rather than the fused cross-entropy shortcut) is
    required because DeepXplore differentiates *individual class
    probabilities* with respect to the input (Equation 2 of the paper), not
    just the training loss.
    """

    name = "softmax"

    def forward(self, z):
        shifted = z - z.max(axis=-1, keepdims=True)
        ez = np.exp(shifted)
        return ez / ez.sum(axis=-1, keepdims=True)

    def backward(self, grad, z, a):
        inner = (grad * a).sum(axis=-1, keepdims=True)
        return a * (grad - inner)


_ACTIVATIONS = {
    "linear": Linear,
    "relu": Relu,
    "leaky_relu": LeakyRelu,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
    "atan": Atan,
    "elu": Elu,
    "softplus": Softplus,
}


def get_activation(spec):
    """Resolve ``spec`` (name, class instance, or ``None``) to an instance."""
    if spec is None:
        return Linear()
    if isinstance(spec, Activation):
        return spec
    try:
        return _ACTIVATIONS[spec]()
    except KeyError:
        known = ", ".join(sorted(_ACTIVATIONS))
        raise ConfigError(f"unknown activation {spec!r}; known: {known}") from None
