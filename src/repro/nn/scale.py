"""Fixed (non-trainable) input standardization layer.

The malware models consume raw feature vectors (counts, lengths, binary
flags).  Embedding the standardization into the network as a fixed affine
layer keeps the *model input* in raw feature space, which is what the
domain constraints (increment counts, flip manifest bits) operate on —
gradients with respect to raw features come out of the same backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import dtypes
from repro.nn.layer import Layer

__all__ = ["FixedScale"]


class FixedScale(Layer):
    """``y = (x - mean) / std`` with constant ``mean``/``std`` vectors."""

    def __init__(self, mean, std, name=None):
        super().__init__(name=name)
        dtype = dtypes.get_default_dtype()
        self.mean = np.asarray(mean, dtype=dtype)
        std = np.asarray(std, dtype=dtype).copy()
        std[std == 0.0] = 1.0  # constant features pass through unscaled
        self.std = std
        if self.mean.shape != self.std.shape:
            raise ShapeError(
                f"mean shape {self.mean.shape} != std shape {self.std.shape}")

    @classmethod
    def from_data(cls, x, name=None):
        """Fit mean/std from a training matrix ``(n, features)``.

        Statistics are computed at float64 for stability, then stored at
        the policy dtype by ``__init__``.
        """
        x = np.asarray(x, dtype=np.float64)
        return cls(x.mean(axis=0), x.std(axis=0), name=name)

    def cast(self, dtype):
        dt = dtypes.resolve(dtype)
        self.mean = self.mean.astype(dt, copy=False)
        self.std = self.std.astype(dt, copy=False)
        return self

    def forward(self, x, training=False, workspace=None):
        if x.shape[1:] != self.mean.shape:
            raise ShapeError(
                f"{self.name}: expected features {self.mean.shape}, "
                f"got {x.shape}")
        return (x - self.mean) / self.std, None

    def backward(self, ctx, grad_out, accumulate=True):
        return grad_out / self.std

    def buffers(self):
        return {f"{self.name}.mean": self.mean, f"{self.name}.std": self.std}

    def output_shape(self, input_shape):
        return tuple(input_shape)
