"""Deprecated: momentum ascent as a standalone generator class.

Momentum is no longer an engine of its own — it is an
:class:`~repro.core.engine.AscentRule` composed onto the unified
:class:`~repro.core.engine.AscentEngine`, so it now works with every
driver (batch-of-1, whole-set vectorized, sharded campaigns, corpus
fuzzing)::

    from repro.core import AscentEngine, DeepXplore, MomentumRule

    AscentEngine(models, hp, constraint, rule=MomentumRule(beta=0.9))
    DeepXplore(models, hp, constraint, rule=MomentumRule(beta=0.9))

:class:`MomentumDeepXplore` remains as a deprecation shim over the
per-seed facade and will be removed; it emits a
:class:`DeprecationWarning` on construction.
"""

from __future__ import annotations

import warnings

from repro.core.engine import DeepXplore, MomentumRule, DEFAULT_MOMENTUM_BETA

__all__ = ["MomentumDeepXplore"]


class MomentumDeepXplore(DeepXplore):
    """Deprecated shim: ``DeepXplore(rule=MomentumRule(beta))``.

    ``beta = 0`` reduces exactly to the paper's update rule.
    """

    def __init__(self, *args, beta=DEFAULT_MOMENTUM_BETA, **kwargs):
        if "rule" in kwargs:
            raise TypeError(
                "MomentumDeepXplore sets its own rule; pass rule= to "
                "DeepXplore/AscentEngine instead")
        rule = MomentumRule(beta)   # validates beta before the warning
        warnings.warn(
            "MomentumDeepXplore is deprecated; use "
            "DeepXplore(..., rule=MomentumRule(beta)) or "
            "AscentEngine(..., rule=MomentumRule(beta))",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, rule=rule, **kwargs)

    @property
    def beta(self):
        return self.rule.beta
