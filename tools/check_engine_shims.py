#!/usr/bin/env python
"""CI check: the pre-unification engine import paths still work.

The engine refactor collapsed ``DeepXplore`` / ``BatchDeepXplore`` /
``MomentumDeepXplore`` onto one :class:`repro.core.engine.AscentEngine`.
This script asserts the shim policy (docs/ARCHITECTURE.md):

* every historical import path resolves and constructs;
* ``DeepXplore`` and ``BatchDeepXplore`` — the facades that remain the
  public API — construct *without* warnings;
* ``MomentumDeepXplore`` — replaced by ``rule=MomentumRule(beta)`` —
  emits a ``DeprecationWarning`` and still behaves (its shimmed rule
  carries the requested beta);
* no historical engine module carries an ascent-iteration loop of its
  own (``run_ascent`` in ``repro/core/engine.py`` is the only one).

Exit code 0 on success, non-zero with a message on any violation.

Usage:  PYTHONPATH=src python tools/check_engine_shims.py
"""

from __future__ import annotations

import inspect
import sys
import warnings

import numpy as np


def fail(message):
    print(f"SHIM CHECK FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def tiny_models():
    from repro.nn import Dense, Network
    models = []
    for i in range(2):
        rng = np.random.default_rng(i)
        models.append(Network([
            Dense(4, 8, rng=rng, name="h"),
            Dense(8, 3, activation="softmax", rng=rng, name="o"),
        ], (4,), name=f"m{i}"))
    return models


def main():
    # Historical import paths resolve to the unified engine.
    from repro.core.batch import BatchDeepXplore
    from repro.core.engine import AscentEngine, MomentumRule
    from repro.core.generator import DeepXplore
    from repro.extensions.momentum import MomentumDeepXplore
    from repro.extensions import MomentumDeepXplore as from_extensions
    if from_extensions is not MomentumDeepXplore:
        fail("repro.extensions re-exports a different MomentumDeepXplore")
    for cls in (DeepXplore, BatchDeepXplore):
        if not issubclass(cls, AscentEngine):
            fail(f"{cls.__name__} is not an AscentEngine facade")

    models = tiny_models()

    # The remaining facades are clean (no deprecation on construction).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        DeepXplore(models)
        BatchDeepXplore(models)

    # The momentum shim warns and composes the rule.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = MomentumDeepXplore(models, beta=0.7)
    if not any(issubclass(w.category, DeprecationWarning) for w in caught):
        fail("MomentumDeepXplore constructed without a DeprecationWarning")
    if not isinstance(shim.rule, MomentumRule) or shim.beta != 0.7:
        fail("MomentumDeepXplore did not compose MomentumRule(beta)")

    # Exactly one ascent-iteration loop body in the repo.
    import repro.baselines.adversarial
    import repro.core.batch as batch_mod
    import repro.core.engine as engine_mod
    import repro.core.generator as generator_mod
    import repro.extensions.momentum as momentum_mod
    for module in (generator_mod, batch_mod, momentum_mod,
                   repro.baselines.adversarial):
        if "for iteration in range" in inspect.getsource(module):
            fail(f"{module.__name__} grew its own ascent loop back")
    if inspect.getsource(engine_mod).count("for iteration in range") != 1:
        fail("repro.core.engine must contain exactly one ascent loop")

    print("engine shims OK: legacy paths construct, momentum shim "
          "deprecates, one ascent loop body")


if __name__ == "__main__":
    main()
