"""Benchmark: Table 12 — iterations to first difference vs model
similarity (trains LeNet-1 variant pairs inside the timed region)."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_model_similarity


def test_table12_similarity(benchmark):
    result = run_once(benchmark, run_model_similarity, scale=SCALE,
                      seed=SEED, n_seeds=10)
    assert len(result.rows) == 15
    # Identical twins (amount == 0) must never find a difference.
    for row in result.rows:
        if row[1] == 0 or row[1] == 0.0:
            assert row[2] == "-"
