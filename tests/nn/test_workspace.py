"""Workspace reuse: buffer recycling semantics and the zero-allocation
regression guard for the steady-state ascent path."""

import numpy as np
import pytest

from repro.core import AscentEngine, Hyperparams, Unconstrained
from repro.nn import (Conv2D, Dense, Flatten, MaxPool2D, Network, Workspace,
                      dtypes)


def _net(name, seed):
    rng = np.random.default_rng(seed)
    return Network([
        Conv2D(1, 3, 3, padding=1, rng=rng, name="c1"),
        MaxPool2D(2, name="mp"),
        Flatten(name="f"),
        Dense(3 * 4 * 4, 5, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 8, 8), name=name)


def test_workspace_reuses_buffers_and_counts_allocations():
    ws = Workspace()
    a = ws.get("k", (4, 8), np.float64)
    assert a.shape == (4, 8) and ws.allocations == 1
    b = ws.get("k", (4, 8), np.float64)
    assert b.base is a.base or b is a
    assert ws.allocations == 1
    # Shrinking batches reuse the same storage prefix.
    c = ws.get("k", (2, 8), np.float64)
    assert ws.allocations == 1 and c.shape == (2, 8)
    # Growth or a dtype change genuinely reallocates.
    ws.get("k", (8, 8), np.float64)
    assert ws.allocations == 2
    ws.get("k", (2, 8), np.float32)
    assert ws.allocations == 3
    z = ws.zeros("z", (3, 3), np.float64)
    assert np.all(z == 0.0) and ws.allocations == 4
    assert ws.nbytes() > 0
    ws.clear()
    assert ws.nbytes() == 0


def test_forward_backward_steady_state_allocates_nothing(monkeypatch):
    """After a warmup pass, repeated forward/backward at the same batch
    size must hit the workspace for every buffer: np.empty is shimmed
    with a counter and must not fire again."""
    net = _net("ws_net", 0)
    x = np.random.default_rng(1).random((6, 1, 8, 8))
    ws = Workspace()
    net.run(x, workspace=ws).gradient_of_class(0)  # warmup sizes the pool
    warm = ws.allocations

    calls = {"empty": 0}
    real_empty = np.empty

    def counting_empty(*args, **kwargs):
        calls["empty"] += 1
        return real_empty(*args, **kwargs)

    monkeypatch.setattr(np, "empty", counting_empty)
    for _ in range(3):
        net.run(x, workspace=ws).gradient_of_class(0)
    monkeypatch.undo()
    assert ws.allocations == warm, "workspace pool grew after warmup"
    assert calls["empty"] == 0, (
        f"steady-state forward/backward called np.empty "
        f"{calls['empty']} times")


def test_engine_run_reuses_workspaces_across_iterations():
    with dtypes.default_dtype(np.float64):
        models = [_net("m0", 0), _net("m1", 1)]
    hp = Hyperparams(lambda1=1.0, lambda2=0.1, step=0.05, max_iterations=6)
    engine = AscentEngine(models, hp, Unconstrained(),
                          task="classification", rng=0)
    seeds = np.random.default_rng(2).random((5, 1, 8, 8))
    engine.run(seeds)
    warm = [ws.allocations for ws in engine._workspaces]
    engine.run(seeds)
    assert [ws.allocations for ws in engine._workspaces] == warm


def test_workspace_and_plain_paths_agree_bitwise():
    net = _net("agree", 4)
    x = np.random.default_rng(5).random((3, 1, 8, 8))
    plain = net.run(x)
    ws = Workspace()
    pooled = net.run(x, workspace=ws)
    np.testing.assert_array_equal(plain.outputs(), pooled.outputs())
    np.testing.assert_array_equal(plain.gradient_of_class(1),
                                  pooled.gradient_of_class(1))
    np.testing.assert_array_equal(plain.neuron_activations(),
                                  pooled.neuron_activations())


def test_engine_accepts_use_workspace_off():
    with dtypes.default_dtype(np.float64):
        models = [_net("m0", 0), _net("m1", 1)]
    hp = Hyperparams(lambda1=1.0, lambda2=0.1, step=0.05, max_iterations=4)
    seeds = np.random.default_rng(3).random((4, 1, 8, 8))
    on = AscentEngine(models, hp, Unconstrained(), task="classification",
                      rng=0).run(seeds)
    with dtypes.default_dtype(np.float64):
        models2 = [_net("m0", 0), _net("m1", 1)]
    off = AscentEngine(models2, hp, Unconstrained(), task="classification",
                       rng=0, use_workspace=False).run(seeds)
    assert len(on.tests) == len(off.tests)
    for a, b in zip(on.tests, off.tests):
        np.testing.assert_array_equal(a.x, b.x)
