"""Message framing for the farm protocol: JSON lines + binary frames.

Every message is one JSON object on one line.  Values that are raw
bytes (``.npy`` arrays, ``.npz`` coverage snapshots, shard outcomes —
anything wrapped in :class:`Blob`) travel in one of two encodings:

* **JSON fallback** — base64 strings inline in the JSON line.  This is
  byte-for-byte the PR 9 wire format, so any JSON-only client keeps
  working unchanged.
* **Binary frames** — the JSON line carries ``{"__frame__": i}``
  placeholders plus a ``"_frames": [len, ...]`` header, and the raw
  bytes follow the newline as length-prefixed frames, in order.  No
  base64 inflation (~33% on array payloads) and no line-cap ceiling:
  only the JSON *header* is bounded by :data:`MAX_LINE`; frames are
  bounded individually by :data:`MAX_FRAME`.

Negotiation is per-connection and needs no extra round-trip: every
request from a frame-capable client carries ``"bin": 1``; the server
answers such requests with framed responses (also flagged ``"bin": 1``)
and plain-JSON otherwise.  A client starts each connection in JSON mode
and switches its *own* requests to frames once it has seen the server
flag — so both directions degrade to the compatibility format against
an older peer.

:func:`dump_message`/:func:`read_message` are the only encode/decode
points; :func:`as_bytes` lets payload consumers accept either encoding
(a :class:`Blob` from a framed message, a base64 ``str`` from JSON).
"""

from __future__ import annotations

import base64
import json

from repro.errors import FarmError

__all__ = ["Blob", "as_bytes", "dump_message", "read_message",
           "MAX_LINE", "MAX_FRAME", "FRAMES_KEY"]

#: JSON header line cap.  With binary framing the header holds only
#: records and placeholders, so 16 MiB bounds even huge batches; in
#: JSON-fallback mode this is the same whole-message cap PR 9 had.
MAX_LINE = 16 << 20

#: Per-frame byte cap — a sanity bound against a corrupt or hostile
#: length prefix, far above any real payload.
MAX_FRAME = 1 << 30

FRAMES_KEY = "_frames"
_FRAME_REF = "__frame__"


class Blob(bytes):
    """Bytes that may travel as a binary frame (base64 in JSON mode)."""

    __slots__ = ()


def as_bytes(value):
    """Raw bytes of a wire payload value, whichever encoding it used."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    return base64.b64decode(str(value).encode("ascii"))


def _encode(value, frames, binary):
    if isinstance(value, (bytes, bytearray, memoryview)):
        if binary:
            frames.append(bytes(value))
            return {_FRAME_REF: len(frames) - 1}
        return base64.b64encode(bytes(value)).decode("ascii")
    if isinstance(value, dict):
        return {key: _encode(item, frames, binary)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item, frames, binary) for item in value]
    return value


def _resolve(value, frames):
    if isinstance(value, dict):
        if set(value) == {_FRAME_REF}:
            return Blob(frames[int(value[_FRAME_REF])])
        return {key: _resolve(item, frames) for key, item in value.items()}
    if isinstance(value, list):
        return [_resolve(item, frames) for item in value]
    return value


def dump_message(message, binary=False):
    """Serialize one message dict to wire bytes (line + frames)."""
    frames = []
    header = _encode(dict(message), frames, binary)
    if frames:
        header[FRAMES_KEY] = [len(frame) for frame in frames]
    line = (json.dumps(header) + "\n").encode("utf-8")
    if frames:
        return b"".join([line] + frames)
    return line


def read_message(rfile, max_line=MAX_LINE):
    """Read one message from a binary stream; ``(message, bytes_read)``.

    Returns ``(None, 0)`` on a clean EOF at a message boundary (the
    peer closed the channel).  A truncated message — EOF mid-frame —
    raises :class:`FarmError`: the peer died mid-answer, which is a
    failed request, not a closed idle channel.
    """
    line = rfile.readline(max_line)
    if not line:
        return None, 0
    message = json.loads(line.decode("utf-8"))
    total = len(line)
    if not isinstance(message, dict):
        raise FarmError(f"bad wire message: expected an object, got "
                        f"{type(message).__name__}")
    lengths = message.pop(FRAMES_KEY, None)
    if lengths:
        frames = []
        for length in lengths:
            length = int(length)
            if not 0 <= length <= MAX_FRAME:
                raise FarmError(f"bad wire frame length {length}")
            frame = rfile.read(length)
            if len(frame) != length:
                raise FarmError(
                    f"truncated wire frame: wanted {length} bytes, "
                    f"got {len(frame)}")
            frames.append(frame)
            total += length
        message = _resolve(message, frames)
    return message, total
