"""Neuron coverage tracker: definition, scaling, monotonicity, merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage import (NeuronCoverageTracker, coverage_of_inputs,
                            scale_layerwise)
from repro.errors import CoverageError
from repro.nn import Dense, Network


@pytest.fixture
def tiny_net():
    rng = np.random.default_rng(0)
    return Network([
        Dense(4, 5, rng=rng, name="h1"),
        Dense(5, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(4,), name="tiny")


def test_scale_layerwise_per_layer_per_input(tiny_net):
    acts = np.array([[1.0, 3.0, 5.0, 1.0, 2.0,   0.2, 0.3, 0.5]])
    scaled = scale_layerwise(acts, tiny_net.neuron_layers)
    # Layer 1 (first 5): min 1 -> 0, max 5 -> 1.
    np.testing.assert_allclose(scaled[0, :5], [0, 0.5, 1.0, 0, 0.25])
    # Layer 2 (last 3): min 0.2 -> 0, max 0.5 -> 1.
    np.testing.assert_allclose(scaled[0, 5:], [0, 1 / 3, 1.0])


def test_constant_layer_scales_to_zero(tiny_net):
    acts = np.array([[2.0] * 5 + [0.1, 0.2, 0.7]])
    scaled = scale_layerwise(acts, tiny_net.neuron_layers)
    np.testing.assert_array_equal(scaled[0, :5], 0.0)


def test_update_and_coverage(tiny_net, rng):
    tracker = NeuronCoverageTracker(tiny_net, threshold=0.5)
    assert tracker.coverage() == 0.0
    newly = tracker.update(rng.random((10, 4)))
    assert newly == tracker.covered_count()
    assert 0.0 < tracker.coverage() <= 1.0


def test_update_monotone(tiny_net, rng):
    tracker = NeuronCoverageTracker(tiny_net, threshold=0.25)
    previous = 0
    for _ in range(5):
        tracker.update(rng.random((3, 4)))
        count = tracker.covered_count()
        assert count >= previous
        previous = count


def test_pick_uncovered_only_returns_uncovered(tiny_net, rng):
    tracker = NeuronCoverageTracker(tiny_net, threshold=0.99)
    for _ in range(10):
        pick = tracker.pick_uncovered(rng)
        assert pick in set(tracker.uncovered_ids())


def test_pick_returns_none_when_full(tiny_net):
    tracker = NeuronCoverageTracker(tiny_net, threshold=-1e9, scaled=False)
    tracker.update(np.random.default_rng(0).random((1, 4)))
    assert tracker.coverage() == 1.0
    assert tracker.pick_uncovered() is None


def test_merge_is_union(tiny_net, rng):
    a = NeuronCoverageTracker(tiny_net, threshold=0.5)
    b = NeuronCoverageTracker(tiny_net, threshold=0.5)
    a.update(rng.random((5, 4)))
    b.update(rng.random((5, 4)))
    union = a.covered | b.covered
    a.merge(b)
    np.testing.assert_array_equal(a.covered, union)


def test_merge_rejects_foreign_tracker(tiny_net):
    rng = np.random.default_rng(1)
    other_net = Network([Dense(4, 5, rng=rng, name="h1"),
                         Dense(5, 3, activation="softmax", rng=rng,
                               name="out")], (4,), "other")
    a = NeuronCoverageTracker(tiny_net)
    b = NeuronCoverageTracker(other_net)
    with pytest.raises(CoverageError):
        a.merge(b)


def test_clone_independent(tiny_net, rng):
    a = NeuronCoverageTracker(tiny_net, threshold=0.5)
    a.update(rng.random((5, 4)))
    twin = a.clone()
    twin.update(rng.random((20, 4)))
    assert twin.covered_count() >= a.covered_count()
    # Mutating the clone must not touch the original's state.
    before = a.covered.copy()
    twin.covered[:] = True
    np.testing.assert_array_equal(a.covered, before)


def test_layer_filter(tiny_net, rng):
    tracker = NeuronCoverageTracker(
        tiny_net, layer_filter=lambda l: l.name == "h1")
    assert tracker.tracked_count == 5
    tracker.update(rng.random((10, 4)))
    # Output-layer neurons never counted.
    assert not tracker.covered[5:].any()


def test_empty_filter_raises(tiny_net):
    tracker = NeuronCoverageTracker(tiny_net, layer_filter=lambda l: False)
    with pytest.raises(CoverageError):
        tracker.coverage()


def test_reset(tiny_net, rng):
    tracker = NeuronCoverageTracker(tiny_net)
    tracker.update(rng.random((5, 4)))
    tracker.reset()
    assert tracker.covered_count() == 0


@given(st.floats(0.0, 0.9), st.integers(1, 30))
@settings(max_examples=15, deadline=None)
def test_higher_threshold_never_more_coverage(threshold, n_inputs):
    rng = np.random.default_rng(7)
    net = Network([Dense(4, 6, rng=rng, name="h"),
                   Dense(6, 3, activation="softmax", rng=rng, name="o")],
                  (4,), "prop")
    x = rng.random((n_inputs, 4))
    low = coverage_of_inputs(net, x, threshold=threshold)
    high = coverage_of_inputs(net, x, threshold=min(threshold + 0.1, 1.0))
    assert high <= low + 1e-12


def test_one_shot_matches_tracker(tiny_net, rng):
    x = rng.random((8, 4))
    tracker = NeuronCoverageTracker(tiny_net, threshold=0.3)
    tracker.update(x)
    assert coverage_of_inputs(tiny_net, x, threshold=0.3) == \
        tracker.coverage()
