"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Summarize the five synthetic datasets at a scale.
``zoo``
    Train/load the 15-model zoo and print the Table 1 summary.
``generate``
    Run DeepXplore on one dataset and report differences + coverage.
``experiment``
    Run one named experiment (table1..table12, figure8..figure10,
    pollution) and print its table.
``report``
    Run every experiment and write a markdown report (EXPERIMENTS.md
    format).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.datasets import dataset_names, load_dataset
from repro.experiments import EXPERIMENTS
from repro.experiments.common import make_engine
from repro.models import TRIOS, get_trio, model_accuracy
from repro.utils.ascii_art import side_by_side

__all__ = ["main", "build_parser"]


def build_parser():
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepXplore reproduction (Pei et al., SOSP 2017)")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "full"],
                        help="experiment scale (default: smoke)")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="summarize the synthetic datasets")
    sub.add_parser("zoo", help="train/load all 15 models (Table 1)")

    gen = sub.add_parser("generate", help="run DeepXplore on one dataset")
    gen.add_argument("dataset", choices=dataset_names())
    gen.add_argument("--constraint", default="default",
                     help="image constraint: light | occl | blackout")
    gen.add_argument("--seeds", type=int, default=40,
                     help="number of seed inputs")
    gen.add_argument("--engine", default="sequential",
                     choices=["sequential", "batch", "campaign"],
                     help="sequential Algorithm 1, the vectorized batch "
                          "engine, or a sharded multi-process campaign")
    gen.add_argument("--workers", type=int, default=1,
                     help="campaign worker processes (campaign engine only)")
    gen.add_argument("--shard-size", type=int, default=16,
                     help="seeds per campaign shard; part of the "
                          "deterministic run identity, unlike --workers")
    gen.add_argument("--show", action="store_true",
                     help="render a seed/generated pair as ASCII art")

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("experiment_id", choices=sorted(EXPERIMENTS))

    rep = sub.add_parser("report", help="write the full markdown report")
    rep.add_argument("--output", default="EXPERIMENTS.md")
    rep.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                     help="run only these experiments")
    return parser


def _cmd_datasets(args):
    for name in dataset_names():
        dataset = load_dataset(name, scale=args.scale, seed=args.seed)
        print(dataset.describe())
    return 0


def _cmd_zoo(args):
    for dataset_name, trio in TRIOS.items():
        dataset = load_dataset(dataset_name, scale=args.scale,
                               seed=args.seed)
        models = get_trio(dataset_name, scale=args.scale, seed=args.seed,
                          dataset=dataset)
        for model in models:
            acc = model_accuracy(model, dataset)
            print(f"{model.name:<8} {dataset_name:<9} "
                  f"neurons={model.total_neurons:<6} "
                  f"params={model.parameter_count():<8} acc={acc:.2%}")
    return 0


def _cmd_generate(args):
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    models = get_trio(args.dataset, scale=args.scale, seed=args.seed,
                      dataset=dataset)
    seeds, _ = dataset.sample_seeds(
        min(args.seeds, dataset.x_test.shape[0]),
        np.random.default_rng(args.seed + 1))
    engine = make_engine(
        args.engine, models, PAPER_HYPERPARAMS[args.dataset],
        constraint_for_dataset(dataset, kind=args.constraint),
        dataset.task, args.seed + 2, workers=args.workers,
        shard_size=args.shard_size)
    result = engine.run(seeds)
    if args.engine == "campaign":
        print(f"engine               : campaign "
              f"(workers={args.workers}, shard_size={args.shard_size})")
    else:
        print(f"engine               : {args.engine}")
    print(f"seeds processed      : {result.seeds_processed}")
    print(f"differences found    : {result.difference_count}")
    print(f"  via gradient ascent: "
          f"{result.difference_count - result.seeds_disagreed}")
    print(f"  seeds pre-disagreed: {result.seeds_disagreed}")
    print(f"mean neuron coverage : {engine.mean_coverage():.1%}")
    print(f"elapsed              : {result.elapsed:.1f}s")
    ascent = [t for t in result.tests if t.iterations > 0]
    if args.show and ascent and dataset.metadata.get("domain") == "image":
        test = ascent[0]
        print()
        print(side_by_side(seeds[test.seed_index], test.x,
                           labels=("seed", "generated")))
        print("predictions:", test.predictions.tolist())
    return 0


def _cmd_experiment(args):
    result = EXPERIMENTS[args.experiment_id](scale=args.scale,
                                             seed=args.seed)
    print(result.render())
    return 0


def _cmd_report(args):
    from repro.reporting import write_report
    path = write_report(args.output, scale=args.scale, seed=args.seed,
                        experiment_ids=args.only, verbose=True)
    print(f"wrote {path}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "zoo": _cmd_zoo,
    "generate": _cmd_generate,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
}


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
