"""Minibatch training loop and evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.losses import get_loss
from repro.nn.optimizers import clip_gradients, get_optimizer
from repro.utils.rng import as_rng

__all__ = ["Trainer", "EarlyStopping", "accuracy", "mse",
           "steering_accuracy"]


class EarlyStopping:
    """Stop training when the validation metric stops improving.

    Pass to :meth:`Trainer.fit` via ``early_stopping``; requires a
    ``validation`` set and ``metric``.  ``patience`` epochs without an
    improvement of at least ``min_delta`` ends the run.
    """

    def __init__(self, patience=3, min_delta=0.0, mode="max"):
        if patience < 1:
            raise ConfigError(f"patience must be >= 1, got {patience}")
        if mode not in ("max", "min"):
            raise ConfigError(f"mode must be 'max' or 'min', got {mode!r}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best = None
        self.stale = 0

    def should_stop(self, value):
        """Record an epoch's metric; returns True when out of patience."""
        improved = (self.best is None
                    or (self.mode == "max"
                        and value > self.best + self.min_delta)
                    or (self.mode == "min"
                        and value < self.best - self.min_delta))
        if improved:
            self.best = value
            self.stale = 0
            return False
        self.stale += 1
        return self.stale >= self.patience


def accuracy(network, x, y, batch_size=256):
    """Top-1 classification accuracy of ``network`` on ``(x, y)``."""
    probs = network.predict(x, batch_size=batch_size)
    return float((probs.argmax(axis=1) == np.asarray(y)).mean())


def mse(network, x, y, batch_size=256):
    """Mean squared error of a regression network on ``(x, y)``."""
    preds = network.predict(x, batch_size=batch_size)
    targets = np.asarray(y, dtype=preds.dtype).reshape(preds.shape)
    return float(((preds - targets) ** 2).mean())


def steering_accuracy(network, x, y, batch_size=256):
    """``1 - MSE`` — the accuracy proxy the paper reports for DAVE models."""
    return 1.0 - mse(network, x, y, batch_size=batch_size)


class Trainer:
    """Train a :class:`~repro.nn.network.Network` with minibatch SGD/Adam.

    >>> trainer = Trainer(net, loss="cross_entropy", optimizer="adam")
    >>> history = trainer.fit(x_train, y_train, epochs=5, batch_size=64)
    """

    def __init__(self, network, loss="cross_entropy", optimizer="adam",
                 rng=None, **optimizer_kwargs):
        self.network = network
        self.loss = get_loss(loss)
        self.optimizer = get_optimizer(optimizer, **optimizer_kwargs)
        self.rng = as_rng(rng)

    def fit(self, x, y, epochs=1, batch_size=64, shuffle=True,
            validation=None, metric=None, verbose=False, schedule=None,
            clip_norm=None, early_stopping=None):
        """Run ``epochs`` passes; returns a history dict of per-epoch stats.

        ``validation`` is an optional ``(x_val, y_val)`` pair; ``metric`` a
        callable ``metric(network, x, y)`` evaluated on it per epoch.
        ``schedule`` is called as ``schedule(optimizer, epoch)`` after each
        epoch; ``clip_norm`` applies global gradient-norm clipping;
        ``early_stopping`` (an :class:`EarlyStopping`) ends training when
        the validation metric plateaus.
        """
        x = np.asarray(x, dtype=self.network.dtype)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ConfigError(
                f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}")
        if early_stopping is not None and (validation is None
                                           or metric is None):
            raise ConfigError(
                "early_stopping requires validation data and a metric")
        params = self.network.parameters()
        history = {"loss": [], "val_metric": [], "lr": []}
        indices = np.arange(x.shape[0])
        for epoch in range(epochs):
            if shuffle:
                self.rng.shuffle(indices)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, x.shape[0], batch_size):
                batch_idx = indices[start:start + batch_size]
                self.optimizer.zero_grad(params)
                tape = self.network.run(x[batch_idx], training=True)
                loss_value, grad = self.loss(tape.outputs(), y[batch_idx])
                tape.backward(grad)
                if clip_norm is not None:
                    clip_gradients(params, clip_norm)
                self.optimizer.step(params)
                epoch_loss += loss_value
                batches += 1
            history["loss"].append(epoch_loss / max(batches, 1))
            history["lr"].append(getattr(self.optimizer, "lr", None))
            if validation is not None and metric is not None:
                x_val, y_val = validation
                history["val_metric"].append(metric(self.network, x_val, y_val))
            if verbose:
                val = (f" val={history['val_metric'][-1]:.4f}"
                       if history["val_metric"] else "")
                print(f"[{self.network.name}] epoch {epoch + 1}/{epochs} "
                      f"loss={history['loss'][-1]:.4f}{val}")
            if schedule is not None:
                schedule(self.optimizer, epoch + 1)
            if (early_stopping is not None
                    and early_stopping.should_stop(
                        history["val_metric"][-1])):
                break
        return history
