"""Crash-safe file writes: temp file + fsync + atomic rename.

The one write discipline every durable artifact in this repo uses —
corpus inputs and checkpoints, coverage snapshots, the farm's job
journal and daemon endpoint file.  A reader never observes a torn
file: it sees the old contents or the new contents, nothing between,
even across ``kill -9``.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_json"]


def atomic_write_bytes(path, payload):
    """Write ``payload`` to ``path`` atomically (temp file + replace)."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def atomic_write_json(path, obj):
    atomic_write_bytes(path, (json.dumps(obj, indent=2, sort_keys=True)
                              + "\n").encode("utf-8"))
