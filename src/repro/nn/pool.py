"""Pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


def _check_divisible(shape, pool):
    _, _, h, w = shape
    ph, pw = pool
    if h % ph or w % pw:
        raise ShapeError(
            f"pool {pool} does not evenly divide spatial dims {(h, w)}")


class MaxPool2D(Layer):
    """Non-overlapping max pooling with window == stride.

    All architectures in the zoo use non-overlapping windows, so the layer
    requires the spatial dims to be divisible by the pool size and exploits
    that with a reshape-based implementation.
    """

    def __init__(self, pool_size=2, name=None):
        super().__init__(name=name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = tuple(int(p) for p in pool_size)

    def forward(self, x, training=False):
        _check_divisible(x.shape, self.pool_size)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        windows = (x.reshape(n, c, h // ph, ph, w // pw, pw)
                   .transpose(0, 1, 2, 4, 3, 5)
                   .reshape(n, c, h // ph, w // pw, ph * pw))
        idx = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
        return out, (x.shape, idx)

    def backward(self, ctx, grad_out, accumulate=True):
        input_shape, idx = ctx
        n, c, h, w = input_shape
        ph, pw = self.pool_size
        grad_windows = np.zeros((n, c, h // ph, w // pw, ph * pw),
                                dtype=grad_out.dtype)
        np.put_along_axis(grad_windows, idx[..., None],
                          grad_out[..., None], axis=-1)
        return (grad_windows
                .reshape(n, c, h // ph, w // pw, ph, pw)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, h, w))

    def output_shape(self, input_shape):
        c, h, w = input_shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ShapeError(
                f"pool {self.pool_size} does not divide {(h, w)}")
        return (c, h // ph, w // pw)


class AvgPool2D(Layer):
    """Non-overlapping average pooling with window == stride."""

    def __init__(self, pool_size=2, name=None):
        super().__init__(name=name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = tuple(int(p) for p in pool_size)

    def forward(self, x, training=False):
        _check_divisible(x.shape, self.pool_size)
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        out = (x.reshape(n, c, h // ph, ph, w // pw, pw)
               .mean(axis=(3, 5)))
        return out, x.shape

    def backward(self, ctx, grad_out, accumulate=True):
        n, c, h, w = ctx
        ph, pw = self.pool_size
        scale = 1.0 / (ph * pw)
        expanded = np.repeat(np.repeat(grad_out, ph, axis=2), pw, axis=3)
        return expanded * scale

    def output_shape(self, input_shape):
        c, h, w = input_shape
        ph, pw = self.pool_size
        if h % ph or w % pw:
            raise ShapeError(
                f"pool {self.pool_size} does not divide {(h, w)}")
        return (c, h // ph, w // pw)


class GlobalAvgPool2D(Layer):
    """Average each channel over all spatial positions: (N,C,H,W)->(N,C)."""

    def forward(self, x, training=False):
        return x.mean(axis=(2, 3)), x.shape

    def backward(self, ctx, grad_out, accumulate=True):
        n, c, h, w = ctx
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)).copy()

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c,)
