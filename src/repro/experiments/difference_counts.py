"""Table 2: number of difference-inducing inputs per tested DNN.

The paper runs DeepXplore with 2,000 random test-set seeds per dataset and
reports how many difference-inducing inputs each DNN accounts for.  We
attribute each generated test to the DNN that disagreed with the majority
prediction (the model actually exhibiting the erroneous behaviour); tests
with no clear majority attribute to the first dissenting model.
"""

from __future__ import annotations

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import TRIOS, get_trio
from repro.utils.rng import as_rng

__all__ = ["run_difference_counts", "attribute_test"]


def attribute_test(test, n_models):
    """Index of the model whose prediction dissents from the majority."""
    preds = np.asarray(test.predictions)
    if preds.dtype.kind == "f":
        # Regression: the model furthest from the median angle.
        median = np.median(preds)
        return int(np.abs(preds - median).argmax())
    values, counts = np.unique(preds, return_counts=True)
    if counts.max() == 1:
        return 0  # total disagreement: attribute to the first model
    majority = values[counts.argmax()]
    dissenters = np.flatnonzero(preds != majority)
    return int(dissenters[0]) if dissenters.size else 0


def run_difference_counts(scale="small", seed=0, datasets=None,
                          use_cache=True, engine="sequential", workers=1):
    """Run the Table 2 experiment over all (or selected) datasets.

    ``engine``/``workers`` select how the seed corpus is processed (see
    :func:`make_engine`); the reported per-DNN attribution is engine-
    independent.
    """
    datasets = datasets or list(TRIOS)
    result = ExperimentResult(
        experiment_id="table2",
        title="Difference-inducing inputs found per tested DNN",
        headers=["DNN name", "lambda1", "lambda2", "s", "t",
                 "# seeds", "# differences"],
        paper_reference=("2,000 seeds per dataset; 789-2,000 differences "
                         "per DNN (Table 2)"),
    )
    rng = as_rng(seed)
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        models = get_trio(dataset_name, scale=scale, seed=seed,
                          dataset=dataset, use_cache=use_cache)
        hp = PAPER_HYPERPARAMS[dataset_name]
        n_seeds = seeds_for_scale(scale, maximum=dataset.x_test.shape[0])
        seeds, _ = dataset.sample_seeds(n_seeds, rng)
        # Campaign determinism is rooted in an integer, not a shared
        # generator; the other engines keep drawing from ``rng``.
        engine_rng = seed if engine == "campaign" else rng
        run = make_engine(engine, models, hp,
                          constraint_for_dataset(dataset),
                          dataset.task, engine_rng, workers=workers).run(seeds)
        per_model = np.zeros(len(models), dtype=int)
        for test in run.tests:
            per_model[attribute_test(test, len(models))] += 1
        step = "N/A" if dataset_name == "drebin" else hp.step
        for model, count in zip(models, per_model):
            result.rows.append([model.name, hp.lambda1, hp.lambda2, step,
                                hp.threshold, n_seeds, int(count)])
    result.notes.append(
        "differences attributed to the DNN dissenting from the majority "
        "prediction; the paper reports per-DNN totals the same way")
    return result
