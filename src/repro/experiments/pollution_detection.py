"""§7.3 pollution detection: recover mislabelled training samples.

One LeNet-5 trains on clean MNIST, another on a polluted copy (a fraction
of 9s relabelled as 1s).  DeepXplore generates inputs the two models
disagree on in exactly the polluted direction (clean says 9, polluted says
1); an SSIM nearest-neighbour search from those inputs into the polluted
training class then flags the polluted samples.  The paper recovers 95.6%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import detect_polluted
from repro.core import Hyperparams, LightingConstraint
from repro.datasets import load_dataset, pollute_labels
from repro.experiments.common import ExperimentResult, make_engine
from repro.models import build_lenet5
from repro.models.registry import TRAINING_DTYPE
from repro.nn import Trainer, dtypes
from repro.utils.rng import as_rng

__all__ = ["run_pollution_detection"]

_SOURCE, _TARGET = 9, 1


def _train_lenet5(dataset, seed, epochs):
    # Trained at the zoo dtype so the experiment's outputs stay stable
    # under the float32 library default.
    with dtypes.default_dtype(TRAINING_DTYPE):
        network = build_lenet5(rng=as_rng(seed), name=f"lenet5-{seed}")
        trainer = Trainer(network, loss="cross_entropy", optimizer="adam",
                          rng=as_rng(seed + 1))
        trainer.fit(dataset.x_train, dataset.y_train, epochs=epochs,
                    batch_size=32)
    return network


def run_pollution_detection(scale="small", seed=0, fraction=0.3, epochs=None,
                            max_generated=40, ascent="vanilla", beta=None):
    """Run the pollution-detection experiment end to end.

    ``ascent``/``beta`` select the update rule driving each per-seed
    ascent (see :func:`make_engine`).
    """
    dataset = load_dataset("mnist", scale=scale, seed=seed)
    polluted_ds, truth = pollute_labels(dataset, source_class=_SOURCE,
                                        target_class=_TARGET,
                                        fraction=fraction, rng=seed + 3)
    epochs = epochs or {"smoke": 8, "small": 15, "full": 25}.get(scale, 10)
    clean_model = _train_lenet5(dataset, seed + 100, epochs)
    polluted_model = _train_lenet5(polluted_ds, seed + 200, epochs)

    # Generate inputs the models disagree on, seeded from 9s.
    rng = as_rng(seed + 5)
    nines = dataset.x_train[np.asarray(dataset.y_train) == _SOURCE]
    hp = Hyperparams(lambda1=1.0, lambda2=0.1, step=10.0 / 255.0,
                     max_iterations=30)
    engine = make_engine("sequential", [clean_model, polluted_model], hp,
                         LightingConstraint(), "classification", rng,
                         ascent=ascent, beta=beta)
    targeted = []
    for i in range(nines.shape[0]):
        if len(targeted) >= max_generated:
            break
        test = engine.generate_from_seed(nines[i], seed_index=i)
        if test is None:
            continue
        clean_pred, polluted_pred = test.predictions
        if clean_pred == _SOURCE and polluted_pred == _TARGET:
            targeted.append(test.x)

    result = ExperimentResult(
        experiment_id="pollution",
        title="Training-data pollution detection via DeepXplore + SSIM",
        headers=["# polluted", "# generated", "# flagged", "# detected",
                 "detection rate"],
        paper_reference="95.6% of polluted samples correctly identified",
    )
    if not targeted:
        result.rows.append([truth.size, 0, 0, 0, "n/a"])
        result.notes.append("no 9->1 difference-inducing inputs generated; "
                            "increase the seed budget or scale")
        return result
    report = detect_polluted(np.stack(targeted), polluted_ds, truth,
                             suspect_label=_TARGET)
    result.rows.append([truth.size, len(targeted), report.flagged.size,
                        report.detected, f"{report.detection_rate:.1%}"])
    result.notes.append(
        f"pollution: {fraction:.0%} of digit-{_SOURCE} training samples "
        f"relabelled {_TARGET}; detection budget = ground-truth size")
    return result
