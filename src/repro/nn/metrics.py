"""Classification metrics beyond plain accuracy.

The malware experiments report detector quality; precision/recall matter
there because the real Drebin corpus is heavily imbalanced (123k benign
vs 5.5k malicious) — accuracy alone would reward the trivial
"everything benign" detector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["confusion_matrix", "precision_recall_f1", "classification_report"]


def confusion_matrix(y_true, y_pred, num_classes=None):
    """``C[i, j]`` = number of samples with true class i predicted as j."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"label shapes differ: {y_true.shape} vs {y_pred.shape}")
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0),
                              y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(y_true, y_pred, positive_class=1):
    """Binary precision/recall/F1 for ``positive_class``."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    true_pos = int(((y_pred == positive_class)
                    & (y_true == positive_class)).sum())
    pred_pos = int((y_pred == positive_class).sum())
    actual_pos = int((y_true == positive_class).sum())
    precision = true_pos / pred_pos if pred_pos else 0.0
    recall = true_pos / actual_pos if actual_pos else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def classification_report(network, x, y, class_names=None, batch_size=256):
    """Per-class precision/recall/F1 plus accuracy, as a dict."""
    y = np.asarray(y, dtype=int)
    preds = network.predict(x, batch_size=batch_size).argmax(axis=1)
    num_classes = network.output_shape[0]
    matrix = confusion_matrix(y, preds, num_classes=num_classes)
    report = {"accuracy": float((preds == y).mean()),
              "confusion_matrix": matrix, "per_class": {}}
    for cls in range(num_classes):
        name = class_names[cls] if class_names else str(cls)
        precision, recall, f1 = precision_recall_f1(y, preds,
                                                    positive_class=cls)
        report["per_class"][name] = {
            "precision": precision, "recall": recall, "f1": f1,
            "support": int((y == cls).sum()),
        }
    return report
