#!/usr/bin/env python
"""CI smoke check for the farm daemon: kill -9 mid-job, restart, finish.

Boots a real ``repro serve`` daemon on a temp farm root, submits two
concurrent jobs against separate tenant stores (one fuzz, one
generate), SIGKILLs the daemon once the fuzz store shows committed
progress, restarts it, and asserts both jobs run to ``done`` — the
interrupted one resumed from its store checkpoint, the queue recovered
from its journal.  This is the farm's crash contract (docs/FARM.md) at
CLI-smoke scale; the deterministic fault-injection matrix lives in
``tests/farm/``.

Exit code 0 on success, non-zero with a summary on any failure.

Usage:  PYTHONPATH=src python tools/farm_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.corpus import CorpusStore
from repro.farm import FarmClient

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                   os.pardir, "src"))

FUZZ_SPEC = {"store": "tenant-a", "kind": "fuzz", "rounds": 4,
             "seeds": 12, "wave_size": 6, "shard_size": 4, "seed": 7}
GEN_SPEC = {"store": "tenant-b", "kind": "generate", "seeds": 8,
            "shard_size": 4, "seed": 3}


def start_daemon(root):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def wait_ready(root, proc, timeout=300.0):
    client = FarmClient(root, timeout=5)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited {proc.returncode} before "
                             f"ready:\n{proc.stdout.read()}")
        try:
            client.ping()
            return client
        except Exception:
            time.sleep(0.1)
    raise SystemExit("daemon never became ready")


def wait_for_store_progress(store_path, timeout=420.0):
    """Block until the fuzz store has committed at least one round
    (the first run in CI also trains the smoke model trio here)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(store_path):
            state = CorpusStore(store_path).fuzz_state()
            if state is not None and state["completed_rounds"] >= 1:
                return state
        time.sleep(0.1)
    raise SystemExit("fuzz job never committed a round")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "farm")

        proc = start_daemon(root)
        client = wait_ready(root, proc)
        fuzz = client.submit(FUZZ_SPEC)
        gen = client.submit(GEN_SPEC)
        print(f"submitted {fuzz['job_id']} (fuzz -> tenant-a) and "
              f"{gen['job_id']} (generate -> tenant-b)")

        state = wait_for_store_progress(
            os.path.join(root, "stores", "tenant-a"))
        print(f"fuzz store at {state['completed_rounds']} committed "
              f"round(s); sending SIGKILL to daemon pid {proc.pid}")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        proc = start_daemon(root)
        client = wait_ready(root, proc)
        for job_id in (fuzz["job_id"], gen["job_id"]):
            record = client.wait(job_id, timeout=420)
            result = " ".join(f"{k}={v}" for k, v in
                              sorted(record["result"].items()))
            print(f"{job_id} done after restart: {result}")

        counts = client.counts()
        client.drain()
        code = proc.wait(timeout=120)
        if counts.get("done") != 2 or counts.get("failed"):
            raise SystemExit(f"unexpected final job counts: {counts}")
        if code != 0:
            raise SystemExit(f"drained daemon exited {code}")
        final = CorpusStore(
            os.path.join(root, "stores", "tenant-a")).fuzz_state()
        if final["completed_rounds"] != FUZZ_SPEC["rounds"]:
            raise SystemExit(
                f"fuzz store resumed to {final['completed_rounds']} "
                f"round(s), wanted {FUZZ_SPEC['rounds']}")

    print("farm smoke OK: daemon kill -9 + restart completed both jobs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
