"""The LeNet family (paper's MNIST models MNI_C1..C3).

LeNet-1, LeNet-4 and LeNet-5 follow LeCun et al.'s topologies on 28x28
inputs: valid 5x5 convolutions with 2x2 subsampling, then fully connected
heads.  ``build_lenet1_variant`` additionally supports the Table 12
similarity experiment, which perturbs the number of filters per
convolutional layer.
"""

from __future__ import annotations

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network
from repro.utils.rng import as_rng

__all__ = ["build_lenet1", "build_lenet4", "build_lenet5",
           "build_lenet1_variant"]

_INPUT_SHAPE = (1, 28, 28)


def build_lenet1(rng=None, name="lenet1"):
    """LeNet-1: two conv/pool stages straight into the softmax."""
    return build_lenet1_variant(rng=rng, name=name, extra_filters=0)


def build_lenet1_variant(rng=None, name="lenet1", extra_filters=0):
    """LeNet-1 with ``extra_filters`` added to each conv layer (Table 12)."""
    rng = as_rng(rng)
    c1 = 4 + extra_filters
    c2 = 12 + extra_filters
    layers = [
        Conv2D(1, c1, 5, rng=rng, name="conv1"),      # 28 -> 24
        MaxPool2D(2, name="pool1"),                    # -> 12
        Conv2D(c1, c2, 5, rng=rng, name="conv2"),      # -> 8
        MaxPool2D(2, name="pool2"),                    # -> 4
        Flatten(name="flatten"),
        Dense(c2 * 4 * 4, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)


def build_lenet4(rng=None, name="lenet4"):
    """LeNet-4: 4/16 feature maps plus a 120-unit hidden layer."""
    rng = as_rng(rng)
    layers = [
        Conv2D(1, 4, 5, rng=rng, name="conv1"),        # -> 24
        MaxPool2D(2, name="pool1"),                     # -> 12
        Conv2D(4, 16, 5, rng=rng, name="conv2"),        # -> 8
        MaxPool2D(2, name="pool2"),                     # -> 4
        Flatten(name="flatten"),
        Dense(16 * 4 * 4, 120, rng=rng, name="fc1"),
        Dense(120, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)


def build_lenet5(rng=None, name="lenet5"):
    """LeNet-5: 6/16 feature maps with 120- and 84-unit hidden layers."""
    rng = as_rng(rng)
    layers = [
        Conv2D(1, 6, 5, rng=rng, name="conv1"),        # -> 24
        MaxPool2D(2, name="pool1"),                     # -> 12
        Conv2D(6, 16, 5, rng=rng, name="conv2"),        # -> 8
        MaxPool2D(2, name="pool2"),                     # -> 4
        Flatten(name="flatten"),
        Dense(16 * 4 * 4, 120, rng=rng, name="fc1"),
        Dense(120, 84, rng=rng, name="fc2"),
        Dense(84, 10, activation="softmax", rng=rng, name="output"),
    ]
    return Network(layers, _INPUT_SHAPE, name=name)
