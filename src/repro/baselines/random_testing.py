"""Random test selection — the paper's first comparison baseline.

"Random" in Figures 9-10 means randomly picked inputs from the original
test set (not random noise): the standard ML testing practice DeepXplore
is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["random_inputs"]


def random_inputs(dataset, count, rng=None, from_train=False):
    """Pick ``count`` random inputs (and labels) from a dataset split."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    rng = as_rng(rng)
    return dataset.sample_seeds(count, rng, from_train=from_train)
