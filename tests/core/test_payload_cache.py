"""Per-worker model-payload caching: one deserialization per lifetime.

The regression this file pins (ISSUE 8): campaign workers used to
rebuild every model from its pickled payload once per wave — a
multi-wave fuzz session paid ``waves x models`` deserializations
instead of ``models``.  The fix routes every rebuild through the
per-worker digest-keyed cache installed by ``_init_worker``, and
:class:`repro.nn.instrumentation.PayloadCounter` is how we count the
rebuilds that actually happen.
"""

import os

import numpy as np
import pytest

from repro.core import (Campaign, LightingConstraint, PAPER_HYPERPARAMS,
                        shard_corpus)
from repro.core import campaign as campaign_mod
from repro.corpus import FuzzSession
from repro.errors import ConfigError
from repro.nn.config import network_to_payload
from repro.nn.instrumentation import PayloadCounter


@pytest.fixture
def fresh_cache():
    """Empty this thread's model cache so rebuild counts start at zero."""
    campaign_mod._LOCAL.model_cache = {}
    yield
    campaign_mod._LOCAL.model_cache = {}


def _campaign(models, workers=1):
    return Campaign(models, PAPER_HYPERPARAMS["mnist"],
                    LightingConstraint(), workers=workers, shard_size=4,
                    seed=17)


def test_session_waves_deserialize_each_model_once(tmp_path, mnist_trio,
                                                   mnist_smoke, fresh_cache):
    """Three waves, workers=1: exactly one rebuild per model, not per
    wave — the cache carries models across the session's campaigns."""
    session = FuzzSession(tmp_path / "c", mnist_trio,
                          PAPER_HYPERPARAMS["mnist"], LightingConstraint(),
                          wave_size=8, workers=1, shard_size=4, seed=7,
                          dataset=mnist_smoke, initial_seed_count=12)
    with PayloadCounter() as counter:
        report = session.run(3)
    assert report.waves_run == 3
    assert counter.total() == len(mnist_trio)
    for model in mnist_trio:
        assert counter.deserializations[model.name] == 1


def test_second_campaign_run_hits_the_cache(mnist_trio, mnist_smoke,
                                            fresh_cache):
    seeds, _ = mnist_smoke.sample_seeds(8, np.random.default_rng(3))
    campaign = _campaign(mnist_trio)
    with PayloadCounter() as counter:
        campaign.run(seeds)
        first = counter.total()
        campaign.run(seeds)
        second = counter.total() - first
    assert first == len(mnist_trio)
    assert second == 0


def test_weight_change_misses_the_cache(mnist_trio, mnist_smoke,
                                        fresh_cache):
    """The cache keys on payload *content*: an in-place weight change
    must rebuild, never serve the stale model."""
    seeds, _ = mnist_smoke.sample_seeds(4, np.random.default_rng(5))
    campaign = _campaign(mnist_trio)
    with PayloadCounter() as counter:
        campaign.run(seeds)
        assert counter.total() == len(mnist_trio)
        state = mnist_trio[0].state_dict()
        key = sorted(state)[0]
        original = state[key].copy()
        state[key] += 1e-3
        mnist_trio[0].load_state_dict(state)
        try:
            campaign.run(seeds)
        finally:
            state[key] = original
            mnist_trio[0].load_state_dict(state)
    # Exactly one extra rebuild: the perturbed model, nothing else.
    assert counter.total() == len(mnist_trio) + 1
    assert counter.deserializations[mnist_trio[0].name] == 2


def test_payload_digest_tracks_content(mnist_trio):
    payload = network_to_payload(mnist_trio[0])
    again = network_to_payload(mnist_trio[0])
    assert campaign_mod.payload_digest(payload) == \
        campaign_mod.payload_digest(again)
    key = sorted(payload["state"])[0]
    payload["state"][key] = payload["state"][key] + 1e-6
    assert campaign_mod.payload_digest(payload) != \
        campaign_mod.payload_digest(again)


def test_pool_reuse_is_bit_identical(mnist_trio, mnist_smoke):
    """A persistent CampaignPool is throughput-only: three runs through
    one pool equal three runs through fresh per-run pools."""
    seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(9))
    pooled = _campaign(mnist_trio, workers=2)
    fresh = _campaign(mnist_trio, workers=2)
    with pooled.make_pool() as pool:
        pooled_results = [pooled.run(seeds, pool=pool) for _ in range(2)]
    fresh_results = [fresh.run(seeds) for _ in range(2)]
    for rp, rf in zip(pooled_results, fresh_results):
        assert [t.seed_index for t in rp.tests] == \
            [t.seed_index for t in rf.tests]
        for a, b in zip(rp.tests, rf.tests):
            np.testing.assert_array_equal(a.x, b.x)
    for tp, tf in zip(pooled.trackers, fresh.trackers):
        np.testing.assert_array_equal(tp.covered, tf.covered)


def test_pool_rejects_mismatched_campaign(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(4, np.random.default_rng(2))
    campaign = _campaign(mnist_trio, workers=2)
    other = Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                     LightingConstraint(), workers=2, shard_size=4,
                     seed=17, absorb_exhausted=False)
    with campaign.make_pool() as pool:
        with pytest.raises(ConfigError):
            other.run(seeds, pool=pool)
    with pytest.raises(ConfigError):
        campaign.run(seeds, pool=pool)   # closed pool
    with pytest.raises(ConfigError):     # workers=1 needs no pool
        campaign_mod.CampaignPool(campaign._static_spec(), workers=1)


def _probe(_):
    """Report (pid, payload rebuilds seen in this worker process)."""
    from repro.nn import instrumentation
    total = sum(c.total() for c in instrumentation._ACTIVE_PAYLOAD)
    return (os.getpid(), total)


@pytest.mark.skipif("fork" not in
                    __import__("multiprocessing").get_all_start_methods(),
                    reason="needs fork to inherit the installed counter")
def test_pooled_workers_deserialize_once_per_lifetime(mnist_trio,
                                                      mnist_smoke):
    """The cross-process pin: after three waves through one pool, every
    worker process has rebuilt each model exactly once (at initializer
    time), never once per wave.  The counter is installed *before* the
    fork, so each child inherits — and increments — its own copy, which
    the probe reads back from inside the worker."""
    seeds, _ = mnist_smoke.sample_seeds(12, np.random.default_rng(4))
    campaign = Campaign(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                        LightingConstraint(), workers=2, shard_size=4,
                        seed=17, mp_start_method="fork")
    with PayloadCounter() as counter:
        with campaign.make_pool() as pool:
            for _ in range(3):
                campaign.run(seeds, pool=pool)
            probes = pool._pool.map(_probe, range(8), chunksize=1)
    # Nothing was rebuilt in the parent (workers did all the work)...
    assert counter.total() == 0
    # ...and each worker rebuilt the trio once, not 3 waves x trio.
    per_worker = dict(probes)
    assert len(per_worker) >= 1
    for pid, rebuilds in per_worker.items():
        assert rebuilds == len(mnist_trio), (
            f"worker {pid} rebuilt payloads {rebuilds} times; the "
            f"per-worker cache should cap this at {len(mnist_trio)}")
