"""The dtype policy: resolution stack, end-to-end threading, casts,
and the payload round-trip that derives float32 copies of float64 zoo
models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import Conv2D, Dense, Flatten, Network, dtypes
from repro.nn.config import (network_from_config, network_from_payload,
                             network_to_config, network_to_payload)


def _net(name="dtype_net"):
    rng = np.random.default_rng(3)
    return Network([
        Conv2D(1, 2, 3, padding=1, rng=rng, name="c"),
        Flatten(name="f"),
        Dense(2 * 4 * 4, 3, activation="softmax", rng=rng, name="out"),
    ], input_shape=(1, 4, 4), name=name)


def test_policy_stack_and_resolution():
    assert dtypes.DEFAULT_DTYPE == np.dtype(np.float32)
    base = dtypes.get_default_dtype()
    with dtypes.default_dtype(np.float64):
        assert dtypes.get_default_dtype() == np.dtype(np.float64)
        assert dtypes.resolve(None) == np.dtype(np.float64)
        with dtypes.default_dtype("float32"):
            assert dtypes.resolve(None) == np.dtype(np.float32)
        assert dtypes.get_default_dtype() == np.dtype(np.float64)
    assert dtypes.get_default_dtype() == base
    assert dtypes.resolve("float32") == np.dtype(np.float32)
    with pytest.raises(ConfigError):
        dtypes.resolve(np.int32)


def test_network_built_under_policy_runs_at_that_dtype():
    for dtype in ("float32", "float64"):
        with dtypes.default_dtype(dtype):
            net = _net()
        assert net.dtype == np.dtype(dtype)
        x = np.random.default_rng(0).random((2, 1, 4, 4))  # float64 input
        tape = net.run(x)
        assert tape.x.dtype == np.dtype(dtype)
        assert tape.outputs().dtype == np.dtype(dtype)
        assert tape.gradient_of_class(0).dtype == np.dtype(dtype)
        assert net.neuron_activations(x).dtype == np.dtype(dtype)


def test_cast_converts_parameters_buffers_and_gradients():
    with dtypes.default_dtype(np.float64):
        net = _net()
    net.cast(np.float32)
    assert net.dtype == np.dtype(np.float32)
    for param in net.parameters():
        assert param.value.dtype == np.dtype(np.float32)
        assert param.grad.dtype == np.dtype(np.float32)
    for buf in net.buffers():
        assert buf.dtype == np.dtype(np.float32)
    assert net.predict(np.zeros((1, 1, 4, 4))).dtype == np.dtype(np.float32)


def test_payload_round_trip_preserves_and_converts_dtype():
    with dtypes.default_dtype(np.float64):
        net = _net()
    payload = network_to_payload(net)
    assert payload["config"]["dtype"] == "float64"

    same = network_from_payload(payload)
    assert same.dtype == np.dtype(np.float64)
    x = np.random.default_rng(1).random((2, 1, 4, 4))
    np.testing.assert_array_equal(same.predict(x), net.predict(x))

    low = network_from_payload(payload, dtype=np.float32)
    assert low.dtype == np.dtype(np.float32)
    np.testing.assert_allclose(low.predict(x), net.predict(x),
                               rtol=1e-5, atol=1e-6)


def test_legacy_config_without_dtype_defaults_to_float64():
    with dtypes.default_dtype(np.float64):
        net = _net()
    config = network_to_config(net)
    config.pop("dtype")
    # Rebuild under a float32 ambient default: the legacy payload must
    # still come back as the float64 it was captured at.
    with dtypes.default_dtype(np.float32):
        rebuilt = network_from_config(config)
    assert rebuilt.dtype == np.dtype(np.float64)


def test_mixed_dtype_models_refused_by_engine():
    from repro.core import AscentEngine, Hyperparams, Unconstrained
    with dtypes.default_dtype(np.float64):
        a = _net("a")
    with dtypes.default_dtype(np.float32):
        b = _net("b")
    with pytest.raises(ConfigError, match="dtype"):
        AscentEngine([a, b], Hyperparams(), Unconstrained(),
                     task="classification", rng=0)
