"""The farm daemon: a long-lived, multi-tenant fuzzing campaign service.

One :class:`FarmDaemon` owns a *farm root* directory::

    root/
      queue.json            # journaled job queue (atomic JSON)
      daemon.json           # live endpoint record (written by the server)
      LOCK                  # daemon liveness lock (pid-checked)
      stores/<name>/        # one corpus store per tenant

and runs a fixed pool of worker *threads* that pull jobs from the
queue.  Threads, not processes, on purpose: each worker's thread-local
model cache (``repro.core.campaign``) then persists across jobs, so a
warm farm stops paying model-payload deserialization per job — and a
job may still fan out its own campaign worker *processes* when its
spec asks for ``workers > 1``.

Crash story (the tentpole contract): every durable structure already
survives ``kill -9`` — the queue journal is atomic, running jobs
re-queue on reload, and corpus stores checkpoint per wave — so a
daemon killed mid-wave restarts, re-claims the interrupted job, and
the resumed store converges bit-identically to an uninterrupted run.
``tests/farm/`` pins exactly that with deterministic fault injection
(:mod:`repro.utils.faults`).

Graceful drain: :meth:`drain` stops workers at the next *wave
boundary*; the interrupted job is released back to queued (not a
failure, no attempt burned) with its progress in the store checkpoint.

Beyond the job queue, a daemon is also a *federation peer* (see
``repro.dist`` and docs/DISTRIBUTED.md): it answers gossip (``peers``)
and store-sync verbs (``store-manifest`` / ``store-entry`` /
``store-entries`` / ``store-push`` / ``store-merge-coverage``),
executes single campaign
shards for remote drivers (``run-shard``), runs ledger-federated fuzz
jobs (kind ``federate``), and — when started with ``compact_every`` —
keeps its tenant stores bounded by scheduling ``compact-distill`` jobs
in the background.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import numpy as np

from repro.core import (Campaign, PAPER_HYPERPARAMS, constraint_for_dataset,
                        make_rule)
from repro.corpus import CorpusStore, FuzzSession, corpus_fingerprint
from repro.coverage import NeuronCoverageTracker
from repro.errors import FarmError, ReproError
from repro.farm.jobs import normalize_spec
from repro.farm.locks import StoreLock, StoreLockedError, lock_holder
from repro.farm.queue import JobQueue
from repro.utils.faults import fault_point

__all__ = ["FarmDaemon"]

#: How long an idle worker sleeps before re-checking the queue; also
#: bounds how late a backoff-gated retry can start.
_POLL_INTERVAL = 0.1

#: Housekeeper cadence when no compaction schedule is set: how often
#: peer gossip (and the auto-discovery it feeds) refreshes.
_GOSSIP_INTERVAL = 5.0


def _default_model_source(dataset_name, scale, seed):
    from repro.datasets import load_dataset
    from repro.models import get_trio
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    return get_trio(dataset_name, scale=scale, seed=seed,
                    dataset=dataset), dataset


class FarmDaemon:
    """Job-queue daemon over a farm root (see module docstring).

    Parameters
    ----------
    root:
        The farm root directory (created if absent).
    workers:
        Worker threads pulling jobs (concurrency across *stores*; jobs
        on one store always serialize).
    capacity:
        Max jobs in flight (queued + running) before submits are
        rejected with a retry-after hint.
    max_attempts, backoff_base:
        Retry policy for crashed jobs (see :class:`JobQueue`).
    scale, seed:
        Zoo scale/seed used when loading model trios for jobs.
    model_source:
        ``f(dataset_name, scale, seed) -> (models, dataset)`` override;
        tests inject session-scoped fixtures here so the daemon never
        trains.
    compact_every:
        Seconds between background compaction sweeps (``None``
        disables).  Each sweep submits a ``compact-distill`` job per
        tenant store that has grown since its last distillation, so an
        unattended farm root stays bounded without an operator.
    """

    def __init__(self, root, workers=2, capacity=8, max_attempts=3,
                 backoff_base=1.0, scale="smoke", seed=0,
                 model_source=None, compact_every=None):
        if workers < 1:
            raise FarmError(f"workers must be >= 1, got {workers}")
        self.root = os.path.abspath(root)
        self.stores_dir = os.path.join(self.root, "stores")
        os.makedirs(self.stores_dir, exist_ok=True)
        self.workers = int(workers)
        self.scale = scale
        self.seed = int(seed)
        self._model_source = model_source or _default_model_source
        self._trios = {}             # dataset name -> (models, dataset)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._draining = False
        self._threads = []
        self._housekeeper = None
        self.compact_every = (None if compact_every is None
                              else float(compact_every))
        if self.compact_every is not None and self.compact_every <= 0:
            raise FarmError(
                f"compact_every must be > 0, got {self.compact_every}")
        #: Per-store thread mutexes.  Jobs hold their store's guard for
        #: their whole run; sync verbs try-acquire it and fail fast with
        #: a retryable error instead of blocking a server thread behind
        #: a minutes-long job.  (StoreLock can't arbitrate this: it is
        #: pid-keyed, and all daemon threads share one pid.)
        self._store_guards = {}
        #: Latest gossip heard from each configured peer (the ``peers``
        #: verb returns it alongside our own).
        self._peer_state = {}
        #: One pooled PeerClient per peer — the gossip housekeeper
        #: reuses channels across ticks instead of redialing.
        self._peer_clients = {}
        self._daemon_lock = StoreLock(self.root,
                                      owner=f"farm-daemon:{os.getpid()}")
        self._daemon_lock.acquire()
        self.queue = JobQueue(os.path.join(self.root, "queue.json"),
                              capacity=capacity, max_attempts=max_attempts,
                              backoff_base=backoff_base)

    # -- store plumbing -----------------------------------------------------
    def store_path(self, name):
        return os.path.join(self.stores_dir, name)

    def store_names(self):
        """Tenant store directories that exist right now, sorted."""
        try:
            return sorted(
                name for name in os.listdir(self.stores_dir)
                if os.path.isdir(self.store_path(name)))
        except FileNotFoundError:
            return []

    def _store_guard(self, name):
        with self._lock:
            return self._store_guards.setdefault(str(name),
                                                 threading.Lock())

    def _models_for(self, dataset_name):
        """Model trio + dataset for a job, cached for the daemon's life."""
        if dataset_name not in self._trios:
            self._trios[dataset_name] = self._model_source(
                dataset_name, self.scale, self.seed)
        return self._trios[dataset_name]

    # -- public surface (called by the server and by tests) -----------------
    def submit(self, spec):
        """Validate + enqueue a job; returns the :class:`Job`.

        Fails fast — before the job ever reaches a worker — when the
        target store is locked by a live outside process or the queue
        is saturated.
        """
        spec = normalize_spec(spec)
        holder = lock_holder(self.store_path(spec["store"]))
        if holder is not None:
            raise StoreLockedError(self.store_path(spec["store"]), holder)
        with self._wake:
            job = self.queue.submit(spec)
            self._wake.notify_all()
        return job

    def status(self, job_id=None):
        """All jobs (as dicts), or one job's dict; raises on unknown id."""
        with self._lock:
            if job_id is not None:
                return self.queue.get(job_id).to_dict()
            return [job.to_dict() for job in self.queue.jobs()]

    def counts(self):
        with self._lock:
            jobs = self.queue.jobs()
        return {status: sum(1 for j in jobs if j.status == status)
                for status in ("queued", "running", "done", "failed")}

    # -- worker pool --------------------------------------------------------
    def start(self):
        """Spawn the worker threads (and housekeeper); returns self."""
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"farm-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        # The housekeeper always runs — peer gossip (and the auto-
        # discovery it feeds) must not depend on opting into
        # compaction; only the compaction sweep is gated on
        # ``compact_every``.
        self._housekeeper = threading.Thread(
            target=self._housekeeping_loop, name="farm-housekeeper",
            daemon=True)
        self._housekeeper.start()
        return self

    def drain(self, timeout=None):
        """Graceful shutdown: finish in-flight waves, release the rest.

        Blocks until every worker thread exits (or ``timeout``).  Jobs
        interrupted at a wave boundary go back to queued with their
        progress checkpointed in their stores.
        """
        with self._wake:
            self._draining = True
            self._wake.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        joinable = list(self._threads)
        if self._housekeeper is not None:
            joinable.append(self._housekeeper)
        for thread in joinable:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        if self._housekeeper is not None \
                and not self._housekeeper.is_alive():
            self._housekeeper = None
        self._threads = [t for t in self._threads if t.is_alive()]
        if not self._threads:
            self._daemon_lock.release()
        return not self._threads

    @property
    def draining(self):
        return self._draining

    def _worker_loop(self):
        while True:
            with self._wake:
                job = None
                while not self._draining:
                    job = self.queue.claim()
                    if job is not None:
                        break
                    self._wake.wait(_POLL_INTERVAL)
                if job is None:
                    return      # draining and nothing claimed
            released = False
            try:
                result, finished = self._execute(job)
                with self._wake:
                    if finished:
                        self.queue.mark_done(job.job_id, result)
                    else:
                        # Drained mid-job at a wave boundary.
                        self.queue.release(job.job_id)
                        released = True
                    self._wake.notify_all()
            except BaseException as error:    # noqa: BLE001 — a worker
                # must survive anything a job throws (including
                # injected faults) and convert it into retry state.
                # Library errors are deterministic rejections (bad spec,
                # identity mismatch): retrying them re-fails identically,
                # so they park immediately instead of burning backoff.
                with self._wake:
                    self.queue.mark_failed(
                        job.job_id, error,
                        permanent=isinstance(error, ReproError))
                    self._wake.notify_all()
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise
            if released and self._draining:
                return

    # -- job execution ------------------------------------------------------
    def _execute(self, job):
        """Run one claimed job; returns ``(result_dict, finished)``."""
        fault_point("farm.job.start")
        guard = self._store_guard(job.store)
        # The guard (thread mutex) keeps this daemon's sync verbs off
        # the store while the job runs; the StoreLock (pid-keyed file)
        # keeps other *processes* off it.  Both are released on any
        # exit, so a failed job never wedges the store.
        with guard:
            store_path = self.store_path(job.store)
            if job.spec["kind"] == "compact-merge":
                # Pure store-to-store work: no models, no dataset.
                with StoreLock(store_path,
                               owner=f"farm-job:{job.job_id}"):
                    return self._run_compact_merge(job, store_path), True
            if job.spec["dataset"] not in PAPER_HYPERPARAMS:
                raise FarmError(
                    f"unknown dataset {job.spec['dataset']!r}; want one "
                    f"of {sorted(PAPER_HYPERPARAMS)}")
            models, dataset = self._models_for(job.spec["dataset"])
            with StoreLock(store_path, owner=f"farm-job:{job.job_id}"):
                if job.spec["kind"] == "generate":
                    return self._run_generate(job, models, dataset,
                                              store_path), True
                if job.spec["kind"] == "compact-distill":
                    return self._run_compact_distill(
                        job, models, dataset, store_path), True
                if job.spec["kind"] == "federate":
                    return self._run_fuzz(job, models, dataset,
                                          store_path,
                                          shard_runner=self._federate_runner(
                                              job))
                return self._run_fuzz(job, models, dataset, store_path)

    def _federate_runner(self, job):
        """Ledger runner for a federate job's shared campaign dir."""
        # Imported lazily: repro.dist imports the farm client for its
        # RPC transports, so a top-level import here would be a cycle.
        from repro.dist.shards import DEFAULT_LEASE, LedgerShardRunner
        lease = job.spec.get("lease")
        return LedgerShardRunner(job.spec["campaign"],
                                 host=f"{socket.gethostname()}"
                                      f"/{job.job_id}",
                                 lease=(DEFAULT_LEASE if lease is None
                                        else float(lease)),
                                 # Locality-aware claiming: prefer
                                 # shards whose seeds this tenant store
                                 # already holds.
                                 have=self.store_path(job.spec["store"]))

    def _run_fuzz(self, job, models, dataset, store_path,
                  shard_runner=None):
        """Advance the store to the job's target rounds, wave by wave.

        Waves run one at a time so the drain flag is honoured at wave
        boundaries — exactly the granularity the store checkpoints at,
        which is what lets a released job resume losslessly.  A
        ``federate`` job is this same loop with a ledger-backed
        ``shard_runner`` splitting each wave across hosts.
        """
        spec = job.spec
        session = FuzzSession(
            store_path, models, PAPER_HYPERPARAMS[spec["dataset"]],
            constraint_for_dataset(dataset, kind=spec["constraint"]),
            task=dataset.task, wave_size=spec["wave_size"],
            workers=spec["workers"], shard_size=spec["shard_size"],
            seed=spec["seed"],
            rule=make_rule(spec["ascent"], beta=spec["beta"],
                           overshoot=spec["overshoot"]),
            dataset=dataset, initial_seed_count=spec["seeds"])
        new_tests = 0
        while session.completed_rounds < spec["rounds"]:
            if self._draining:
                return self._fuzz_result(session, new_tests), False
            fault_point("farm.wave")
            report = session.run(session.completed_rounds + 1,
                                 shard_runner=shard_runner)
            new_tests += report.new_tests
            if report.waves_run == 0:
                break               # scheduler has no pending seeds
        return self._fuzz_result(session, new_tests), True

    @staticmethod
    def _fuzz_result(session, new_tests):
        return {"completed_rounds": session.completed_rounds,
                "new_tests": int(new_tests),
                "entries": len(session.store),
                "mean_coverage": float(session.mean_coverage())}

    def _run_generate(self, job, models, dataset, store_path):
        """One deterministic generation pass absorbed into the store.

        Trackers start empty so the pass is a pure function of the job
        spec (see :mod:`repro.farm.jobs`); the commit OR-merges into
        whatever coverage the store already holds.  Re-running after a
        crash therefore reproduces the same entries (content-addressed
        no-ops) and the same merged coverage.
        """
        spec = job.spec
        hp = PAPER_HYPERPARAMS[spec["dataset"]]
        store = CorpusStore(store_path)
        store.bind_config(corpus_fingerprint(models, hp, dataset.task))
        trackers = [NeuronCoverageTracker(m, threshold=hp.threshold)
                    for m in models]
        seeds, _ = dataset.sample_seeds(
            min(spec["seeds"], dataset.x_test.shape[0]),
            np.random.default_rng(spec["seed"] + 1))
        campaign = Campaign(
            models, hp, constraint_for_dataset(dataset,
                                               kind=spec["constraint"]),
            task=dataset.task, trackers=trackers, workers=spec["workers"],
            shard_size=spec["shard_size"], seed=spec["seed"] + 2,
            rule=make_rule(spec["ascent"], beta=spec["beta"],
                           overshoot=spec["overshoot"]))
        result = campaign.run(seeds)
        seed_hashes = [store.add_entry(x, "seed", origin=int(i))[0]
                       for i, x in enumerate(seeds)]
        new_tests = 0
        for test in result.tests:
            _, added = store.add_entry(
                test.x, "test", origin=seed_hashes[test.seed_index],
                iterations=int(test.iterations),
                predictions=np.asarray(test.predictions).tolist(),
                seed_class=test.seed_class)
            new_tests += int(added)
        store.commit(coverage_states=store.merge_coverage(
            {m.name: t.state_dict() for m, t in zip(models, trackers)}),
            fuzz_state=store.fuzz_state())
        return {"seeds_processed": int(result.seeds_processed),
                "differences": int(result.difference_count),
                "new_tests": new_tests,
                "entries": len(store)}

    # -- background compaction ----------------------------------------------
    def _run_compact_merge(self, job, store_path):
        """Fold the spec's source stores into the (archive) destination.

        Sources are read through :meth:`CorpusStore.snapshot`, so they
        may be mid-fuzz under another job or another daemon — the merge
        takes a crash-consistent prefix and a later sweep picks up the
        rest.  Only the destination is locked.
        """
        dest = CorpusStore(store_path)
        added, merged = 0, 0
        for name in job.spec["sources"]:
            source_path = self.store_path(name)
            if not os.path.isdir(source_path):
                raise FarmError(
                    f"compact-merge source store {name!r} does not exist")
            added += dest.merge(source_path)
            merged += 1
        return {"merged_sources": merged, "new_entries": added,
                "entries": len(dest)}

    def _run_compact_distill(self, job, models, dataset, store_path):
        """Shrink a store to a coverage-preserving regression suite.

        The store-level half of :meth:`FuzzSession.distill` without
        requiring the session's deterministic identity: distill the
        test entries, then prune any committed fuzz scheduler of the
        dropped hashes and commit, so a later resumed session never
        schedules an entry that no longer exists.
        """
        spec = job.spec
        hp = PAPER_HYPERPARAMS[spec["dataset"]]
        store = CorpusStore(store_path, create=False)
        threshold = (store.config or {}).get("threshold", hp.threshold)
        store.bind_config(corpus_fingerprint(models, hp, dataset.task))
        kept, dropped = store.distill(models, threshold=float(threshold))
        state = store.fuzz_state()
        if state and state.get("scheduler"):
            remaining = {entry["hash"] for entry in store.entries()}
            state["scheduler"]["entries"] = [
                record for record in state["scheduler"]["entries"]
                if record["hash"] in remaining]
            store.commit(fuzz_state=state)
        return {"kept_tests": int(kept), "dropped": int(dropped),
                "entries": len(store)}

    def _housekeeping_loop(self):
        """Periodic background sweeps: compaction + peer gossip refresh."""
        while True:
            with self._wake:
                self._wake.wait(self.compact_every
                                if self.compact_every is not None
                                else _GOSSIP_INTERVAL)
                if self._draining:
                    return
            if self.compact_every is not None:
                try:
                    self._compact_sweep()
                except Exception:   # noqa: BLE001 — a sweep must never
                    pass            # kill the housekeeper; next tick retries
            try:
                self.poll_peers()
            except Exception:       # noqa: BLE001
                pass

    def _dataset_for_store(self, name):
        """Infer which dataset a tenant store was built against.

        The store's config fingerprint records its model trio; the trio
        registry maps straight back to the dataset.  ``None`` when the
        store has no config yet (nothing committed) or the models are
        not a registry trio.
        """
        try:
            config = CorpusStore(self.store_path(name),
                                 create=False).config
        except ReproError:
            return None
        if not config:
            return None
        from repro.models import TRIOS
        for dataset_name, trio in TRIOS.items():
            if list(trio) == list(config.get("models", [])):
                return dataset_name
        return None

    def _compact_sweep(self):
        """Submit one ``compact-distill`` per distillable tenant store.

        Skips stores that already have a compaction queued or running,
        stores another job is using, and stores whose dataset cannot be
        inferred; queue saturation just means this sweep waits for the
        next tick.  Returns the job ids it submitted.
        """
        with self._lock:
            busy = self.queue.active_stores()
            pending = {job.store for job in self.queue.jobs()
                       if job.status in ("queued", "running")
                       and job.spec["kind"].startswith("compact")}
        submitted = []
        for name in self.store_names():
            if name in busy or name in pending:
                continue
            try:
                store = CorpusStore(self.store_path(name), create=False)
            except ReproError:
                continue
            if not store.entries(kind="test"):
                continue            # nothing distillable yet
            dataset_name = self._dataset_for_store(name)
            if dataset_name is None or dataset_name not in \
                    PAPER_HYPERPARAMS:
                continue
            try:
                job = self.submit({"kind": "compact-distill",
                                   "store": name,
                                   "dataset": dataset_name})
            except FarmError:
                continue            # saturated or locked: next tick
            submitted.append(job.job_id)
        return submitted

    # -- federation surface (the dist-layer RPC verbs) -----------------------
    def gossip(self):
        """What this daemon tells its peers: load + store generations."""
        stores = {}
        for name in self.store_names():
            manifest_path = os.path.join(self.store_path(name),
                                         "MANIFEST.json")
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (FileNotFoundError, ValueError):
                continue
            stores[name] = {
                "entries": int(manifest.get("entries", 0)),
                "coverage_gen": int(manifest.get("coverage_gen", 0))}
        counts = self.counts()
        from repro.dist.coordinator import PeerList
        return {"root": self.root,
                "pid": os.getpid(),
                "draining": bool(self._draining),
                "counts": counts,
                "queue_depth": counts["queued"] + counts["running"],
                "stores": stores,
                "peers": [f"{host}:{port}" for host, port
                          in PeerList(self.root).peers()]}

    def _peer_client(self, host, port):
        key = (str(host), int(port))
        with self._lock:
            client = self._peer_clients.get(key)
            if client is None:
                from repro.farm.client import PeerClient
                client = PeerClient(host, port, timeout=2.0)
                self._peer_clients[key] = client
            return client

    def poll_peers(self):
        """Refresh gossip from every configured peer; returns the map.

        Unreachable peers record their error string instead of gossip —
        the federation tolerates them by design, so this never raises.
        Peers-of-peers heard in gossip are folded into the persisted
        :class:`~repro.dist.coordinator.PeerList` (capped, dedup'd,
        never ourselves), so a fleet needs one ``repro join`` per new
        host, not one per pair.
        """
        from repro.dist.coordinator import PeerList, parse_peer
        from repro.farm.server import read_endpoint
        peer_list = PeerList(self.root)
        state = {}
        heard = []
        for host, port in peer_list.peers():
            key = f"{host}:{port}"
            client = self._peer_client(host, port)
            try:
                reply = client.peers()
                state[key] = {"ok": True, "gossip": reply["gossip"]}
                heard.extend(reply["gossip"].get("peers") or [])
            except Exception as error:      # noqa: BLE001 — down peers
                state[key] = {"ok": False, "error": str(error)}
        endpoint = read_endpoint(self.root)
        ourselves = (set() if endpoint is None
                     else {f"{endpoint['host']}:{endpoint['port']}"})
        known = {f"{host}:{port}" for host, port in peer_list.peers()}
        for text in heard:
            try:
                host, port = parse_peer(text)
            except ReproError:
                continue        # a peer gossiped garbage; skip it
            key = f"{host}:{port}"
            if key in ourselves or key in known:
                continue
            if peer_list.add(host, port, via="gossip"):
                known.add(key)
        with self._lock:
            self._peer_state = state
        return state

    def peer_state(self):
        with self._lock:
            return dict(self._peer_state)

    def _sync_store(self, name, create=False):
        """Open a tenant store for a sync verb, with fail-fast guards.

        Rejects (as retryable :class:`FarmError`s) stores a running job
        owns or a live foreign process has locked; the caller then
        holds the per-store guard for the duration of its mutation.
        """
        if name is None or not str(name):
            raise FarmError("store verb needs a store name")
        name = str(name)
        store_path = self.store_path(name)
        if not create and not os.path.isdir(store_path):
            raise FarmError(f"no store named {name!r} on this farm")
        holder = lock_holder(store_path)
        if holder is not None:
            raise StoreLockedError(store_path, holder)
        return name, store_path

    def store_manifest(self, name, have=None):
        """Crash-consistent manifest of one tenant store (read verb).

        ``have`` is the delta filter: the hashes the caller already
        holds, so the reply's entry list carries only what it lacks.
        Config and coverage are always included — they merge rather
        than dedup.
        """
        from repro.dist.sync import encode_coverage
        name, store_path = self._sync_store(name)
        snap = CorpusStore(store_path, create=False).snapshot(
            exclude_hashes=have)
        return {"config": snap["config"],
                "generation": snap["generation"],
                "entries": [dict(entry) for entry in snap["entries"]],
                "coverage": {model: encode_coverage(state)
                             for model, state
                             in snap["coverage"].items()}}

    def store_entry(self, name, entry_hash):
        """One content-addressed input as ``.npy`` bytes (read verb)."""
        reply = self.store_entries(name, [entry_hash])
        return reply["entries"][0]

    def store_entries(self, name, hashes):
        """A batch of content-addressed inputs in one reply (read verb).

        The batched half of corpus pull: N entries per round-trip
        instead of one.  Order matches the request; an unknown hash
        fails the whole batch (sync always asks for hashes it just saw
        in a manifest, so a miss means the caller's view is stale).
        """
        from repro.dist.sync import encode_array
        name, store_path = self._sync_store(name)
        store = CorpusStore(store_path, create=False)
        entries = []
        for entry_hash in hashes:
            entry_hash = str(entry_hash)
            if not os.path.exists(store.input_path(entry_hash)):
                raise FarmError(f"store {name!r} has no entry "
                                f"{entry_hash[:12]}…")
            entries.append({"hash": entry_hash,
                            "data": encode_array(
                                store.load_input(entry_hash))})
        return {"entries": entries}

    def _guarded_store(self, name):
        """Acquire (non-blocking) the guard + store for a write verb."""
        guard = self._store_guard(name)
        if not guard.acquire(blocking=False):
            raise FarmError(
                f"store {name!r} is busy under a running job; retry "
                "after it finishes (sync is idempotent — nothing is "
                "lost by retrying)")
        return guard

    @staticmethod
    def _absorb_pushed(store, entry, data):
        """Add one pushed entry record; returns whether it was new."""
        from repro.dist.sync import decode_array
        if not isinstance(entry, dict) or "hash" not in entry \
                or "kind" not in entry:
            raise FarmError("store-push needs an entry record with "
                            "hash and kind")
        x = decode_array(data)
        meta = {k: v for k, v in entry.items()
                if k not in ("hash", "kind")}
        got, added = store.add_entry(x, entry["kind"], **meta)
        if got != entry["hash"]:
            raise FarmError(
                f"pushed entry {entry['hash'][:12]}… hashed to "
                f"{got[:12]}… on arrival — corrupt wire payload")
        return added

    def store_push(self, name, entry, data, config=None):
        """Accept one pushed entry (write verb; idempotent by hash)."""
        name, store_path = self._sync_store(name, create=True)
        guard = self._guarded_store(name)
        try:
            store = CorpusStore(store_path)
            if config is not None:
                store.bind_config(config)
            added = self._absorb_pushed(store, entry, data)
            return {"hash": str(entry["hash"]), "added": bool(added),
                    "entries": len(store)}
        finally:
            guard.release()

    def store_push_many(self, name, records, config=None):
        """Accept a batch of pushed entries (the write half of
        ``store-entries``): one guard acquisition, one round-trip,
        entry-by-entry idempotent absorption in request order."""
        if not isinstance(records, list):
            raise FarmError("store-entries push needs a list of "
                            "{entry, data} records")
        name, store_path = self._sync_store(name, create=True)
        guard = self._guarded_store(name)
        try:
            store = CorpusStore(store_path)
            if config is not None:
                store.bind_config(config)
            added = 0
            for record in records:
                if not isinstance(record, dict):
                    raise FarmError("store-entries push records must be "
                                    "{entry, data} objects")
                added += int(self._absorb_pushed(
                    store, record.get("entry"), record.get("data")))
            return {"added": added, "received": len(records),
                    "entries": len(store)}
        finally:
            guard.release()

    def store_merge_coverage(self, name, coverage, config=None):
        """OR-merge pushed coverage states and commit (write verb).

        A merge that changes nothing (pushed coverage ⊆ committed) is
        acknowledged without committing, so idle mirror syncs stop
        bumping the checkpoint generation and rewriting snapshots.
        """
        from repro.corpus.store import coverage_states_equal
        from repro.dist.sync import decode_coverage
        name, store_path = self._sync_store(name, create=True)
        guard = self._guarded_store(name)
        try:
            store = CorpusStore(store_path)
            if config is not None:
                store.bind_config(config)
            states = {model: decode_coverage(payload)
                      for model, payload in (coverage or {}).items()}
            existing = store.coverage_states()
            merged = store.merge_coverage(states)
            committed = not coverage_states_equal(existing, merged)
            if committed:
                store.commit(coverage_states=merged,
                             fuzz_state=store.fuzz_state())
            return {"generation": int(
                store._checkpoint.get("coverage_gen", 0)),
                "models": sorted(merged), "committed": committed}
        finally:
            guard.release()

    def run_shard(self, request):
        """Execute one campaign shard for a remote driver (RPC verb).

        The request carries the campaign's full deterministic identity
        — rule, constraint kind, task, dtype, tracker states, and the
        shard itself with its SeedSequence identity — so the outcome is
        bit-identical to the driver running the shard locally.  The
        model fingerprint is validated first: a peer whose zoo resolves
        a different trio (other scale, other seed) must refuse, not
        compute garbage.
        """
        from repro.core import resolve_models, rule_from_identity
        from repro.dist.coordinator import decode_shard
        from repro.dist.shards import encode_outcome
        from repro.dist.sync import decode_coverage
        from repro.farm.wire import Blob
        dataset_name = request.get("dataset")
        if dataset_name not in PAPER_HYPERPARAMS:
            raise FarmError(
                f"unknown dataset {dataset_name!r}; want one of "
                f"{sorted(PAPER_HYPERPARAMS)}")
        models, dataset = self._models_for(dataset_name)
        dtype = request.get("dtype")
        if dtype is not None and any(
                str(np.dtype(m.dtype)) != str(np.dtype(dtype))
                for m in models):
            models = resolve_models(models, dtype=dtype)
        hp = PAPER_HYPERPARAMS[dataset_name]
        task = request.get("task", dataset.task)
        fingerprint = request.get("fingerprint")
        mine = corpus_fingerprint(models, hp, task)
        if fingerprint is not None and fingerprint != mine:
            raise FarmError(
                f"shard fingerprint mismatch: driver has {fingerprint!r}, "
                f"this peer resolves {mine!r} — mixed scales or model "
                "architectures cannot federate")
        shard = decode_shard(request.get("shard") or {})
        tracker_states = [decode_coverage(payload)
                          for payload in request.get("trackers") or []]
        if len(tracker_states) != len(models):
            raise FarmError(
                f"run-shard needs one tracker state per model "
                f"({len(models)}), got {len(tracker_states)}")
        campaign = Campaign(
            models, hp,
            constraint_for_dataset(dataset,
                                   kind=request.get("constraint",
                                                    "default")),
            task=task, workers=1,
            shard_size=max(1, len(shard.seeds)),
            rule=rule_from_identity(request.get("ascent", "vanilla")),
            absorb_exhausted=bool(request.get("absorb_exhausted", True)))
        outcome = campaign.execute_shard(tracker_states, shard)
        return {"shard_index": int(outcome["shard_index"]),
                "outcome": Blob(encode_outcome(outcome))}
