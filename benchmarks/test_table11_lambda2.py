"""Benchmark: Table 11 — first-difference runtime vs lambda2."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_lambda2_sweep


def test_table11_lambda2(benchmark):
    result = run_once(benchmark, run_lambda2_sweep, scale=SCALE, seed=SEED,
                      repetitions=1)
    assert len(result.rows) == 5
