"""Benchmark: Table 2 — difference-inducing inputs per tested DNN."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_difference_counts


def test_table2_difference_counts(benchmark):
    result = run_once(benchmark, run_difference_counts, scale=SCALE,
                      seed=SEED)
    assert len(result.rows) == 15
    assert sum(row[-1] for row in result.rows) > 0
