"""Differential oracles and majority-vote labelling (paper §1, §7.3).

Multiple independently trained DNNs for the same task cross-reference each
other: if at least one disagrees with the rest on an input, that input
exposes an erroneous corner case in at least one model, with no manual
labelling.  For the driving (regression) task the oracle is a steering
*direction* disagreement, matching the paper's left/right framing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["ClassificationOracle", "RegressionOracle", "make_oracle",
           "majority_label"]

#: Steering angles with magnitude below this are "straight" (radians).
STRAIGHT_EPSILON = 0.05


class ClassificationOracle:
    """Difference = not all models predict the same class.

    The ``*_from_outputs`` variants judge precomputed per-model raw
    outputs (e.g. from :class:`~repro.nn.tape.ForwardPass` tapes the
    caller already holds) instead of re-running every model.
    """

    task = "classification"

    def __init__(self, models):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)

    @staticmethod
    def predictions_from_outputs(outputs):
        """Predicted class per model from raw model outputs."""
        return np.stack([out.argmax(axis=1) for out in outputs])

    def differs_from_outputs(self, outputs):
        """Disagreement per batch element from raw model outputs."""
        preds = self.predictions_from_outputs(outputs)
        return (preds != preds[0]).any(axis=0)

    def predictions(self, x):
        """Predicted class per model, shape ``(models, batch)``."""
        return self.predictions_from_outputs(
            [m.predict(x) for m in self.models])

    def differs(self, x):
        """Bool per batch element: do models disagree on this input?"""
        preds = self.predictions(x)
        return (preds != preds[0]).any(axis=0)


class RegressionOracle:
    """Difference = the predicted steering directions disagree.

    An angle is binned into left / straight / right with a small dead
    zone; models differ when their bins differ, or when the angle spread
    exceeds ``angle_spread`` radians (a gross magnitude disagreement is an
    erroneous behaviour even within one direction bin).
    """

    task = "regression"

    def __init__(self, models, angle_spread=0.6):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.angle_spread = float(angle_spread)

    @staticmethod
    def predictions_from_outputs(outputs):
        """Predicted angle per model from raw model outputs."""
        return np.stack([out.reshape(-1) for out in outputs])

    def differs_from_outputs(self, outputs):
        """Disagreement per batch element from raw model outputs."""
        angles = self.predictions_from_outputs(outputs)
        bins = self.direction(angles)
        bin_diff = (bins != bins[0]).any(axis=0)
        spread = angles.max(axis=0) - angles.min(axis=0)
        return bin_diff | (spread > self.angle_spread)

    def predictions(self, x):
        """Predicted angle per model, shape ``(models, batch)``."""
        return self.predictions_from_outputs(
            [m.predict(x) for m in self.models])

    @staticmethod
    def direction(angles):
        """-1 (left), 0 (straight), +1 (right) with a dead zone."""
        return np.where(np.abs(angles) <= STRAIGHT_EPSILON, 0,
                        np.sign(angles)).astype(int)

    def differs(self, x):
        return self.differs_from_outputs([m.predict(x) for m in self.models])


def make_oracle(models, task):
    """Build the right oracle for a task."""
    if task == "classification":
        return ClassificationOracle(models)
    if task == "regression":
        return RegressionOracle(models)
    raise ConfigError(f"unknown task {task!r}")


def majority_label(models, x):
    """Majority-vote class labels for ``x`` (paper §7.3 retraining).

    DeepXplore labels its generated tests automatically by majority vote
    over the tested DNNs; ties resolve to the first model's prediction.
    """
    preds = np.stack([m.predict(x).argmax(axis=1) for m in models])
    n_classes = models[0].output_shape[0]
    batch = preds.shape[1]
    labels = np.empty(batch, dtype=int)
    for i in range(batch):
        counts = np.bincount(preds[:, i], minlength=n_classes)
        best = counts.max()
        winners = np.flatnonzero(counts == best)
        labels[i] = preds[0, i] if preds[0, i] in winners else winners[0]
    return labels
