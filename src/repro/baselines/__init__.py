"""Comparison baselines: random test selection and adversarial testing."""

from repro.baselines.adversarial import (adversarial_inputs, fgsm,
                                         iterative_fgsm,
                                         regression_adversarial)
from repro.baselines.random_testing import random_inputs

__all__ = ["adversarial_inputs", "fgsm", "iterative_fgsm",
           "regression_adversarial", "random_inputs"]
