"""System-level property tests over randomly built model pairs.

These check the cross-module invariants the whole reproduction rests on,
with Hypothesis choosing architectures and seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import minimize_suite
from repro.core import (BatchDeepXplore, DeepXplore, Hyperparams,
                        LightingConstraint, Unconstrained)
from repro.coverage import NeuronCoverageTracker, coverage_of_inputs
from repro.nn import Dense, Network, Trainer


def _model_pair(seed, hidden=8, classes=3, features=6):
    """Two small, *differently initialized* classifiers on one task."""
    models = []
    rng_data = np.random.default_rng(seed)
    x = rng_data.normal(size=(150, features))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int) + \
        (x[:, 2] > 0.8).astype(int)
    y = np.clip(y, 0, classes - 1)
    for i in range(2):
        rng = np.random.default_rng(seed + 1000 + i)
        net = Network([
            Dense(features, hidden, rng=rng, name="h"),
            Dense(hidden, classes, activation="softmax", rng=rng,
                  name="o"),
        ], (features,), name=f"p{i}")
        Trainer(net, rng=seed + 2000 + i, lr=0.01).fit(
            x, y, epochs=8, batch_size=32)
        models.append(net)
    return models, x


@given(st.integers(0, 50))
@settings(max_examples=8, deadline=None)
def test_recorded_tests_always_disagree(seed):
    models, x = _model_pair(seed)
    engine = DeepXplore(models, Hyperparams(step=0.05, max_iterations=15),
                        Unconstrained(), rng=seed)
    result = engine.run(x[:12])
    for test in result.tests:
        preds = [m.predict(test.x[None]).argmax(axis=1)[0] for m in models]
        assert len(set(preds)) > 1


@given(st.integers(0, 50))
@settings(max_examples=6, deadline=None)
def test_batch_and_sequential_agree_on_pre_disagreements(seed):
    models, x = _model_pair(seed)
    hp = Hyperparams(step=0.05, max_iterations=10)
    seq = DeepXplore(models, hp, Unconstrained(), rng=seed).run(x[:15])
    bat = BatchDeepXplore(models, hp, Unconstrained(), rng=seed).run(x[:15])
    assert seq.seeds_disagreed == bat.seeds_disagreed


@given(st.integers(0, 50), st.floats(0.1, 0.7))
@settings(max_examples=8, deadline=None)
def test_minimized_suite_preserves_coverage(seed, threshold):
    models, x = _model_pair(seed)
    inputs = x[:15]
    chosen, _ = minimize_suite(models, inputs, threshold=threshold)
    subset = inputs[chosen]
    for net in models:
        full = coverage_of_inputs(net, inputs, threshold=threshold)
        mini = coverage_of_inputs(net, subset, threshold=threshold)
        assert mini == pytest.approx(full)


@given(st.integers(0, 50))
@settings(max_examples=6, deadline=None)
def test_coverage_union_equals_merge(seed):
    models, x = _model_pair(seed)
    net = models[0]
    a = NeuronCoverageTracker(net, threshold=0.4)
    b = NeuronCoverageTracker(net, threshold=0.4)
    combined = NeuronCoverageTracker(net, threshold=0.4)
    a.update(x[:7])
    b.update(x[7:14])
    combined.update(x[:14])
    a.merge(b)
    np.testing.assert_array_equal(a.covered, combined.covered)


@given(st.integers(0, 30))
@settings(max_examples=6, deadline=None)
def test_lighting_preserves_relative_pixel_structure(seed):
    """A lighting-constrained test differs from its seed by (almost) a
    constant offset wherever pixels are unclipped — the constraint's
    defining property, end to end through the generator."""
    models, x_feat = _model_pair(seed)
    # Build an image-shaped task instead: reuse the pair on 1x4x4 images.
    rng = np.random.default_rng(seed)
    img_models = []
    from repro.nn import Conv2D, Flatten
    for i in range(2):
        r = np.random.default_rng(seed + 31 + i)
        net = Network([
            Conv2D(1, 2, 3, padding=1, rng=r, name="c"),
            Flatten(name="f"),
            Dense(2 * 16, 2, activation="softmax", rng=r, name="o"),
        ], (1, 4, 4), name=f"img{i}")
        img_models.append(net)
    seeds = rng.random((6, 1, 4, 4)) * 0.6 + 0.2  # away from clip bounds
    engine = DeepXplore(img_models,
                        Hyperparams(step=0.05, max_iterations=10),
                        LightingConstraint(), rng=seed)
    result = engine.run(seeds)
    for test in result.tests:
        if test.iterations == 0:
            continue
        delta = test.x - seeds[test.seed_index]
        interior = (test.x > 1e-9) & (test.x < 1.0 - 1e-9)
        if interior.sum() >= 2:
            values = delta[interior]
            assert values.max() - values.min() < 1e-9
