"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named trainable array plus its accumulated gradient.

    Layers own their parameters; optimizers mutate ``value`` in place based
    on ``grad``.  Gradients accumulate across :meth:`repro.nn.Layer.backward`
    calls until :meth:`zero_grad` is invoked, which lets a training step sum
    gradients over sub-batches if it wants to.
    """

    def __init__(self, value, name):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = str(name)

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self):
        self.grad.fill(0.0)

    def __repr__(self):
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
