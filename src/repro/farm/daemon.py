"""The farm daemon: a long-lived, multi-tenant fuzzing campaign service.

One :class:`FarmDaemon` owns a *farm root* directory::

    root/
      queue.json            # journaled job queue (atomic JSON)
      daemon.json           # live endpoint record (written by the server)
      LOCK                  # daemon liveness lock (pid-checked)
      stores/<name>/        # one corpus store per tenant

and runs a fixed pool of worker *threads* that pull jobs from the
queue.  Threads, not processes, on purpose: each worker's thread-local
model cache (``repro.core.campaign``) then persists across jobs, so a
warm farm stops paying model-payload deserialization per job — and a
job may still fan out its own campaign worker *processes* when its
spec asks for ``workers > 1``.

Crash story (the tentpole contract): every durable structure already
survives ``kill -9`` — the queue journal is atomic, running jobs
re-queue on reload, and corpus stores checkpoint per wave — so a
daemon killed mid-wave restarts, re-claims the interrupted job, and
the resumed store converges bit-identically to an uninterrupted run.
``tests/farm/`` pins exactly that with deterministic fault injection
(:mod:`repro.utils.faults`).

Graceful drain: :meth:`drain` stops workers at the next *wave
boundary*; the interrupted job is released back to queued (not a
failure, no attempt burned) with its progress in the store checkpoint.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core import (Campaign, PAPER_HYPERPARAMS, constraint_for_dataset,
                        make_rule)
from repro.corpus import CorpusStore, FuzzSession, corpus_fingerprint
from repro.coverage import NeuronCoverageTracker
from repro.errors import FarmError, ReproError
from repro.farm.jobs import normalize_spec
from repro.farm.locks import StoreLock, StoreLockedError, lock_holder
from repro.farm.queue import JobQueue
from repro.utils.faults import fault_point

__all__ = ["FarmDaemon"]

#: How long an idle worker sleeps before re-checking the queue; also
#: bounds how late a backoff-gated retry can start.
_POLL_INTERVAL = 0.1


def _default_model_source(dataset_name, scale, seed):
    from repro.datasets import load_dataset
    from repro.models import get_trio
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    return get_trio(dataset_name, scale=scale, seed=seed,
                    dataset=dataset), dataset


class FarmDaemon:
    """Job-queue daemon over a farm root (see module docstring).

    Parameters
    ----------
    root:
        The farm root directory (created if absent).
    workers:
        Worker threads pulling jobs (concurrency across *stores*; jobs
        on one store always serialize).
    capacity:
        Max jobs in flight (queued + running) before submits are
        rejected with a retry-after hint.
    max_attempts, backoff_base:
        Retry policy for crashed jobs (see :class:`JobQueue`).
    scale, seed:
        Zoo scale/seed used when loading model trios for jobs.
    model_source:
        ``f(dataset_name, scale, seed) -> (models, dataset)`` override;
        tests inject session-scoped fixtures here so the daemon never
        trains.
    """

    def __init__(self, root, workers=2, capacity=8, max_attempts=3,
                 backoff_base=1.0, scale="smoke", seed=0,
                 model_source=None):
        if workers < 1:
            raise FarmError(f"workers must be >= 1, got {workers}")
        self.root = os.path.abspath(root)
        self.stores_dir = os.path.join(self.root, "stores")
        os.makedirs(self.stores_dir, exist_ok=True)
        self.workers = int(workers)
        self.scale = scale
        self.seed = int(seed)
        self._model_source = model_source or _default_model_source
        self._trios = {}             # dataset name -> (models, dataset)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._draining = False
        self._threads = []
        self._daemon_lock = StoreLock(self.root,
                                      owner=f"farm-daemon:{os.getpid()}")
        self._daemon_lock.acquire()
        self.queue = JobQueue(os.path.join(self.root, "queue.json"),
                              capacity=capacity, max_attempts=max_attempts,
                              backoff_base=backoff_base)

    # -- store plumbing -----------------------------------------------------
    def store_path(self, name):
        return os.path.join(self.stores_dir, name)

    def _models_for(self, dataset_name):
        """Model trio + dataset for a job, cached for the daemon's life."""
        if dataset_name not in self._trios:
            self._trios[dataset_name] = self._model_source(
                dataset_name, self.scale, self.seed)
        return self._trios[dataset_name]

    # -- public surface (called by the server and by tests) -----------------
    def submit(self, spec):
        """Validate + enqueue a job; returns the :class:`Job`.

        Fails fast — before the job ever reaches a worker — when the
        target store is locked by a live outside process or the queue
        is saturated.
        """
        spec = normalize_spec(spec)
        holder = lock_holder(self.store_path(spec["store"]))
        if holder is not None:
            raise StoreLockedError(self.store_path(spec["store"]), holder)
        with self._wake:
            job = self.queue.submit(spec)
            self._wake.notify_all()
        return job

    def status(self, job_id=None):
        """All jobs (as dicts), or one job's dict; raises on unknown id."""
        with self._lock:
            if job_id is not None:
                return self.queue.get(job_id).to_dict()
            return [job.to_dict() for job in self.queue.jobs()]

    def counts(self):
        with self._lock:
            jobs = self.queue.jobs()
        return {status: sum(1 for j in jobs if j.status == status)
                for status in ("queued", "running", "done", "failed")}

    # -- worker pool --------------------------------------------------------
    def start(self):
        """Spawn the worker threads; returns self."""
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"farm-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def drain(self, timeout=None):
        """Graceful shutdown: finish in-flight waves, release the rest.

        Blocks until every worker thread exits (or ``timeout``).  Jobs
        interrupted at a wave boundary go back to queued with their
        progress checkpointed in their stores.
        """
        with self._wake:
            self._draining = True
            self._wake.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]
        if not self._threads:
            self._daemon_lock.release()
        return not self._threads

    @property
    def draining(self):
        return self._draining

    def _worker_loop(self):
        while True:
            with self._wake:
                job = None
                while not self._draining:
                    job = self.queue.claim()
                    if job is not None:
                        break
                    self._wake.wait(_POLL_INTERVAL)
                if job is None:
                    return      # draining and nothing claimed
            released = False
            try:
                result, finished = self._execute(job)
                with self._wake:
                    if finished:
                        self.queue.mark_done(job.job_id, result)
                    else:
                        # Drained mid-job at a wave boundary.
                        self.queue.release(job.job_id)
                        released = True
                    self._wake.notify_all()
            except BaseException as error:    # noqa: BLE001 — a worker
                # must survive anything a job throws (including
                # injected faults) and convert it into retry state.
                # Library errors are deterministic rejections (bad spec,
                # identity mismatch): retrying them re-fails identically,
                # so they park immediately instead of burning backoff.
                with self._wake:
                    self.queue.mark_failed(
                        job.job_id, error,
                        permanent=isinstance(error, ReproError))
                    self._wake.notify_all()
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise
            if released and self._draining:
                return

    # -- job execution ------------------------------------------------------
    def _execute(self, job):
        """Run one claimed job; returns ``(result_dict, finished)``."""
        fault_point("farm.job.start")
        if job.spec["dataset"] not in PAPER_HYPERPARAMS:
            raise FarmError(
                f"unknown dataset {job.spec['dataset']!r}; want one of "
                f"{sorted(PAPER_HYPERPARAMS)}")
        models, dataset = self._models_for(job.spec["dataset"])
        store_path = self.store_path(job.store)
        with StoreLock(store_path, owner=f"farm-job:{job.job_id}"):
            if job.spec["kind"] == "generate":
                return self._run_generate(job, models, dataset,
                                          store_path), True
            return self._run_fuzz(job, models, dataset, store_path)

    def _run_fuzz(self, job, models, dataset, store_path):
        """Advance the store to the job's target rounds, wave by wave.

        Waves run one at a time so the drain flag is honoured at wave
        boundaries — exactly the granularity the store checkpoints at,
        which is what lets a released job resume losslessly.
        """
        spec = job.spec
        session = FuzzSession(
            store_path, models, PAPER_HYPERPARAMS[spec["dataset"]],
            constraint_for_dataset(dataset, kind=spec["constraint"]),
            task=dataset.task, wave_size=spec["wave_size"],
            workers=spec["workers"], shard_size=spec["shard_size"],
            seed=spec["seed"],
            rule=make_rule(spec["ascent"], beta=spec["beta"],
                           overshoot=spec["overshoot"]),
            dataset=dataset, initial_seed_count=spec["seeds"])
        new_tests = 0
        while session.completed_rounds < spec["rounds"]:
            if self._draining:
                return self._fuzz_result(session, new_tests), False
            fault_point("farm.wave")
            report = session.run(session.completed_rounds + 1)
            new_tests += report.new_tests
            if report.waves_run == 0:
                break               # scheduler has no pending seeds
        return self._fuzz_result(session, new_tests), True

    @staticmethod
    def _fuzz_result(session, new_tests):
        return {"completed_rounds": session.completed_rounds,
                "new_tests": int(new_tests),
                "entries": len(session.store),
                "mean_coverage": float(session.mean_coverage())}

    def _run_generate(self, job, models, dataset, store_path):
        """One deterministic generation pass absorbed into the store.

        Trackers start empty so the pass is a pure function of the job
        spec (see :mod:`repro.farm.jobs`); the commit OR-merges into
        whatever coverage the store already holds.  Re-running after a
        crash therefore reproduces the same entries (content-addressed
        no-ops) and the same merged coverage.
        """
        spec = job.spec
        hp = PAPER_HYPERPARAMS[spec["dataset"]]
        store = CorpusStore(store_path)
        store.bind_config(corpus_fingerprint(models, hp, dataset.task))
        trackers = [NeuronCoverageTracker(m, threshold=hp.threshold)
                    for m in models]
        seeds, _ = dataset.sample_seeds(
            min(spec["seeds"], dataset.x_test.shape[0]),
            np.random.default_rng(spec["seed"] + 1))
        campaign = Campaign(
            models, hp, constraint_for_dataset(dataset,
                                               kind=spec["constraint"]),
            task=dataset.task, trackers=trackers, workers=spec["workers"],
            shard_size=spec["shard_size"], seed=spec["seed"] + 2,
            rule=make_rule(spec["ascent"], beta=spec["beta"],
                           overshoot=spec["overshoot"]))
        result = campaign.run(seeds)
        seed_hashes = [store.add_entry(x, "seed", origin=int(i))[0]
                       for i, x in enumerate(seeds)]
        new_tests = 0
        for test in result.tests:
            _, added = store.add_entry(
                test.x, "test", origin=seed_hashes[test.seed_index],
                iterations=int(test.iterations),
                predictions=np.asarray(test.predictions).tolist(),
                seed_class=test.seed_class)
            new_tests += int(added)
        store.commit(coverage_states=store.merge_coverage(
            {m.name: t.state_dict() for m, t in zip(models, trackers)}),
            fuzz_state=store.fuzz_state())
        return {"seeds_processed": int(result.seeds_processed),
                "differences": int(result.difference_count),
                "new_tests": new_tests,
                "entries": len(store)}
