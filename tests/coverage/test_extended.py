"""Extended coverage criteria (k-multisection, boundary, top-k)."""

import numpy as np
import pytest

from repro.coverage import (BoundaryCoverage, KMultisectionCoverage,
                            NeuronProfile, TopKNeuronCoverage)
from repro.errors import CoverageError
from repro.nn import Dense, Network


@pytest.fixture
def net():
    rng = np.random.default_rng(0)
    return Network([
        Dense(4, 6, rng=rng, name="h"),
        Dense(6, 3, activation="softmax", rng=rng, name="o"),
    ], (4,), name="ext")


@pytest.fixture
def profile(net, rng):
    return NeuronProfile.from_data(net, rng.random((50, 4)))


class TestProfile:
    def test_bounds_ordered(self, profile):
        assert np.all(profile.low <= profile.high)
        assert profile.low.shape == (profile.network.total_neurons,)

    def test_profiled_inputs_inside_bounds(self, net, rng):
        x = rng.random((30, 4))
        profile = NeuronProfile.from_data(net, x)
        acts = net.neuron_activations(x)
        assert np.all(acts >= profile.low[None, :] - 1e-12)
        assert np.all(acts <= profile.high[None, :] + 1e-12)

    def test_validation(self, net):
        with pytest.raises(CoverageError):
            NeuronProfile(net, np.zeros(3), np.ones(3))
        n = net.total_neurons
        with pytest.raises(CoverageError):
            NeuronProfile(net, np.ones(n), np.zeros(n))


class TestKMultisection:
    def test_profiling_data_covers_many_sections(self, net, profile, rng):
        cov = KMultisectionCoverage(profile, k=5)
        gained = cov.update(rng.random((50, 4)))
        assert gained > 0
        assert 0.0 < cov.coverage() <= 1.0

    def test_monotone(self, net, profile, rng):
        cov = KMultisectionCoverage(profile, k=8)
        prev = 0.0
        for _ in range(4):
            cov.update(rng.random((5, 4)))
            value = cov.coverage()
            assert value >= prev
            prev = value

    def test_out_of_range_not_counted(self, net, profile):
        cov = KMultisectionCoverage(profile, k=4)
        # Extreme inputs push activations outside the profiled range for
        # at least some neurons; those must not mark sections.
        cov.update(np.full((1, 4), 100.0))
        # Whatever was covered, coverage stays a valid fraction.
        assert 0.0 <= cov.coverage() <= 1.0

    def test_k_validation(self, profile):
        with pytest.raises(CoverageError):
            KMultisectionCoverage(profile, k=0)


class TestBoundary:
    def test_in_range_inputs_cover_nothing(self, net, rng):
        x = rng.random((40, 4))
        profile = NeuronProfile.from_data(net, x)
        cov = BoundaryCoverage(profile)
        cov.update(x)  # same data that built the profile
        assert cov.coverage() == 0.0

    def test_extreme_inputs_hit_corners(self, net, profile):
        cov = BoundaryCoverage(profile)
        gained = cov.update(np.full((1, 4), 50.0))
        assert gained > 0
        assert cov.coverage() > 0.0

    def test_coverage_bounded(self, net, profile, rng):
        cov = BoundaryCoverage(profile)
        cov.update(rng.normal(scale=100.0, size=(20, 4)))
        assert 0.0 <= cov.coverage() <= 1.0


class TestTopK:
    def test_update_and_bounds(self, net, rng):
        cov = TopKNeuronCoverage(net, k=2)
        gained = cov.update(rng.random((10, 4)))
        assert gained >= 2  # at least k neurons in some layer
        assert 0.0 < cov.coverage() <= 1.0

    def test_k_larger_than_layer_ok(self, net, rng):
        cov = TopKNeuronCoverage(net, k=50)
        cov.update(rng.random((2, 4)))
        assert cov.coverage() == 1.0  # every neuron is in the top-50

    def test_k_validation(self, net):
        with pytest.raises(CoverageError):
            TopKNeuronCoverage(net, k=0)

    def test_higher_k_never_less(self, net, rng):
        x = rng.random((15, 4))
        low = TopKNeuronCoverage(net, k=1)
        high = TopKNeuronCoverage(net, k=3)
        low.update(x)
        high.update(x)
        assert high.coverage() >= low.coverage()
