"""Hyperparameter dataclass."""

import pytest

from repro.core import Hyperparams, PAPER_HYPERPARAMS
from repro.errors import ConfigError


def test_defaults_valid():
    hp = Hyperparams()
    assert hp.lambda1 == 1.0
    assert hp.step > 0


def test_with_creates_modified_copy():
    hp = Hyperparams()
    hp2 = hp.with_(lambda2=3.0)
    assert hp2.lambda2 == 3.0
    assert hp.lambda2 == 0.1  # original untouched
    assert hp2.step == hp.step


def test_validation():
    with pytest.raises(ConfigError):
        Hyperparams(lambda1=-1.0)
    with pytest.raises(ConfigError):
        Hyperparams(step=0.0)
    with pytest.raises(ConfigError):
        Hyperparams(max_iterations=0)


def test_paper_hyperparams_cover_all_datasets():
    assert set(PAPER_HYPERPARAMS) == {"mnist", "imagenet", "driving", "pdf",
                                      "drebin"}
    # Table 2's per-dataset settings.
    assert PAPER_HYPERPARAMS["pdf"].lambda1 == 2.0
    assert PAPER_HYPERPARAMS["drebin"].lambda2 == 0.5


def test_frozen():
    hp = Hyperparams()
    with pytest.raises(Exception):
        hp.lambda1 = 5.0
