"""FarmDaemon in-process: multi-tenant execution, drain, retries,
backpressure, and the warm-worker model cache."""

import json
import os

import pytest

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.corpus import CorpusStore, FuzzSession
from repro.farm import FarmDaemon, QueueSaturatedError, StoreLockedError
from repro.farm.locks import LOCK_NAME
from repro.nn.instrumentation import PayloadCounter
from repro.utils.faults import inject

SPEC = {"store": "tenant-a", "kind": "fuzz", "rounds": 2, "seeds": 12,
        "wave_size": 6, "shard_size": 4, "seed": 7}


def make_daemon(tmp_path, model_source, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backoff_base", 0.05)
    return FarmDaemon(str(tmp_path / "root"), model_source=model_source,
                      **kwargs)


def reference_store(path, models, dataset, spec=SPEC):
    """What the daemon's fuzz job should produce, run directly."""
    FuzzSession(str(path), models, PAPER_HYPERPARAMS["mnist"],
                constraint_for_dataset(dataset, kind="default"),
                task=dataset.task, wave_size=spec["wave_size"], workers=1,
                shard_size=spec["shard_size"], seed=spec["seed"],
                dataset=dataset,
                initial_seed_count=spec["seeds"]).run(spec["rounds"])
    return str(path)


def finished(daemon, job_id):
    return lambda: daemon.status(job_id)["status"] in ("done", "failed")


def test_two_tenants_run_concurrently_and_match_references(
        tmp_path, model_source, mnist_trio, mnist_smoke, wait_for,
        assert_stores_identical):
    """The multi-tenant contract: two stores fuzz side by side, and each
    farm-built corpus is bit-identical to a direct FuzzSession run."""
    daemon = make_daemon(tmp_path, model_source).start()
    a = daemon.submit(dict(SPEC, store="tenant-a"))
    b = daemon.submit(dict(SPEC, store="tenant-b", seed=11))
    assert wait_for(finished(daemon, a.job_id))
    assert wait_for(finished(daemon, b.job_id))
    assert daemon.status(a.job_id)["status"] == "done"
    assert daemon.status(b.job_id)["status"] == "done"
    assert daemon.drain(timeout=30)

    assert_stores_identical(
        daemon.store_path("tenant-a"),
        reference_store(tmp_path / "ref_a", mnist_trio, mnist_smoke))
    assert_stores_identical(
        daemon.store_path("tenant-b"),
        reference_store(tmp_path / "ref_b", mnist_trio, mnist_smoke,
                        dict(SPEC, seed=11)))


def test_generate_job_absorbs_into_store(tmp_path, model_source, wait_for):
    daemon = make_daemon(tmp_path, model_source).start()
    job = daemon.submit({"store": "gen", "kind": "generate", "seeds": 8,
                         "shard_size": 4, "seed": 3})
    assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert record["status"] == "done"
    assert record["result"]["seeds_processed"] == 8
    store = CorpusStore(daemon.store_path("gen"))
    assert len(store.entries(kind="seed")) == 8
    assert len(store.entries(kind="test")) == record["result"]["new_tests"]
    assert store.coverage_states()          # coverage committed
    assert daemon.drain(timeout=30)


def test_graceful_drain_releases_at_wave_boundary_and_resumes(
        tmp_path, model_source, mnist_trio, mnist_smoke, wait_for,
        assert_stores_identical):
    """Drain mid-job: the wave in flight finishes, the job returns to
    queued with no attempt burned, and a later daemon completes it to a
    corpus bit-identical to an uninterrupted run."""
    spec = dict(SPEC, rounds=8)
    daemon = make_daemon(tmp_path, model_source, workers=1).start()
    job = daemon.submit(spec)
    store_path = daemon.store_path(spec["store"])

    def some_progress():
        state = CorpusStore(store_path).fuzz_state()
        return state is not None and state["completed_rounds"] >= 1
    assert wait_for(some_progress)
    assert daemon.drain(timeout=60)

    record = daemon.status(job.job_id)
    partial = CorpusStore(store_path).fuzz_state()["completed_rounds"]
    if record["status"] == "done":
        pytest.skip("job finished before drain landed; nothing released")
    assert record["status"] == "queued"
    assert record["attempts"] == 0
    assert 1 <= partial < spec["rounds"]

    resumed = make_daemon(tmp_path, model_source, workers=1).start()
    assert wait_for(finished(resumed, job.job_id))
    assert resumed.status(job.job_id)["status"] == "done"
    assert resumed.drain(timeout=30)
    assert_stores_identical(
        store_path,
        reference_store(tmp_path / "ref", mnist_trio, mnist_smoke, spec))


def test_crashed_job_retries_with_backoff_then_succeeds(
        tmp_path, model_source, wait_for):
    """A worker crash (injected, non-library error) costs one attempt;
    the retry runs after the backoff gate and completes the job."""
    daemon = make_daemon(tmp_path, model_source).start()
    with inject("farm.job.start", countdown=1, action="raise") as arm:
        job = daemon.submit(dict(SPEC, rounds=1))
        assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert arm["remaining"] == 0            # the fault really fired
    assert record["status"] == "done"
    assert record["attempts"] == 2
    assert record["error"] is None          # success wipes the old error
    assert daemon.drain(timeout=30)


def test_repeated_crashes_park_job_as_failed(tmp_path, model_source,
                                             wait_for):
    daemon = make_daemon(tmp_path, model_source, max_attempts=2).start()
    # Two one-shot arms on the same point: the first fires on attempt 1,
    # the (by then exhausted) first is skipped and the second fires on
    # attempt 2.
    with inject("farm.job.start", countdown=1, action="raise"), \
            inject("farm.job.start", countdown=1, action="raise"):
        job = daemon.submit(dict(SPEC, rounds=1))
        assert wait_for(finished(daemon, job.job_id))
        record = daemon.status(job.job_id)
    assert record["status"] == "failed"
    assert record["attempts"] == 2
    assert "injected fault" in record["error"]
    assert daemon.drain(timeout=30)


def test_library_errors_fail_permanently_without_retries(
        tmp_path, model_source, wait_for):
    daemon = make_daemon(tmp_path, model_source).start()
    job = daemon.submit(dict(SPEC, dataset="no-such-dataset"))
    assert wait_for(finished(daemon, job.job_id))
    record = daemon.status(job.job_id)
    assert record["status"] == "failed"
    assert record["attempts"] == 1          # no pointless retries
    assert "no-such-dataset" in record["error"]
    assert daemon.drain(timeout=30)


def test_submit_rejects_when_saturated(tmp_path, model_source):
    """Backpressure before the worker pool starts: capacity counts the
    backlog, so rejection is deterministic."""
    daemon = make_daemon(tmp_path, model_source, capacity=2)   # no start()
    daemon.submit(dict(SPEC, store="a"))
    daemon.submit(dict(SPEC, store="b"))
    with pytest.raises(QueueSaturatedError) as excinfo:
        daemon.submit(dict(SPEC, store="c"))
    assert excinfo.value.retry_after > 0
    daemon.drain(timeout=5)


def test_submit_rejects_store_locked_by_live_outsider(
        tmp_path, model_source):
    daemon = make_daemon(tmp_path, model_source)               # no start()
    store_path = daemon.store_path("captive")
    os.makedirs(store_path)
    with open(os.path.join(store_path, LOCK_NAME), "w",
              encoding="utf-8") as handle:
        json.dump({"pid": 1, "owner": "init"}, handle)
    with pytest.raises(StoreLockedError):
        daemon.submit(dict(SPEC, store="captive"))
    daemon.drain(timeout=5)


def test_warm_worker_deserializes_models_once_across_jobs(
        tmp_path, model_source, mnist_trio, wait_for):
    """The farm's warm path: one worker thread, two jobs, one model
    rebuild per model — the thread-local cache spans jobs."""
    daemon = make_daemon(tmp_path, model_source, workers=1)
    with PayloadCounter() as counter:
        daemon.start()
        a = daemon.submit(dict(SPEC, rounds=1))
        b = daemon.submit(dict(SPEC, rounds=2))   # same store: runs after
        assert wait_for(finished(daemon, a.job_id))
        assert wait_for(finished(daemon, b.job_id))
        assert daemon.drain(timeout=30)
    assert daemon.status(a.job_id)["status"] == "done"
    assert daemon.status(b.job_id)["status"] == "done"
    assert counter.total() == len(mnist_trio)
