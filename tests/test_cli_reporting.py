"""CLI and markdown reporting."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.common import ExperimentResult
from repro.reporting import result_to_markdown, write_report
from repro.utils.ascii_art import ascii_image, side_by_side
from repro.errors import ShapeError


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["datasets"], ["zoo"], ["generate", "mnist"],
                     ["experiment", "table7"], ["report"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "datasets"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_engine_choices(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "mnist", "--engine",
                                  "campaign", "--workers", "4",
                                  "--shard-size", "8"])
        assert args.engine == "campaign"
        assert args.workers == 4
        assert args.shard_size == 8
        with pytest.raises(SystemExit):
            parser.parse_args(["generate", "mnist", "--engine", "warp"])


class TestCliCommands:
    def test_datasets(self, capsys):
        assert main(["--scale", "smoke", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out and "drebin" in out

    def test_generate(self, capsys):
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "8"]) == 0
        out = capsys.readouterr().out
        assert "differences found" in out

    @pytest.mark.parametrize("engine", ["batch", "campaign"])
    def test_generate_engines(self, capsys, engine):
        assert main(["--scale", "smoke", "generate", "mnist",
                     "--seeds", "8", "--engine", engine,
                     "--workers", "2", "--shard-size", "4"]) == 0
        out = capsys.readouterr().out
        assert f"engine               : {engine}" in out
        assert "differences found" in out

    def test_experiment(self, capsys):
        assert main(["--scale", "smoke", "experiment", "table7"]) == 0
        out = capsys.readouterr().out
        assert "Same class" in out

    def test_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["--scale", "smoke", "report", "--output",
                     str(out_file), "--only", "table7"]) == 0
        text = out_file.read_text()
        assert "# EXPERIMENTS" in text
        assert "table7" in text


class TestReporting:
    def test_result_to_markdown(self):
        result = ExperimentResult(
            "tX", "demo", ["a", "b"], rows=[[1, 2.5]],
            series={"s": ([0, 1], [0.5, 0.7])},
            notes=["be careful"], paper_reference="paper says 42")
        md = result_to_markdown(result)
        assert "## tX: demo" in md
        assert "| a | b |" in md
        assert "paper says 42" in md
        assert "> be careful" in md
        assert "```" in md and "o = s" in md  # ascii plot of the series

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", scale="smoke",
                            experiment_ids=["table6"])
        text = open(path).read()
        assert "table6" in text
        assert "100%" in text


class TestAsciiArt:
    def test_grayscale(self):
        img = np.zeros((1, 2, 3))
        img[0, 0, :] = 1.0
        art = ascii_image(img)
        lines = art.splitlines()
        assert lines[0] == "@@@"
        assert lines[1] == "   "

    def test_color_luminance(self):
        img = np.ones((3, 2, 2))
        assert ascii_image(img).splitlines()[0] == "@@"

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            ascii_image(np.zeros(5))

    def test_side_by_side(self):
        a = np.zeros((1, 2, 2))
        b = np.ones((1, 2, 2))
        text = side_by_side(a, b, labels=("L", "R"))
        lines = text.splitlines()
        assert lines[0].startswith("L")
        assert "@@" in lines[1]

    def test_side_by_side_height_mismatch(self):
        with pytest.raises(ShapeError):
            side_by_side(np.zeros((1, 2, 2)), np.zeros((1, 3, 2)))

    def test_downsampling(self):
        img = np.random.default_rng(0).random((1, 28, 28))
        art = ascii_image(img, width=14)
        assert max(len(l) for l in art.splitlines()) <= 14
