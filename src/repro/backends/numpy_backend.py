"""Reference backend: the repo's own NumPy networks.

:class:`NumpyBackend` is pure delegation — the in-tree
:class:`~repro.nn.network.Network` already *is* the contract
:class:`~repro.backends.base.ComputeBackend` spells out, so the adapter
adds a dtype conversion hook and nothing else.  Engines unwrap it back
to the raw network (:func:`repro.backends.unwrap_network`) because the
tape, the coverage trackers, and the corpus fingerprints all key on the
network object itself.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ComputeBackend
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = ["NumpyBackend", "as_network"]


def as_network(model, dtype=None):
    """Normalize a model argument into a :class:`Network`.

    Accepts a live network or a payload dict
    (:func:`repro.nn.config.network_to_payload`).  With ``dtype`` set,
    a network whose parameters are stored at another precision is
    rebuilt at the requested one via the payload round-trip — the
    original object is never mutated, so trackers bound to it stay
    valid.
    """
    from repro.nn.config import network_from_payload, network_to_payload

    if isinstance(model, dict):
        return network_from_payload(model, dtype=dtype)
    if not isinstance(model, Network):
        raise ConfigError(
            f"cannot adapt {type(model).__name__} to the numpy backend; "
            "expected a Network or a payload dict")
    if dtype is not None and np.dtype(dtype) != model.dtype:
        return network_from_payload(network_to_payload(model), dtype=dtype)
    return model


class NumpyBackend(ComputeBackend):
    """The in-tree differentiable runtime behind the backend seam."""

    kind = "numpy"

    def __init__(self, model, dtype=None):
        self.network = as_network(model, dtype=dtype)

    @property
    def name(self):
        return self.network.name

    @property
    def dtype(self):
        return self.network.dtype

    @property
    def output_shape(self):
        return self.network.output_shape

    def forward(self, x, training=False, workspace=None):
        return self.network.run(x, training=training, workspace=workspace)

    def predict(self, x, batch_size=256):
        return self.network.predict(x, batch_size=batch_size)

    # Neuron-level surface used by coverage trackers and the coverage
    # objective; delegation keeps backend-wrapped models usable wherever
    # a network is expected.
    @property
    def total_neurons(self):
        return self.network.total_neurons

    @property
    def neuron_layers(self):
        return self.network.neuron_layers

    @property
    def layers(self):
        return self.network.layers

    def neuron_activations(self, x, batch_size=256):
        return self.network.neuron_activations(x, batch_size=batch_size)
