"""Benchmark: Table 4 — top in(de)cremented features for PDF evasions."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_pdf_samples


def test_table4_pdf_samples(benchmark):
    result = run_once(benchmark, run_pdf_samples, scale=SCALE, seed=SEED)
    for row in result.rows:
        assert float(row[2]) != float(row[3])
