"""Table 5: neuron coverage increases the diversity of generated inputs.

Runs the MNIST trio with lambda2 = 0 (no coverage objective) and
lambda2 = 1, comparing the average L1 distance of generated inputs from
their seeds, the achieved neuron coverage (t = 0.25), and the number of
differences found.  The paper's headline: coverage-guided generation is
*more diverse* even though it finds somewhat fewer raw differences.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import average_l1_diversity
from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.coverage import NeuronCoverageTracker
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import get_trio
from repro.utils.rng import as_rng

__all__ = ["run_coverage_diversity"]


def _one_setting(models, dataset, seeds, lambda2, rng):
    hp = PAPER_HYPERPARAMS["mnist"].with_(lambda2=lambda2)
    trackers = [NeuronCoverageTracker(m, threshold=0.25) for m in models]
    engine = make_engine("sequential", models, hp,
                         constraint_for_dataset(dataset), "classification",
                         rng, trackers=trackers)
    run = engine.run(seeds)
    ascent_tests = [t for t in run.tests if t.iterations > 0]
    diversity = average_l1_diversity(ascent_tests, seeds)
    coverage = engine.mean_coverage()
    return diversity, coverage, len(ascent_tests)


def run_coverage_diversity(scale="small", seed=0, repetitions=3,
                           use_cache=True):
    """Run the Table 5 comparison over ``repetitions`` seed draws."""
    dataset = load_dataset("mnist", scale=scale, seed=seed)
    models = get_trio("mnist", scale=scale, seed=seed, dataset=dataset,
                      use_cache=use_cache)
    result = ExperimentResult(
        experiment_id="table5",
        title="Diversity (avg L1) with and without neuron coverage",
        headers=["Exp #", "diversity (l2=0)", "NC (l2=0)", "#diffs (l2=0)",
                 "diversity (l2=1)", "NC (l2=1)", "#diffs (l2=1)"],
        paper_reference=("lambda2=1 raises avg diversity (e.g. 237.9 -> "
                         "283.3) and NC by 1-2 points while finding "
                         "slightly fewer raw differences"),
    )
    n_seeds = seeds_for_scale(scale, maximum=dataset.x_test.shape[0])
    for rep in range(1, repetitions + 1):
        rng = as_rng(seed * 1000 + rep)
        seeds_x, _ = dataset.sample_seeds(n_seeds, rng)
        div0, cov0, diffs0 = _one_setting(models, dataset, seeds_x, 0.0,
                                          as_rng(rep))
        div1, cov1, diffs1 = _one_setting(models, dataset, seeds_x, 1.0,
                                          as_rng(rep))
        result.rows.append([rep, round(div0, 1), f"{cov0:.1%}", diffs0,
                            round(div1, 1), f"{cov1:.1%}", diffs1])
    result.notes.append("diversity = mean L1 distance of generated inputs "
                        "from their seeds; NC threshold t = 0.25")
    return result
