"""Shard ledger: keys, digests, outcome codec, CAS claims, stealing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import shard_corpus
from repro.core.engine import GeneratedTest, GenerationResult
from repro.corpus.scheduler import SeedScheduler
from repro.corpus.store import input_hash
from repro.dist import (LedgerShardRunner, ShardLedger, decode_outcome,
                        encode_outcome, round_key, shard_digest,
                        shard_hashes, shard_id)
from repro.errors import FarmError


# -- identity helpers ---------------------------------------------------------
def test_round_key_int_and_seedseq():
    assert round_key(7) == "seed7"
    root = np.random.SeedSequence(42)
    child = root.spawn(3)[2]
    key = round_key(child)
    assert key.startswith("r2-")
    # Same identity on any host; different rounds never collide.
    assert key == round_key(np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(2,)))
    assert key != round_key(root.spawn(1)[0])
    assert round_key(root) != round_key(np.random.SeedSequence(43))


def test_shard_id_sorts():
    ids = [shard_id(i) for i in (0, 1, 10, 100)]
    assert ids == sorted(ids)


def test_shard_hashes_are_entry_hashes():
    rng = np.random.default_rng(8)
    seeds = rng.normal(size=(5, 4, 4))
    shards = shard_corpus(seeds, shard_size=2, seed=0)
    for shard in shards:
        assert shard_hashes(shard) == [input_hash(x) for x in shard.seeds]


def test_shard_digest_matches_scheduler_plan():
    """The cross-layer determinism law: the digest a host computes from
    its shard's seed arrays equals the digest the scheduler computes
    from the corresponding entry hashes — because entry hashes ARE
    ``input_hash`` of the seeds."""
    rng = np.random.default_rng(5)
    seeds = rng.normal(size=(7, 4, 4))
    shards = shard_corpus(seeds, shard_size=3, seed=0)
    wave = [input_hash(x) for x in seeds]
    plan = SeedScheduler.shard_plan(wave, 3)
    assert len(plan) == len(shards)
    for unit, shard in zip(plan, shards):
        assert unit["shard_index"] == shard.shard_index
        assert unit["digest"] == shard_digest(shard)


# -- outcome codec ------------------------------------------------------------
def _fake_outcome(shard_index=0, n_tests=2):
    rng = np.random.default_rng(shard_index + 1)
    tests = [GeneratedTest(x=rng.normal(size=(4, 4)),
                           seed_index=3 * shard_index + i,
                           iterations=i + 1,
                           predictions=np.array([i, i, i + 1]),
                           seed_class=int(i),
                           elapsed=0.25 * i)
             for i in range(n_tests)]
    result = GenerationResult(tests=tests, seeds_processed=3,
                              seeds_disagreed=1, seeds_exhausted=0,
                              elapsed=1.5)
    covered = np.zeros(8, dtype=bool)
    covered[shard_index % 8] = True
    coverage = [{"network": "SYN_A", "total_neurons": 8,
                 "threshold": 0.25, "scaled": True,
                 "tracked": np.ones(8, dtype=bool), "covered": covered}]
    return {"shard_index": shard_index, "result": result,
            "coverage": coverage}


def test_outcome_codec_roundtrip():
    outcome = _fake_outcome(shard_index=2, n_tests=3)
    got = decode_outcome(encode_outcome(outcome))
    assert got["shard_index"] == 2
    a, b = outcome["result"], got["result"]
    assert (a.seeds_processed, a.seeds_disagreed, a.seeds_exhausted) == \
        (b.seeds_processed, b.seeds_disagreed, b.seeds_exhausted)
    assert len(b.tests) == 3
    for ta, tb in zip(a.tests, b.tests):
        np.testing.assert_array_equal(ta.x, tb.x)
        assert tb.x.dtype == ta.x.dtype
        assert (ta.seed_index, ta.iterations, ta.seed_class) == \
            (tb.seed_index, tb.iterations, tb.seed_class)
        np.testing.assert_array_equal(ta.predictions, tb.predictions)
    for ca, cb in zip(outcome["coverage"], got["coverage"]):
        np.testing.assert_array_equal(ca["covered"], cb["covered"])
        assert cb["network"] == ca["network"]


def test_outcome_codec_empty_tests():
    got = decode_outcome(encode_outcome(_fake_outcome(n_tests=0)))
    assert got["result"].tests == []


# -- the ledger ---------------------------------------------------------------
def _units(n):
    return [{"shard_id": shard_id(i), "digest": f"d{i}"} for i in range(n)]


def test_ledger_lifecycle(tmp_path):
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11)
    ledger.ensure(_units(2))
    assert ledger.counts() == {"pending": 2, "claimed": 0, "done": 0}
    sid = ledger.claim()
    assert sid == shard_id(0)
    ledger.write_result(sid, _fake_outcome(0))
    ledger.mark_done(sid)
    assert not ledger.all_done()
    sid2 = ledger.claim()
    assert sid2 == shard_id(1)
    ledger.write_result(sid2, _fake_outcome(1))
    ledger.mark_done(sid2)
    assert ledger.all_done()
    assert ledger.claim() is None
    assert sorted(ledger.load_results()) == [shard_id(0), shard_id(1)]


def test_ledger_ensure_is_idempotent_and_digest_checked(tmp_path):
    a = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11)
    b = ShardLedger(tmp_path / "c", "seed0", host="h2", pid=22)
    a.ensure(_units(3))
    b.ensure(_units(3))       # same plan: fine
    assert b.counts()["pending"] == 3
    with pytest.raises(FarmError, match="diverged"):
        b.ensure([{"shard_id": shard_id(0), "digest": "other"}])


def test_two_hosts_split_claims(tmp_path):
    # Live pid on both: claims must stay unstolen while healthy.
    a = ShardLedger(tmp_path / "c", "seed0", host="h1")
    b = ShardLedger(tmp_path / "c", "seed0", host="h2")
    a.ensure(_units(2))
    sid_a, sid_b = a.claim(), b.claim()
    assert {sid_a, sid_b} == {shard_id(0), shard_id(1)}
    assert a.claim() is None        # healthy claims are not stolen
    assert b.claim() is None


def test_fresh_claim_not_stolen_but_lease_expiry_is(tmp_path):
    now = [1000.0]
    a = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11,
                    lease=5.0, clock=lambda: now[0])
    b = ShardLedger(tmp_path / "c", "seed0", host="h2", pid=22,
                    lease=5.0, clock=lambda: now[0])
    a.ensure(_units(1))
    assert a.claim() == shard_id(0)
    assert b.claim() is None            # within lease: not stealable
    now[0] += 6.0                       # host h1 went silent
    assert b.claim() == shard_id(0)     # stolen
    b.write_result(shard_id(0), _fake_outcome(0))
    b.mark_done(shard_id(0))
    assert b.all_done()


def test_dead_local_pid_stolen_immediately(tmp_path):
    # pid 2**22+5 is far above any live pid in the test container; the
    # claim looks like the aftermath of kill -9 on this same host.
    dead = ShardLedger(tmp_path / "c", "seed0", host="h1",
                       pid=(1 << 22) + 5, lease=10_000.0)
    heir = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=None,
                       lease=10_000.0)
    dead.ensure(_units(1))
    assert dead.claim() == shard_id(0)
    assert heir.claim() == shard_id(0)  # no lease wait on a dead pid


def test_mark_done_requires_result_file(tmp_path):
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11)
    ledger.ensure(_units(1))
    ledger.claim()
    with pytest.raises(FarmError, match="no result file"):
        ledger.mark_done(shard_id(0))


def test_done_is_sticky(tmp_path):
    """A late host re-running a stolen shard re-marks done harmlessly."""
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11)
    ledger.ensure(_units(1))
    ledger.claim()
    ledger.write_result(shard_id(0), _fake_outcome(0))
    ledger.mark_done(shard_id(0))
    ledger.write_result(shard_id(0), _fake_outcome(0))  # double execution
    ledger.mark_done(shard_id(0))
    assert ledger.counts() == {"pending": 0, "claimed": 0, "done": 1}


def test_stale_lock_file_is_broken(tmp_path):
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1", pid=11,
                         lease=0.05)
    ledger.ensure(_units(1))
    # A crashed peer left its CAS lock behind (torn write, even).
    with open(ledger._lock_path, "w", encoding="utf-8") as handle:
        handle.write("{torn")
    assert ledger.claim() == shard_id(0)


# -- locality-aware claiming --------------------------------------------------
def _units_with_hashes(hashes_per_shard):
    return [{"shard_id": shard_id(i), "digest": f"d{i}",
             "hashes": list(hashes)}
            for i, hashes in enumerate(hashes_per_shard)]


def test_claim_prefers_shards_this_host_holds(tmp_path):
    """Affinity law: claims rank shards by how many of their seed
    hashes the claimer's store holds, descending."""
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1")
    ledger.ensure(_units_with_hashes([["a", "b"], ["c", "d"],
                                      ["e", "f"]]))
    have = {"e", "f", "c"}      # all of shard 2, half of shard 1
    assert ledger.claim(have=have) == shard_id(2)
    assert ledger.claim(have=have) == shard_id(1)
    assert ledger.claim(have=have) == shard_id(0)
    assert ledger.claim(have=have) is None


def test_claim_affinity_ties_break_by_shard_id(tmp_path):
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1")
    ledger.ensure(_units_with_hashes([["a"], ["b"], ["c"]]))
    # Equal scores everywhere (1 each): plain sorted order, i.e. the
    # exact pre-affinity behavior.
    assert ledger.claim(have={"a", "b", "c"}) == shard_id(0)
    # And an empty/absent hint is byte-for-byte the old claim.
    assert ledger.claim(have=frozenset()) == shard_id(1)
    assert ledger.claim() == shard_id(2)


def test_claim_tolerates_units_without_hashes(tmp_path):
    """Ledgers written by pre-affinity hosts (no hashes field) still
    claim fine — every shard scores zero."""
    ledger = ShardLedger(tmp_path / "c", "seed0", host="h1")
    ledger.ensure(_units(2))
    assert ledger.claim(have={"anything"}) == shard_id(0)


def test_ensure_backfills_hashes_for_later_claimers(tmp_path):
    """A pre-affinity host registered the round; an affinity-aware host
    re-ensuring the same plan (same digests) adopts its hashes."""
    old = ShardLedger(tmp_path / "c", "seed0", host="h1")
    new = ShardLedger(tmp_path / "c", "seed0", host="h2")
    old.ensure(_units(2))
    new.ensure(_units_with_hashes([["a"], ["b"]]))
    assert new.claim(have={"b"}) == shard_id(1)


def test_runner_affinity_resolves_store_paths(tmp_path, make_store):
    """LedgerShardRunner's ``have`` accepts a store path, re-read
    tolerantly: a store that does not exist yet just means no
    affinity."""
    runner = LedgerShardRunner(tmp_path / "c",
                               have=tmp_path / "nonexistent")
    assert runner._affinity() == frozenset()
    store = make_store(tmp_path / "store", 3)
    runner = LedgerShardRunner(tmp_path / "c", have=tmp_path / "store")
    assert runner._affinity() == {e["hash"] for e in store.entries()}
    # Sets and callables pass through too.
    assert LedgerShardRunner(tmp_path / "c",
                             have={"x"})._affinity() == {"x"}
    assert LedgerShardRunner(
        tmp_path / "c", have=lambda: {"y"})._affinity() == {"y"}


# -- the permutation/partition property --------------------------------------
@settings(max_examples=12, deadline=None)
@given(st.data())
def test_any_claim_schedule_merges_identically(tmp_path_factory, data):
    """Satellite (c): any permutation of host claims over any partition
    of the shards yields byte-identical ledger results vs a reference.

    Execution is a pure function of the shard (pinned by the fake
    outcomes keyed on shard index), so the property isolates exactly
    what the ledger adds: claim order, host assignment, stealing, and
    double execution must never change the merged result set.
    """
    n_shards = data.draw(st.integers(min_value=1, max_value=5),
                         label="n_shards")
    n_hosts = data.draw(st.integers(min_value=1, max_value=3),
                        label="n_hosts")
    schedule = data.draw(
        st.permutations([(s, s % n_hosts) for s in range(n_shards)]),
        label="schedule")
    # Each host holds an arbitrary subset of the seeds, so claims are
    # affinity-ordered — the property must hold over those schedules
    # too, because affinity only permutes placement.
    haves = data.draw(
        st.lists(st.sets(st.sampled_from(
            [f"x{s}" for s in range(n_shards)])),
            min_size=n_hosts, max_size=n_hosts),
        label="haves")
    root = tmp_path_factory.mktemp("ledger")

    reference = {shard_id(s): encode_outcome(_fake_outcome(s))
                 for s in range(n_shards)}

    ledgers = [ShardLedger(root / "c", "seed0", host=f"h{h}",
                           pid=100 + h, lease=10_000.0)
               for h in range(n_hosts)]
    for ledger in ledgers:
        ledger.ensure([{"shard_id": shard_id(s), "digest": f"d{s}",
                        "hashes": [f"x{s}"]}
                       for s in range(n_shards)])
    # Replay the drawn schedule: each (shard, host) step has that host
    # claim whatever the ledger offers it and execute it.  The ledger,
    # not the schedule, decides the assignment — the property is that
    # the decision cannot matter.
    for _shard, host in schedule:
        ledger = ledgers[host]
        sid = ledger.claim(have=haves[host])
        if sid is None:
            continue
        index = int(sid[1:])
        ledger.write_result(sid, _fake_outcome(index))
        ledger.mark_done(sid)
    for ledger in ledgers:
        assert ledger.all_done()
        merged = ledger.load_results()
        assert sorted(merged) == sorted(reference)
        for sid, outcome in merged.items():
            want = decode_outcome(reference[sid])
            assert outcome["shard_index"] == want["shard_index"]
            for ta, tb in zip(want["result"].tests,
                              outcome["result"].tests):
                np.testing.assert_array_equal(ta.x, tb.x)
            for ca, cb in zip(want["coverage"], outcome["coverage"]):
                np.testing.assert_array_equal(ca["covered"],
                                              cb["covered"])
