#!/usr/bin/env python
"""Fixing models with their own failures: augmented retraining (§7.3).

Generates difference-inducing inputs for the MNIST trio, labels them
automatically by majority vote (no human labelling), retrains LeNet-1 on
the augmented set, and compares the accuracy trajectory against
augmenting with random test samples.

Run:  python examples/retraining_improvement.py
"""

import numpy as np

from repro import (DeepXplore, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_model, get_trio, load_dataset, majority_label)
from repro.analysis import retrain_with_augmentation
from repro.baselines import random_inputs

SCALE = "smoke"
N_AUGMENT = 25
EPOCHS = 3


def main():
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)

    print("Generating difference-inducing inputs for augmentation...")
    rng = np.random.default_rng(31)
    seeds, _ = dataset.sample_seeds(60, rng)
    engine = DeepXplore(models, PAPER_HYPERPARAMS["mnist"],
                        constraint_for_dataset(dataset), rng=37)
    run = engine.run(seeds, max_tests=N_AUGMENT)
    tests = run.test_inputs()
    if tests.shape[0] == 0:
        print("no tests generated; try a larger scale")
        return
    votes = majority_label(models, tests)
    print(f"  {tests.shape[0]} inputs, labelled by majority vote")

    curves = {}
    for source in ("deepxplore", "random"):
        # Fresh copy of the pre-trained model for a fair comparison.
        network = get_model("MNI_C1", scale=SCALE, seed=0, dataset=dataset)
        if source == "deepxplore":
            extra_x, extra_y = tests, votes
        else:
            extra_x, extra_y = random_inputs(dataset, tests.shape[0],
                                             rng=41)
        curves[source] = retrain_with_augmentation(
            network, dataset, extra_x, extra_y, epochs=EPOCHS, rng=43,
            source=source)

    print(f"\nLeNet-1 test accuracy over {EPOCHS} retraining epochs:")
    header = "epoch:      " + "  ".join(f"{e:>7}" for e in range(EPOCHS + 1))
    print(header)
    for source, curve in curves.items():
        cells = "  ".join(f"{a:>7.2%}" for a in curve.accuracies)
        print(f"{source:<11} {cells}   (gain {curve.improvement:+.2%})")


if __name__ == "__main__":
    main()
