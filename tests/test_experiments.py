"""Experiment harness: every runner produces a well-formed result at
smoke scale, and fast experiments reproduce the paper's qualitative
claims."""

import numpy as np
import pytest

from repro.experiments import (EXPERIMENTS, ExperimentResult,
                               run_class_overlap, run_code_vs_neuron,
                               run_coverage_comparison, run_difference_counts,
                               run_drebin_samples, run_gallery,
                               run_model_zoo, run_pdf_samples,
                               seeds_for_scale)
from repro.experiments.difference_counts import attribute_test
from repro.core.generator import GeneratedTest


def test_experiment_registry_complete():
    expected = {f"table{i}" for i in range(1, 13)}
    expected |= {"figure8", "figure9", "figure10", "pollution"}
    assert set(EXPERIMENTS) == expected


def test_seeds_for_scale():
    assert seeds_for_scale("smoke") < seeds_for_scale("full")
    assert seeds_for_scale("full", maximum=10) == 10


def test_result_render():
    result = ExperimentResult("t", "title", ["a"], rows=[[1]],
                              series={"s": ([0], [1.0])},
                              notes=["hello"])
    text = result.render()
    assert "title" in text and "hello" in text and "series s" in text


class TestAttribution:
    def _t(self, preds):
        return GeneratedTest(x=np.zeros(1), seed_index=0, iterations=1,
                             predictions=np.asarray(preds), seed_class=0,
                             elapsed=0.0)

    def test_majority_dissenter(self):
        assert attribute_test(self._t([3, 3, 7]), 3) == 2
        assert attribute_test(self._t([5, 3, 3]), 3) == 0

    def test_total_disagreement_attributes_first(self):
        assert attribute_test(self._t([1, 2, 3]), 3) == 0

    def test_regression_outlier(self):
        assert attribute_test(self._t([0.1, 0.12, -0.8]), 3) == 2


def test_table6_code_vs_neuron_claim():
    result = run_code_vs_neuron(scale="smoke", seed=0,
                                datasets=["mnist", "pdf"])
    assert len(result.rows) == 2
    for row in result.rows:
        # Code coverage saturates; neuron coverage stays well below 100%.
        assert row[1] == row[2] == row[3] == "100%"
        for cell in row[4:]:
            assert float(cell.rstrip("%")) < 100.0


def test_table7_same_class_overlaps_more():
    result = run_class_overlap(scale="smoke", seed=0, n_pairs=30)
    diff_row, same_row = result.rows
    assert same_row[3] > diff_row[3]


def test_table2_counts_nonnegative():
    result = run_difference_counts(scale="smoke", seed=0,
                                   datasets=["mnist"])
    assert len(result.rows) == 3
    total = sum(row[-1] for row in result.rows)
    assert total > 0


def test_tables_3_and_4_render_mutations():
    drebin = run_drebin_samples(scale="smoke", seed=0)
    if drebin.rows:
        for row in drebin.rows:
            assert row[2] == "0" and row[3] == "1"  # add-only bits
    pdf = run_pdf_samples(scale="smoke", seed=0)
    for row in pdf.rows:
        assert float(row[2]) != float(row[3])


def test_table1_lists_all_models():
    result = run_model_zoo(scale="smoke", seed=0)
    assert len(result.rows) == 15
    names = {row[1] for row in result.rows}
    assert "MNI_C1" in names and "APP_C3" in names


def test_figure9_deepxplore_beats_random():
    result = run_coverage_comparison(scale="smoke", seed=0,
                                     datasets=["mnist"], budget=6)
    dx = result.series["mnist/deepxplore"][1]
    rand = result.series["mnist/random"][1]
    # At some threshold, DeepXplore's coverage must exceed random's.
    assert any(d > r for d, r in zip(dx, rand) if not np.isnan(d))


def test_run_all_subset(capsys):
    from repro.experiments import run_all
    results = run_all(scale="smoke", seed=0, experiment_ids=["table7"],
                      verbose=True)
    assert set(results) == {"table7"}
    assert "Same class" in capsys.readouterr().out


def test_figure8_gallery_writes_images(tmp_path):
    result = run_gallery(scale="smoke", seed=0, per_cell=1,
                         datasets=["mnist"], output_dir=str(tmp_path))
    assert result.rows
    found_rows = [r for r in result.rows if r[2] != "-"]
    if found_rows:
        images = list(tmp_path.iterdir())
        assert images, "gallery found examples but wrote no images"
