"""Figure 10: accuracy improvement from retraining with generated tests.

Each LeNet is retrained for five epochs on its training set augmented with
the same number of extra samples from three sources: DeepXplore tests
(labelled by majority vote — no manual labels), adversarial inputs
(labelled with their seed's ground truth, standing in for the paper's
manual labelling), and random test samples (ground-truth labels).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import retrain_with_augmentation
from repro.baselines import fgsm, random_inputs
from repro.core import (PAPER_HYPERPARAMS, constraint_for_dataset,
                        majority_label)
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentResult, make_engine
from repro.models import TRIOS, get_model, train_model, MODEL_ZOO
from repro.utils.rng import as_rng

__all__ = ["run_retraining_accuracy"]


def _deepxplore_augmentation(models, dataset, count, rng,
                             engine="sequential", ascent="vanilla",
                             beta=None):
    hp = PAPER_HYPERPARAMS["mnist"]
    runner = make_engine(engine, models, hp, constraint_for_dataset(dataset),
                         "classification", rng, ascent=ascent, beta=beta)
    seeds, _ = dataset.sample_seeds(
        min(count * 4, dataset.x_test.shape[0]), rng)
    run = runner.run(seeds, max_tests=count)
    tests = run.test_inputs()
    if tests.shape[0] == 0:
        return None, None
    labels = majority_label(models, tests)
    return tests[:count], labels[:count]


def run_retraining_accuracy(scale="small", seed=0, n_augment=100, epochs=5,
                            use_cache=True, engine="sequential",
                            ascent="vanilla", beta=None):
    """Run the Figure 10 experiment on the three LeNets.

    ``engine`` (``sequential``/``batch``) and ``ascent``/``beta`` select
    how the DeepXplore augmentation set is generated; the retraining
    protocol itself is engine-independent.
    """
    dataset = load_dataset("mnist", scale=scale, seed=seed)
    rng = as_rng(seed + 10)
    models = [get_model(name, scale=scale, seed=seed, dataset=dataset,
                        use_cache=use_cache) for name in TRIOS["mnist"]]
    n_augment = min(n_augment, dataset.x_test.shape[0] // 2)

    dx_x, dx_y = _deepxplore_augmentation(models, dataset, n_augment, rng,
                                          engine=engine, ascent=ascent,
                                          beta=beta)
    adv_seeds, adv_labels = dataset.sample_seeds(n_augment, rng)
    adv_x = fgsm(models[0], adv_seeds, adv_labels)
    rand_x, rand_y = random_inputs(dataset, n_augment, rng)

    sources = {
        "deepxplore": (dx_x, dx_y),
        "adversarial": (adv_x, adv_labels),
        "random": (rand_x, rand_y),
    }
    result = ExperimentResult(
        experiment_id="figure10",
        title="Accuracy after augmented retraining (per epoch)",
        headers=["Model", "Source"] + [f"epoch {e}"
                                       for e in range(epochs + 1)],
        paper_reference=("DeepXplore augmentation yields 1-3% higher "
                         "accuracy than adversarial/random augmentation"),
    )
    for model_name in TRIOS["mnist"]:
        for source, (x_extra, y_extra) in sources.items():
            if x_extra is None:
                result.rows.append([model_name, source, "no tests found"])
                continue
            # Fresh copy so each retraining starts from the same weights.
            network = train_model(MODEL_ZOO[model_name], dataset,
                                  scale=scale, seed=seed) \
                if not use_cache else get_model(
                    model_name, scale=scale, seed=seed, dataset=dataset,
                    use_cache=True)
            curve = retrain_with_augmentation(
                network, dataset, x_extra, y_extra, epochs=epochs,
                rng=as_rng(seed + 11), source=source)
            row = [model_name, source] + [f"{a:.2%}"
                                          for a in curve.accuracies]
            result.rows.append(row)
            result.series[f"{model_name}/{source}"] = (
                list(range(epochs + 1)), curve.accuracies)
    result.notes.append(
        "DeepXplore labels come from majority vote (automatic); baseline "
        "labels use seed ground truth (standing in for manual labelling)")
    return result
