"""Ablation: gradient RMS-normalization (present in the original
DeepXplore code, implicit in the paper).

Without normalization, raw probability gradients are tiny (1e-2..1e-4
RMS) and the fixed step size s barely moves the input; with it, s means
"pixels per iteration".  This bench quantifies that design choice.
"""

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import DeepXplore, PAPER_HYPERPARAMS, LightingConstraint
from repro.core.generator import normalize_gradient
from repro.datasets import load_dataset
from repro.models import get_trio
from repro.utils.tables import render_table


class _NoNormDeepXplore(DeepXplore):
    """Generator variant with normalization disabled (raw gradients)."""

    def generate_from_seed(self, seed_x, seed_index=0):
        import repro.core.generator as gen
        original = gen.normalize_gradient
        gen.normalize_gradient = lambda g: g
        try:
            return super().generate_from_seed(seed_x, seed_index)
        finally:
            gen.normalize_gradient = original


@pytest.mark.parametrize("normalized", [True, False])
def test_ablation_gradient_norm(benchmark, normalized):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(15, np.random.default_rng(61))
    hp = PAPER_HYPERPARAMS["mnist"]
    engine_cls = DeepXplore if normalized else _NoNormDeepXplore

    def run():
        engine = engine_cls(models, hp, LightingConstraint(), rng=67)
        return engine.run(seeds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ascent = sum(1 for t in result.tests if t.iterations > 0)
    print()
    print(render_table(
        ["normalized", "# diffs (ascent)", "pre-disagreed"],
        [[normalized, ascent, result.seeds_disagreed]],
        title="[ablation] gradient RMS normalization"))
    if normalized:
        assert ascent > 0
