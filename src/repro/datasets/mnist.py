"""Synthetic MNIST: procedurally rendered 28x28 handwritten-style digits.

Each digit class is defined by a stroke skeleton (polylines and arcs in a
unit square).  A sample applies a random affine jitter (rotation, scale,
shear, translation) and per-stroke thickness, rasterizes the skeleton with
a Gaussian pen model, and adds light background noise.  The result is a
dataset on which the LeNet family trains to high accuracy while still
leaving genuine corner cases — the regime DeepXplore's differential
testing needs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, resolve_scale
from repro.errors import DatasetError
from repro.utils.rng import as_rng

__all__ = ["generate_mnist", "render_digit", "DIGIT_SKELETONS"]

IMAGE_SIZE = 28


def _arc(cx, cy, rx, ry, start_deg, end_deg, steps=40):
    """Sample an elliptical arc; y axis points down, angles CCW."""
    theta = np.radians(np.linspace(start_deg, end_deg, steps))
    return np.stack([cx + rx * np.cos(theta), cy - ry * np.sin(theta)], axis=1)


def _line(*points):
    return np.asarray(points, dtype=np.float64)


def _skeleton_0():
    return [_arc(0.5, 0.5, 0.26, 0.36, 0, 360, 72)]


def _skeleton_1():
    return [_line((0.36, 0.26), (0.55, 0.10), (0.55, 0.90))]


def _skeleton_2():
    return [
        _arc(0.5, 0.30, 0.25, 0.19, 170, -20, 36),
        _line((0.72, 0.38), (0.24, 0.88)),
        _line((0.24, 0.88), (0.78, 0.88)),
    ]


def _skeleton_3():
    return [
        _arc(0.45, 0.30, 0.26, 0.20, 150, -80, 36),
        _arc(0.45, 0.70, 0.28, 0.22, 80, -150, 36),
    ]


def _skeleton_4():
    return [
        _line((0.58, 0.10), (0.22, 0.58)),
        _line((0.22, 0.58), (0.80, 0.58)),
        _line((0.62, 0.30), (0.62, 0.92)),
    ]


def _skeleton_5():
    return [
        _line((0.72, 0.12), (0.30, 0.12)),
        _line((0.30, 0.12), (0.28, 0.47)),
        _arc(0.46, 0.67, 0.27, 0.24, 105, -160, 40),
    ]


def _skeleton_6():
    return [
        _line((0.66, 0.10), (0.42, 0.42)),
        _arc(0.50, 0.67, 0.24, 0.23, 0, 360, 60),
    ]


def _skeleton_7():
    return [
        _line((0.24, 0.12), (0.76, 0.12)),
        _line((0.76, 0.12), (0.40, 0.90)),
    ]


def _skeleton_8():
    return [
        _arc(0.5, 0.30, 0.20, 0.18, 0, 360, 48),
        _arc(0.5, 0.70, 0.25, 0.21, 0, 360, 56),
    ]


def _skeleton_9():
    return [
        _arc(0.50, 0.33, 0.22, 0.21, 0, 360, 52),
        _line((0.71, 0.40), (0.60, 0.90)),
    ]


#: Stroke skeletons for digits 0-9 in a unit square (y grows downward).
DIGIT_SKELETONS = {
    0: _skeleton_0, 1: _skeleton_1, 2: _skeleton_2, 3: _skeleton_3,
    4: _skeleton_4, 5: _skeleton_5, 6: _skeleton_6, 7: _skeleton_7,
    8: _skeleton_8, 9: _skeleton_9,
}

# Pixel-centre grid reused across renders.
_GRID = np.stack(np.meshgrid(
    (np.arange(IMAGE_SIZE) + 0.5) / IMAGE_SIZE,
    (np.arange(IMAGE_SIZE) + 0.5) / IMAGE_SIZE, indexing="xy"),
    axis=-1).reshape(-1, 2)


def _densify(polyline, spacing=0.02):
    """Resample a polyline so consecutive points are ~``spacing`` apart."""
    pieces = [polyline[:1]]
    for start, end in zip(polyline[:-1], polyline[1:]):
        dist = float(np.hypot(*(end - start)))
        steps = max(int(dist / spacing), 1)
        frac = np.linspace(0.0, 1.0, steps + 1)[1:, None]
        pieces.append(start[None, :] * (1 - frac) + end[None, :] * frac)
    return np.concatenate(pieces, axis=0)


def render_digit(digit, rng, thickness=None):
    """Render one jittered sample of ``digit`` as a ``(1, 28, 28)`` image."""
    if digit not in DIGIT_SKELETONS:
        raise DatasetError(f"digit must be 0-9, got {digit!r}")
    rng = as_rng(rng)
    strokes = DIGIT_SKELETONS[digit]()
    points = np.concatenate([_densify(s) for s in strokes], axis=0)

    # Random affine jitter about the glyph centre.
    angle = np.radians(rng.normal(0.0, 7.0))
    scale = rng.uniform(0.85, 1.1)
    shear = rng.normal(0.0, 0.08)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    affine = scale * np.array([[cos_a, sin_a + shear], [-sin_a, cos_a]])
    shift = rng.normal(0.0, 0.03, size=2)
    centred = points - 0.5
    points = centred @ affine.T + 0.5 + shift

    if thickness is None:
        thickness = rng.uniform(0.030, 0.045)
    # Gaussian pen: intensity from squared distance to nearest stroke point.
    d2 = ((_GRID[:, None, :] - points[None, :, :]) ** 2).sum(axis=2).min(axis=1)
    image = np.exp(-d2 / (2.0 * thickness ** 2))
    image += rng.normal(0.0, 0.02, size=image.shape)
    return np.clip(image, 0.0, 1.0).reshape(1, IMAGE_SIZE, IMAGE_SIZE)


_SCALE_SIZES = {
    # (train per class, test per class)
    "smoke": (24, 8),
    "small": (120, 30),
    "full": (500, 100),
}


def generate_mnist(scale="small", seed=0):
    """Generate the synthetic MNIST dataset at a named scale."""
    resolve_scale(scale)
    rng = as_rng(seed)
    n_train, n_test = _SCALE_SIZES[scale]
    images, labels = [], []
    for digit in range(10):
        for _ in range(n_train + n_test):
            images.append(render_digit(digit, rng))
            labels.append(digit)
    x = np.stack(images).astype(np.float64)
    y = np.asarray(labels)
    # Interleave classes, then carve a per-class-balanced test split.
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    test_mask = np.zeros(x.shape[0], dtype=bool)
    for digit in range(10):
        digit_idx = np.flatnonzero(y == digit)
        test_mask[digit_idx[:n_test]] = True
    return Dataset(
        name="mnist",
        x_train=x[~test_mask], y_train=y[~test_mask],
        x_test=x[test_mask], y_test=y[test_mask],
        task="classification", num_classes=10,
        class_names=[str(d) for d in range(10)],
        metadata={"scale": scale, "seed": seed, "domain": "image"},
    )
