"""Extensions the paper mentions but does not evaluate.

Each extension is exercised by an ablation benchmark under
``benchmarks/test_ablation_*.py``; none of them changes the behaviour of
the core reproduction.
"""

from repro.extensions.momentum import MomentumDeepXplore
from repro.extensions.multi_neuron import MultiNeuronCoverageObjective
from repro.extensions.seed_selection import (class_balanced_seeds,
                                             low_confidence_seeds,
                                             random_seeds, select_seeds)
from repro.extensions.soft_constraints import SoftBoxConstraint

__all__ = [
    "MomentumDeepXplore",
    "MultiNeuronCoverageObjective",
    "class_balanced_seeds", "low_confidence_seeds", "random_seeds",
    "select_seeds",
    "SoftBoxConstraint",
]
