"""Shared utilities: RNG handling, rendering (tables, ASCII art, plots),
timing, image ops, docs hygiene."""

from repro.utils.ascii_art import ascii_image, side_by_side
from repro.utils.docs import (broken_intra_repo_links, iter_markdown_links,
                              markdown_files)
from repro.utils.plots import ascii_plot
from repro.utils.rng import (as_rng, derive_rng, rng_from_seed_sequence,
                             spawn_rngs, spawn_seed_sequences)
from repro.utils.tables import render_table
from repro.utils.timing import Stopwatch
from repro.utils.imageops import (
    clip01,
    l1_distance,
    to_uint8,
    save_pgm,
    save_ppm,
)

__all__ = [
    "ascii_image",
    "side_by_side",
    "ascii_plot",
    "as_rng",
    "derive_rng",
    "rng_from_seed_sequence",
    "spawn_rngs",
    "spawn_seed_sequences",
    "broken_intra_repo_links",
    "iter_markdown_links",
    "markdown_files",
    "render_table",
    "Stopwatch",
    "clip01",
    "l1_distance",
    "to_uint8",
    "save_pgm",
    "save_ppm",
]
