"""Benchmark: Table 9 — first-difference runtime vs step size s."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_step_size_sweep


def test_table9_step_size(benchmark):
    result = run_once(benchmark, run_step_size_sweep, scale=SCALE,
                      seed=SEED, repetitions=1)
    assert len(result.rows) == 5
