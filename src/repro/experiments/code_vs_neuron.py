"""Table 6: code coverage vs neuron coverage for 10 random inputs.

A handful of inputs exercises 100% of the prediction code while neuron
coverage (t = 0.75, layer-scaled outputs) stays far below 100% —
the paper's core argument that code coverage is meaningless for DNNs.
"""

from __future__ import annotations

from repro.coverage import CodeCoverage, coverage_of_inputs
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentResult
from repro.models import TRIOS, get_trio
from repro.utils.rng import as_rng

__all__ = ["run_code_vs_neuron"]


def run_code_vs_neuron(scale="small", seed=0, n_inputs=10, threshold=0.75,
                       use_cache=True, datasets=None):
    """Measure both coverages for ``n_inputs`` random test inputs."""
    datasets = datasets or list(TRIOS)
    result = ExperimentResult(
        experiment_id="table6",
        title="Code coverage vs neuron coverage (10 random inputs)",
        headers=["Dataset", "Code cov C1", "Code cov C2", "Code cov C3",
                 "Neuron cov C1", "Neuron cov C2", "Neuron cov C3"],
        paper_reference=("code coverage 100% everywhere; neuron coverage "
                         "0.3%-34% depending on model (t = 0.75)"),
    )
    rng = as_rng(seed + 6)
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        models = get_trio(dataset_name, scale=scale, seed=seed,
                          dataset=dataset, use_cache=use_cache)
        inputs, _ = dataset.sample_seeds(
            min(n_inputs, dataset.x_test.shape[0]), rng)
        reference, _ = dataset.sample_seeds(
            min(50, dataset.x_test.shape[0]), rng)
        code_cells, neuron_cells = [], []
        for model in models:
            code = CodeCoverage(model).coverage(inputs, reference=reference)
            neuron = coverage_of_inputs(model, inputs, threshold=threshold)
            code_cells.append(f"{code:.0%}")
            neuron_cells.append(f"{neuron:.1%}")
        result.rows.append([dataset_name] + code_cells + neuron_cells)
    result.notes.append(
        "code coverage: executed fraction of the dynamically reachable "
        "prediction-path lines in repro.nn (the TF/Keras analogue)")
    return result
