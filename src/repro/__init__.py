"""repro — a full reproduction of DeepXplore (Pei et al., SOSP 2017).

Automated whitebox testing of deep learning systems: neuron coverage,
cross-referencing differential oracles, and gradient-based joint
optimization for generating difference-inducing corner-case inputs.

Quickstart::

    from repro import (load_dataset, get_trio, make_engine,
                       PAPER_HYPERPARAMS, constraint_for_dataset)

    dataset = load_dataset("mnist", scale="small")
    models = get_trio("mnist", scale="small", dataset=dataset)
    seeds, _ = dataset.sample_seeds(50, rng=0)
    engine = make_engine("batch", models, PAPER_HYPERPARAMS["mnist"],
                         constraint_for_dataset(dataset),
                         "classification", rng=0)
    result = engine.run(seeds)
    print(result.difference_count, "difference-inducing inputs,",
          f"{engine.mean_coverage():.1%} neuron coverage")

``make_engine`` selects the driver (``"sequential"`` batch-of-1 /
``"batch"`` vectorized / ``"campaign"`` multi-process) and, via
``ascent="momentum"``, the per-iteration update rule; every combination
runs the same unified :class:`~repro.core.AscentEngine` loop.

Package map:

* :mod:`repro.nn` — numpy NN framework (the TensorFlow/Keras substitute)
* :mod:`repro.datasets` — synthetic stand-ins for the five datasets
* :mod:`repro.models` — the 15-model zoo of Table 1
* :mod:`repro.coverage` — neuron coverage and the code-coverage contrast
* :mod:`repro.core` — objectives, constraints, Algorithm 1
* :mod:`repro.corpus` — persistent corpus store + coverage-guided fuzzing
* :mod:`repro.baselines` — random and adversarial testing
* :mod:`repro.analysis` — diversity, overlap, SSIM, pollution, retraining
* :mod:`repro.experiments` — one runner per paper table/figure
"""

from repro.core import (AscentEngine, AscentRule, BatchDeepXplore,
                        Campaign, DeepXplore, GeneratedTest,
                        GenerationResult, Hyperparams, MomentumRule,
                        PAPER_HYPERPARAMS, VanillaRule,
                        constraint_for_dataset, majority_label, make_engine,
                        make_rule)
from repro.corpus import CorpusStore, FuzzReport, FuzzSession, SeedScheduler
from repro.coverage import NeuronCoverageTracker, coverage_of_inputs
from repro.datasets import Dataset, dataset_names, load_dataset
from repro.errors import ReproError
from repro.models import get_model, get_trio, zoo_names

__version__ = "1.0.0"

__all__ = [
    "AscentEngine", "AscentRule", "BatchDeepXplore", "Campaign",
    "DeepXplore", "GeneratedTest", "GenerationResult", "Hyperparams",
    "MomentumRule", "VanillaRule", "make_engine", "make_rule",
    "PAPER_HYPERPARAMS", "constraint_for_dataset", "majority_label",
    "CorpusStore", "FuzzReport", "FuzzSession", "SeedScheduler",
    "NeuronCoverageTracker", "coverage_of_inputs",
    "Dataset", "dataset_names", "load_dataset",
    "ReproError",
    "get_model", "get_trio", "zoo_names",
    "__version__",
]
